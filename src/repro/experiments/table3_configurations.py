"""Table 3: the configured RTOS/MPSoCs.

Regenerates the configuration census from the framework's live preset
table and verifies — by actually building each system — that every
preset wires the component the paper's row describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.framework.builder import build_system
from repro.framework.config import RTOS_PRESETS
from repro.experiments.report import render_table

#: The paper's Table 3 rows.
PAPER_TABLE_3 = {
    "RTOS1": "PDDA (i.e., Algorithms 1 and 2) in software",
    "RTOS2": "DDU in hardware",
    "RTOS3": "DAA (i.e., Algorithm 3) in software",
    "RTOS4": "DAU in hardware",
    "RTOS5": "Pure RTOS with priority inheritance support",
    "RTOS6": "SoCLC with immediate priority ceiling protocol in hardware",
    "RTOS7": "SoCDMMU in hardware",
}


@dataclass(frozen=True)
class Table3Row:
    system: str
    paper_description: str
    built_component: str


@dataclass(frozen=True)
class Table3Result:
    rows: tuple

    def render(self) -> str:
        return render_table(
            ["system", "paper: configured components", "built component"],
            [(row.system, row.paper_description, row.built_component)
             for row in self.rows],
            title="Table 3: configured RTOS/MPSoCs")


def _built_component(name: str) -> str:
    system = build_system(name)
    if system.resource_service is not None:
        backend = type(system.resource_service).__name__
        core = getattr(system.resource_service, "core", None)
        unit = (f" + {type(core).__name__}" if core is not None
                else (" + DDU" if system.resource_service.hardware
                      else ""))
        return f"{backend}{unit}"
    if system.config.soclc:
        manager = system.lock_manager
        return (f"{type(manager).__name__} "
                f"({manager.num_short_locks} short / "
                f"{manager.num_long_locks} long, IPCP)")
    if system.config.socdmmu:
        heap = system.heap
        return (f"{type(heap).__name__} "
                f"({heap.allocator.num_blocks} blocks)")
    return (f"{type(system.lock_manager).__name__} + "
            f"{type(system.heap).__name__}")


def run() -> Table3Result:
    rows = []
    for name in sorted(RTOS_PRESETS):
        rows.append(Table3Row(
            system=name,
            paper_description=PAPER_TABLE_3[name],
            built_component=_built_component(name)))
    return Table3Result(rows=tuple(rows))


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
