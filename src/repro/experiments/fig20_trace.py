"""Figure 20: execution trace of tasks 1-3 under IPCP.

Runs a short robot-application window under RTOS6 and renders the
run/block timeline of task1, task2 and task3 — the paper's point being
that with the SoCLC's immediate priority ceiling protocol, task3 runs
at the ceiling inside its critical section, so task2 cannot preempt it;
task3 completes the CS and then yields PE2 to task2.  The same window
under RTOS5 shows task2's preemption of task3 mid-CS (the inversion).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.robot import run_robot_app
from repro.framework.builder import build_system


@dataclass(frozen=True)
class Fig20Result:
    gantt_rtos6: str
    gantt_rtos5: str
    rtos5_preemptions_task3: int
    rtos6_preemptions_task3: int

    def render(self) -> str:
        return "\n".join([
            "Figure 20: execution trace, RTOS6 (SoCLC + IPCP)",
            "=" * 52,
            self.gantt_rtos6,
            "",
            "Same window, RTOS5 (software PI) — note task3 preempted:",
            self.gantt_rtos5,
            "",
            f"task3 preemptions: RTOS5={self.rtos5_preemptions_task3} "
            f"vs RTOS6={self.rtos6_preemptions_task3}",
        ])


def _run_window(config: str):
    system = build_system(config)
    run_robot_app(config, periods=2, system=system)
    gantt = system.soc.trace.gantt(actors=("task1", "task2", "task3"))
    task3 = system.kernel.tasks["task3"]
    return gantt, task3.stats.preemptions


def run() -> Fig20Result:
    gantt6, preempt6 = _run_window("RTOS6")
    gantt5, preempt5 = _run_window("RTOS5")
    return Fig20Result(
        gantt_rtos6=gantt6,
        gantt_rtos5=gantt5,
        rtos5_preemptions_task3=preempt5,
        rtos6_preemptions_task3=preempt6,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
