"""Experiment harnesses: one module per paper table/figure.

Every module exposes ``run()`` returning a result object with a
``render()`` (or the module provides ``render(result)``) producing the
regenerated table as text, plus the paper's published values for
side-by-side comparison.  ``repro.experiments.registry`` indexes them;
``python -m repro.experiments`` runs everything.
"""

from repro.experiments.registry import EXPERIMENTS, run_all, run_experiment

__all__ = ["EXPERIMENTS", "run_experiment", "run_all"]
