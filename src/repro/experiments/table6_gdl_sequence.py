"""Table 6 / Figure 16: the G-dl event sequence the DAU resolves.

Replays the grant-deadlock application under RTOS4 and renders the
event timeline, highlighting the pivotal decision: the DAU grants the
contested IDCT to the *lower-priority* p3 because granting it to p2
would close a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.grant_deadlock import run_gdl_app
from repro.framework.builder import build_system


@dataclass(frozen=True)
class Table6Result:
    events: tuple
    gdl_avoided: bool
    idct_went_to: str
    app_cycles: float

    def render(self) -> str:
        lines = ["Table 6: G-dl sequence under the DAU", "=" * 40]
        for time, actor, kind, resource in self.events:
            lines.append(f"t={time:>8.0f}  {actor:<4s} {kind:<18s} "
                         f"{resource}")
        lines.append("")
        lines.append(f"G-dl avoided: {self.gdl_avoided}; contested IDCT "
                     f"granted to {self.idct_went_to} "
                     f"(paper: p3, the lower-priority waiter)")
        lines.append(f"application completed at t={self.app_cycles:.0f}")
        return "\n".join(lines)


def run() -> Table6Result:
    system = build_system("RTOS4")
    result = run_gdl_app("RTOS4", system=system)
    kinds = ("resource_granted", "resource_released", "asked_to_release")
    events = tuple(
        (rec.time, rec.actor, rec.kind, rec.details.get("resource", "-"))
        for rec in system.soc.trace.filter(
            predicate=lambda r: r.kind in kinds))
    # The pivotal grant: who received the IDCT after p1 released it.
    idct_grants = [actor for (_t, actor, kind, res) in events
                   if kind == "resource_granted" and res == "IDCT"]
    # First grant went to p1 at t1; the second is the avoidance decision.
    contested = idct_grants[1] if len(idct_grants) > 1 else "?"
    return Table6Result(
        events=events,
        gdl_avoided=result.gdl_events > 0,
        idct_went_to=contested,
        app_cycles=result.app_cycles,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
