"""Ablation: Algorithm 3 versus the two rejected avoidance policies.

Section 4.3.1 says the authors "initially considered two other deadlock
avoidance approaches but found Algorithm 3 to be better because it
resolves livelock more actively and efficiently".  This experiment
makes that comparison concrete: the same randomized hold-and-wait
workload (processes repeatedly acquiring two resources, using them,
releasing) runs under

* Algorithm 3 (priority comparison + grant fallback + active livelock
  resolution),
* the *requester-always-yields* policy, and
* the *deny-and-retry* policy,

and reports throughput (completed jobs), wasted work (give-up demands
obeyed), denials, livelock flags, and the cost per decision.  The
driver is tick-based and fully cooperative: every give-up demand is
obeyed on the next tick, so any throughput gap is the policy's doing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.deadlock.daa import Action
from repro.deadlock.policies import POLICIES
from repro.experiments.report import render_table


@dataclass(frozen=True)
class PolicyRow:
    policy: str
    jobs_completed: int
    jobs_highest_priority: int
    giveups_obeyed: int
    denials: int
    livelock_flags: int
    mean_decision_cycles: float
    deadlocked_ticks: int


@dataclass(frozen=True)
class PolicyAblationResult:
    rows: tuple
    ticks: int

    def render(self) -> str:
        table = render_table(
            ["policy", "jobs", "p1 jobs", "give-ups", "denials",
             "livelock flags", "mean cycles", "deadlocked ticks"],
            [(row.policy, row.jobs_completed, row.jobs_highest_priority,
              row.giveups_obeyed, row.denials, row.livelock_flags,
              round(row.mean_decision_cycles, 1), row.deadlocked_ticks)
             for row in self.rows],
            title=f"Avoidance-policy ablation ({self.ticks} ticks, "
                  "identical workload)")
        return (f"{table}\n"
                "Algorithm 3's active resolution should complete the "
                "most jobs; the rejected policies trade throughput for "
                "passivity (denials / blanket give-ups).")


class _Worker:
    """One process cycling: acquire two resources, use, release."""

    def __init__(self, name: str, rng: random.Random, resources: tuple,
                 use_ticks: int = 4, backoff_ticks: int = 3) -> None:
        self.name = name
        self.rng = rng
        self.resources = resources
        self.use_ticks = use_ticks
        self.backoff_ticks = backoff_ticks
        self.state = "idle"
        self.targets: list = []
        self.countdown = 0
        self.jobs = 0
        self.demands: list = []

    def pick_targets(self) -> None:
        self.targets = self.rng.sample(list(self.resources), 2)

    def step(self, core, stats) -> None:
        # Obey any outstanding give-up demand first (Assumption 3).
        if self.demands:
            resource = self.demands.pop(0)
            if core.rag.holder_of(resource) == self.name:
                decision = core.release(self.name, resource)
                stats["giveups_obeyed"] += 1
                _route_demands(decision, stats, self.registry)
            # Restart acquisition after yielding.
            self.state = "backoff"
            self.countdown = self.backoff_ticks
            return

        if self.state == "backoff":
            self.countdown -= 1
            if self.countdown <= 0:
                self.state = "idle"
            return

        if self.state == "idle":
            self.pick_targets()
            self.state = "acquiring"

        if self.state == "acquiring":
            held = set(core.rag.held_by(self.name))
            missing = [q for q in self.targets if q not in held]
            if not missing:
                self.state = "using"
                self.countdown = self.use_ticks
                return
            wanted = missing[0]
            if wanted in core.rag.requests_of(self.name):
                return    # still pending; wait for the grant
            decision = core.request(self.name, wanted)
            _route_demands(decision, stats, self.registry)
            if decision.action is Action.DENIED:
                stats["denials"] += 1
                self.state = "backoff"
                self.countdown = self.backoff_ticks
            elif decision.action is Action.GIVE_UP:
                # The demand routed to us covers the actual releases.
                pass
            return

        if self.state == "using":
            self.countdown -= 1
            if self.countdown <= 0:
                for resource in core.rag.held_by(self.name):
                    decision = core.release(self.name, resource)
                    _route_demands(decision, stats, self.registry)
                self.jobs += 1
                self.state = "backoff"
                self.countdown = self.rng.randint(1, self.backoff_ticks)


def _route_demands(decision, stats, registry) -> None:
    if decision.livelock:
        stats["livelock_flags"] += 1
    for target, resource in decision.ask_release:
        registry[target].demands.append(resource)


def run_policy(policy_name: str, ticks: int = 2000, num_processes: int = 5,
               num_resources: int = 4, seed: int = 2003) -> PolicyRow:
    """Run one policy on the randomized workload; return its row."""
    policy_cls = POLICIES[policy_name]
    processes = [f"p{i}" for i in range(1, num_processes + 1)]
    resources = tuple(f"q{i}" for i in range(1, num_resources + 1))
    core = policy_cls(processes, resources,
                      {p: i for i, p in enumerate(processes, 1)})
    rng = random.Random(seed)
    workers = {p: _Worker(p, random.Random(rng.random()), resources)
               for p in processes}
    for worker in workers.values():
        worker.registry = workers
    stats = {"giveups_obeyed": 0, "denials": 0, "livelock_flags": 0}
    deadlocked_ticks = 0
    for _tick in range(ticks):
        for worker in workers.values():
            worker.step(core, stats)
        if core.rag.has_cycle():
            deadlocked_ticks += 1
    return PolicyRow(
        policy=policy_name,
        jobs_completed=sum(w.jobs for w in workers.values()),
        jobs_highest_priority=workers["p1"].jobs,
        giveups_obeyed=stats["giveups_obeyed"],
        denials=stats["denials"],
        livelock_flags=stats["livelock_flags"],
        mean_decision_cycles=core.stats.mean_cycles,
        deadlocked_ticks=deadlocked_ticks,
    )


def run(ticks: int = 2000, seed: int = 2003) -> PolicyAblationResult:
    rows = tuple(run_policy(name, ticks=ticks, seed=seed)
                 for name in POLICIES)
    return PolicyAblationResult(rows=rows, ticks=ticks)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
