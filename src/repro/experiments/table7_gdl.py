"""Table 7: execution time comparison on the G-dl application.

Runs the Table 6 scenario under RTOS3 (DAA in software) and RTOS4 (DAU)
and reports the mean avoidance-algorithm run time and the application
run time to completion — the application *finishes* because the G-dl is
avoided by granting the contested IDCT to the lower-priority process.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.grant_deadlock import GdlRun, run_gdl_app
from repro.experiments.report import (render_table, speedup_factor,
                                      speedup_percent)

PAPER_TABLE_7 = {"RTOS4": (7, 34_791), "RTOS3": (2_188, 47_704)}
PAPER_APP_SPEEDUP_PERCENT = 37
PAPER_ALGORITHM_SPEEDUP = 312


@dataclass(frozen=True)
class Table7Result:
    hardware: GdlRun
    software: GdlRun

    @property
    def app_speedup_percent(self) -> float:
        return speedup_percent(self.software.app_cycles,
                               self.hardware.app_cycles)

    @property
    def algorithm_speedup(self) -> float:
        return speedup_factor(self.software.mean_algorithm_cycles,
                              self.hardware.mean_algorithm_cycles)

    def render(self) -> str:
        rows = [
            ("DAU (hardware)", self.hardware.mean_algorithm_cycles,
             self.hardware.app_cycles,
             PAPER_TABLE_7["RTOS4"][0], PAPER_TABLE_7["RTOS4"][1]),
            ("DAA in software", self.software.mean_algorithm_cycles,
             self.software.app_cycles,
             PAPER_TABLE_7["RTOS3"][0], PAPER_TABLE_7["RTOS3"][1]),
        ]
        table = render_table(
            ["implementation", "algo cycles", "app cycles",
             "paper algo", "paper app"],
            rows, title="Table 7: execution time comparison (G-dl)")
        return (f"{table}\n"
                f"application speed-up: {self.app_speedup_percent:.0f}% "
                f"(paper: {PAPER_APP_SPEEDUP_PERCENT}%)\n"
                f"algorithm speed-up: {self.algorithm_speedup:.0f}X "
                f"(paper: {PAPER_ALGORITHM_SPEEDUP}X)\n"
                f"invocations: hw={self.hardware.avoidance_invocations} "
                f"sw={self.software.avoidance_invocations} (paper: 12)")


def run() -> Table7Result:
    return Table7Result(hardware=run_gdl_app("RTOS4"),
                        software=run_gdl_app("RTOS3"))


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
