"""Detection-latency profile: predictability, not just speed.

The SoCLC/DDU discussions both stress *predictability* ("increases the
real-time predictability of the system").  This experiment drives the
DDU model and software PDDA over a large randomized state population
and tabulates the latency distribution (min / median / p95 / max) of a
single detection, in bus cycles.  The hardware's worst case is a small
constant (the O(min(m, n)) bound); the software's tail stretches with
the reduction depth — exactly the property a hard-real-time integrator
cares about.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.deadlock.ddu import DDU
from repro.deadlock.pdda import pdda_detect
from repro.experiments.report import render_table
from repro.rag.generate import random_state


@dataclass(frozen=True)
class LatencyRow:
    implementation: str
    samples: int
    minimum: float
    median: float
    p95: float
    maximum: float
    bound: float

    @property
    def tail_ratio(self) -> float:
        """max / median: 1.0 means perfectly flat latency."""
        return self.maximum / self.median if self.median else float("nan")


@dataclass(frozen=True)
class LatencyProfileResult:
    rows: tuple
    m: int
    n: int

    def render(self) -> str:
        table = render_table(
            ["implementation", "samples", "min", "median", "p95", "max",
             "hw bound"],
            [(row.implementation, row.samples, row.minimum, row.median,
              row.p95, row.maximum,
              row.bound if row.bound else "-")
             for row in self.rows],
            title=f"Detection latency profile ({self.m}x{self.n} "
                  "random states, bus cycles)")
        hw, sw = self.rows
        return (f"{table}\n"
                f"tail ratios (max/median): hardware "
                f"{hw.tail_ratio:.1f}, software {sw.tail_ratio:.1f} — "
                "the DDU's latency is bounded by its O(min(m, n)) "
                "iteration count; software PDDA's tail stretches with "
                "reduction depth.")


def _percentile(values: list, fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def run(m: int = 5, n: int = 5, samples: int = 400,
        seed: int = 42,
        backend: Optional[str] = None) -> LatencyProfileResult:
    rng = random.Random(seed)
    unit = DDU(m, n, backend=backend)
    hw_latencies: list = []
    sw_latencies: list = []
    for _ in range(samples):
        state = random_state(m, n, grant_fraction=rng.random(),
                             request_fraction=rng.random() * 0.6,
                             rng=rng)
        unit.load(state)
        hw_latencies.append(unit.detect().cycles)
        sw_latencies.append(
            pdda_detect(state, backend=backend).software_cycles)

    def row(name: str, values: list, bound: float) -> LatencyRow:
        return LatencyRow(
            implementation=name,
            samples=len(values),
            minimum=min(values),
            median=_percentile(values, 0.5),
            p95=_percentile(values, 0.95),
            maximum=max(values),
            bound=bound)

    return LatencyProfileResult(
        rows=(row("DDU (hardware)", hw_latencies,
                  unit.iteration_bound + 1),
              row("PDDA in software", sw_latencies, 0)),
        m=m, n=n)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
