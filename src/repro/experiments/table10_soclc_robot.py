"""Table 10: simulation results of the robot application.

Runs the robot-control + MPEG task set under RTOS5 (Atalanta with
software priority inheritance) and RTOS6 (SoCLC with IPCP in hardware)
and reports the three published rows: lock latency, lock delay and
overall execution time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.robot import RobotRun, run_robot_app
from repro.experiments.report import render_table, speedup_factor

PAPER_TABLE_10 = {
    "lock_latency": (570, 318, 1.79),
    "lock_delay": (6_701, 3_834, 1.75),
    "overall": (112_170, 78_226, 1.43),
}


@dataclass(frozen=True)
class Table10Result:
    software: RobotRun
    hardware: RobotRun

    def render(self) -> str:
        rows = []
        measured = {
            "Lock Latency": (self.software.lock_latency,
                             self.hardware.lock_latency),
            "Lock Delay": (self.software.lock_delay,
                           self.hardware.lock_delay),
            "Overall Execution": (self.software.overall_cycles,
                                  self.hardware.overall_cycles),
        }
        paper_keys = ("lock_latency", "lock_delay", "overall")
        for (label, (sw, hw)), key in zip(measured.items(), paper_keys):
            paper_sw, paper_hw, paper_x = PAPER_TABLE_10[key]
            rows.append((label, sw, hw,
                         f"{speedup_factor(sw, hw):.2f}X",
                         paper_sw, paper_hw, f"{paper_x:.2f}X"))
        return render_table(
            ["(cycles)", "RTOS5", "RTOS6", "speedup",
             "paper RTOS5", "paper RTOS6", "paper speedup"],
            rows, title="Table 10: robot application, SoCLC vs software PI")


def run() -> Table10Result:
    return Table10Result(software=run_robot_app("RTOS5"),
                         hardware=run_robot_app("RTOS6"))


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
