"""Table 9: execution time comparison on the R-dl application.

Runs the Table 8 scenario under RTOS3 (DAA in software) and RTOS4
(DAU).  The R-dl is avoided by asking the lower-priority owner to give
up the contested IDCT (Algorithm 3 lines 6-8); the application
completes in both configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.request_deadlock import RdlRun, run_rdl_app
from repro.experiments.report import (render_table, speedup_factor,
                                      speedup_percent)

PAPER_TABLE_9 = {"RTOS4": (7.14, 38_508), "RTOS3": (2_102, 55_627)}
PAPER_APP_SPEEDUP_PERCENT = 44
PAPER_ALGORITHM_SPEEDUP = 294


@dataclass(frozen=True)
class Table9Result:
    hardware: RdlRun
    software: RdlRun

    @property
    def app_speedup_percent(self) -> float:
        return speedup_percent(self.software.app_cycles,
                               self.hardware.app_cycles)

    @property
    def algorithm_speedup(self) -> float:
        return speedup_factor(self.software.mean_algorithm_cycles,
                              self.hardware.mean_algorithm_cycles)

    def render(self) -> str:
        rows = [
            ("DAU (hardware)", self.hardware.mean_algorithm_cycles,
             self.hardware.app_cycles,
             PAPER_TABLE_9["RTOS4"][0], PAPER_TABLE_9["RTOS4"][1]),
            ("DAA in software", self.software.mean_algorithm_cycles,
             self.software.app_cycles,
             PAPER_TABLE_9["RTOS3"][0], PAPER_TABLE_9["RTOS3"][1]),
        ]
        table = render_table(
            ["implementation", "algo cycles", "app cycles",
             "paper algo", "paper app"],
            rows, title="Table 9: execution time comparison (R-dl)")
        return (f"{table}\n"
                f"application speed-up: {self.app_speedup_percent:.0f}% "
                f"(paper: {PAPER_APP_SPEEDUP_PERCENT}%)\n"
                f"algorithm speed-up: {self.algorithm_speedup:.0f}X "
                f"(paper: {PAPER_ALGORITHM_SPEEDUP}X)\n"
                f"invocations: hw={self.hardware.avoidance_invocations} "
                f"sw={self.software.avoidance_invocations} (paper: 14)")


def run() -> Table9Result:
    return Table9Result(hardware=run_rdl_app("RTOS4"),
                        software=run_rdl_app("RTOS3"))


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
