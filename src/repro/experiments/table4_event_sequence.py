"""Table 4 / Figure 15: the event sequence that leads to deadlock.

Replays the Jini application under RTOS2 and renders the timeline of
requests, grants and releases plus the final resource-allocation-graph
matrix — whose surviving cycle is Figure 15's deadlocked RAG.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.jini import run_jini_app
from repro.deadlock.pdda import terminal_reduction
from repro.framework.builder import build_system
from repro.rag.matrix import StateMatrix


@dataclass(frozen=True)
class Table4Result:
    events: tuple           # (time, actor, kind, resource)
    final_matrix_text: str
    residual_matrix_text: str
    deadlock_detected_at: float

    def render(self) -> str:
        lines = ["Table 4: sequence of requests and grants",
                 "=" * 40]
        for time, actor, kind, resource in self.events:
            lines.append(f"t={time:>8.0f}  {actor:<4s} {kind:<18s} "
                         f"{resource}")
        lines.append("")
        lines.append("Figure 15: state matrix at detection")
        lines.append(self.final_matrix_text)
        lines.append("")
        lines.append("irreducible residual (the deadlock cycle):")
        lines.append(self.residual_matrix_text)
        lines.append(f"deadlock detected at t={self.deadlock_detected_at:.0f}")
        return "\n".join(lines)


def run() -> Table4Result:
    system = build_system("RTOS2")
    result = run_jini_app("RTOS2", system=system)
    kinds = ("resource_granted", "resource_released", "deadlock_detected")
    events = tuple(
        (rec.time, rec.actor, rec.kind,
         rec.details.get("resource", "-"))
        for rec in system.soc.trace.filter(
            predicate=lambda r: r.kind in kinds))
    matrix = StateMatrix.from_rag(system.resource_service.rag)
    residual = terminal_reduction(matrix).matrix
    return Table4Result(
        events=events,
        final_matrix_text=matrix.render(),
        residual_matrix_text=residual.render(),
        deadlock_detected_at=result.app_cycles,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
