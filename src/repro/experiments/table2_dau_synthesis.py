"""Table 2: synthesis results of the DAU (5x5).

Regenerates the DAU area/LoC/step summary and the headline ".005% of
the MPSoC" claim, plus a *measured* check that the DAU hardware model
never exceeds the worst-case avoidance step count on randomized
workloads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro import calibration
from repro.deadlock.dau import DAU
from repro.deadlock.synthesis import dau_synthesis
from repro.experiments.report import render_table

#: Published Table 2 values.
PAPER_TABLE_2 = {
    "ddu_lines": 203, "ddu_area": 364, "other_lines": 344,
    "other_area": 1472, "total_lines": 547, "total_area": 1836,
    "detection_steps": 6, "avoidance_steps": 38,
    "mpsoc_gates": 40_344_000, "area_percent": 0.005,
}


@dataclass(frozen=True)
class Table2Result:
    ddu_lines: int
    ddu_area: int
    other_lines: int
    other_area: int
    total_lines: int
    total_area: int
    detection_steps: int
    avoidance_steps: int
    mpsoc_gates: int
    area_percent: float
    measured_max_decision_cycles: float

    def render(self) -> str:
        rows = [
            ("DDU 5x5", self.ddu_lines, self.ddu_area,
             self.detection_steps, "-"),
            ("Others in Figure 14", self.other_lines, self.other_area,
             "-", "-"),
            ("Total", self.total_lines, self.total_area, "-",
             self.avoidance_steps),
            ("MPSoC", "-", self.mpsoc_gates, "-", "-"),
        ]
        table = render_table(
            ["module", "lines", "area", "steps detect", "steps avoid"],
            rows, title="Table 2: synthesis results of the DAU")
        return (f"{table}\n"
                f"DAU area fraction of MPSoC: {self.area_percent:.4f}% "
                f"(paper: ~.005%)\n"
                f"measured max decision latency on random workload: "
                f"{self.measured_max_decision_cycles:.0f} cycles "
                f"(bound {self.avoidance_steps})")


def _measure_max_decision_cycles(seed: int = 7, events: int = 400) -> float:
    """Drive a 5x5 DAU with random request/release traffic; track the
    costliest single decision."""
    rng = random.Random(seed)
    processes = [f"p{i}" for i in range(1, 6)]
    resources = [f"q{i}" for i in range(1, 6)]
    dau = DAU(processes, resources, {p: i for i, p in enumerate(processes, 1)})
    worst = 0.0
    for _ in range(events):
        process = rng.choice(processes)
        held = dau.rag.held_by(process)
        pending = dau.rag.requests_of(process)
        if held and rng.random() < 0.45:
            decision = dau.release(process, rng.choice(held))
        else:
            candidates = [q for q in resources
                          if dau.rag.holder_of(q) != process
                          and q not in pending]
            if not candidates:
                continue
            decision = dau.request(process, rng.choice(candidates))
        worst = max(worst, decision.cycles)
    return worst


def run() -> Table2Result:
    synthesis = dau_synthesis(5, 5)
    return Table2Result(
        ddu_lines=synthesis.ddu_lines,
        ddu_area=synthesis.ddu_area,
        other_lines=synthesis.other_lines,
        other_area=synthesis.other_area,
        total_lines=synthesis.total_lines,
        total_area=synthesis.total_area,
        detection_steps=synthesis.worst_detection_iterations,
        avoidance_steps=synthesis.worst_avoidance_steps,
        mpsoc_gates=calibration.MPSOC_TOTAL_GATES,
        area_percent=100.0 * synthesis.area_fraction_of_mpsoc,
        measured_max_decision_cycles=_measure_max_decision_cycles(),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
