"""Table 12: SPLASH-2 benchmarks with the SoCDMMU.

Runs the same kernels as Table 11 but with the hardware memory manager
(RTOS7) and additionally reports the two reduction columns the paper
derives: the reduction in memory-management time and the reduction in
benchmark execution time versus the Table 11 run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.splash import SPLASH_BENCHMARKS, run_splash
from repro.experiments.report import render_table

PAPER_TABLE_12 = {
    "LU": (288_271, 1_476, 0.51, 95.31, 9.44),
    "FFT": (276_941, 2_951, 1.07, 97.10, 26.34),
    "RADIX": (558_347, 5_505, 0.99, 96.10, 19.59),
}


@dataclass(frozen=True)
class Table12Row:
    benchmark: str
    total: float
    mm_cycles: float
    mm_percent: float
    mm_reduction_percent: float
    exe_reduction_percent: float


@dataclass(frozen=True)
class Table12Result:
    rows: tuple

    def render(self) -> str:
        table_rows = []
        for row in self.rows:
            paper = PAPER_TABLE_12[row.benchmark]
            table_rows.append((
                row.benchmark, row.total, row.mm_cycles,
                f"{row.mm_percent:.2f}%",
                f"{row.mm_reduction_percent:.2f}%",
                f"{row.exe_reduction_percent:.2f}%",
                paper[0], paper[1], f"{paper[3]:.2f}%", f"{paper[4]:.2f}%"))
        return render_table(
            ["benchmark", "total", "mm", "mm %", "mm reduction",
             "exe reduction", "paper total", "paper mm",
             "paper mm red", "paper exe red"],
            table_rows, title="Table 12: SPLASH-2 with the SoCDMMU")


def run() -> Table12Result:
    rows = []
    for name in SPLASH_BENCHMARKS:
        software = run_splash(name, "RTOS5")
        hardware = run_splash(name, "RTOS7")
        mm_reduction = 100.0 * (1 - hardware.mm_cycles / software.mm_cycles)
        exe_reduction = 100.0 * (1 - hardware.total_cycles
                                 / software.total_cycles)
        rows.append(Table12Row(
            benchmark=name,
            total=hardware.total_cycles,
            mm_cycles=hardware.mm_cycles,
            mm_percent=hardware.mm_percent,
            mm_reduction_percent=mm_reduction,
            exe_reduction_percent=exe_reduction))
    return Table12Result(rows=tuple(rows))


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
