"""Table 11: SPLASH-2 benchmarks with glibc-style malloc()/free().

Runs the LU / FFT / RADIX kernels on the software heap (RTOS5) and
reports total execution time, memory-management time and the percentage
spent in memory management.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.splash import SPLASH_BENCHMARKS, run_splash
from repro.experiments.report import render_table

PAPER_TABLE_11 = {
    "LU": (318_307, 31_512, 9.90),
    "FFT": (375_988, 101_998, 27.13),
    "RADIX": (694_333, 141_491, 20.38),
}


@dataclass(frozen=True)
class Table11Result:
    runs: tuple

    def render(self) -> str:
        rows = []
        for run_ in self.runs:
            paper = PAPER_TABLE_11[run_.benchmark]
            rows.append((run_.benchmark, run_.total_cycles, run_.mm_cycles,
                         f"{run_.mm_percent:.2f}%",
                         paper[0], paper[1], f"{paper[2]:.2f}%"))
        return render_table(
            ["benchmark", "total", "mm cycles", "mm %",
             "paper total", "paper mm", "paper mm %"],
            rows,
            title="Table 11: SPLASH-2 with glibc-style malloc()/free()")


def run() -> Table11Result:
    return Table11Result(runs=tuple(
        run_splash(name, "RTOS5") for name in SPLASH_BENCHMARKS))


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
