"""Run every experiment and print the regenerated tables/figures.

Usage::

    python -m repro.experiments                  # everything, to stdout
    python -m repro.experiments table5 fig20     # a selection
    python -m repro.experiments --markdown report.md   # one document
    python -m repro.experiments table5 --metrics --trace-out /tmp/t.json
    python -m repro.experiments table5 --profile-out /tmp/table5.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import obs as obs_module
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.obs import write_chrome_trace


def _render_all(wanted: list) -> list:
    sections = []
    for exp_id in wanted:
        description, _runner = EXPERIMENTS[exp_id]
        sections.append((exp_id, description,
                         run_experiment(exp_id).render()))
    return sections


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--markdown", metavar="FILE",
                        help="write a single markdown report")
    parser.add_argument("--metrics", action="store_true",
                        help="print per-system metric summaries")
    parser.add_argument("--trace-out", metavar="FILE",
                        help="write a Chrome/Perfetto trace_event JSON "
                             "covering every system the selection builds")
    parser.add_argument("--profile-out", metavar="FILE",
                        help="write a cycle-attribution profile set "
                             "(one profile per instrumented system)")
    args = parser.parse_args(argv)

    if args.list:
        for exp_id, (description, _runner) in EXPERIMENTS.items():
            print(f"{exp_id:<20s} {description}")
        return 0

    wanted = args.experiments if args.experiments else list(EXPERIMENTS)
    unknown = [exp for exp in wanted if exp not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}", file=sys.stderr)
        print(f"available: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2

    observing = args.metrics or args.trace_out or args.profile_out
    if observing:
        obs_module.clear_live_systems()
        obs_module.set_default_enabled(True)
    try:
        sections = _render_all(wanted)
    finally:
        if observing:
            obs_module.set_default_enabled(False)
    systems = obs_module.live_systems() if observing else ()

    if args.markdown:
        lines = ["# Regenerated evaluation",
                 "",
                 "Produced by `python -m repro.experiments --markdown`.",
                 ""]
        for exp_id, description, body in sections:
            lines.append(f"## {exp_id}: {description}")
            lines.append("")
            lines.append("```")
            lines.append(body)
            lines.append("```")
            lines.append("")
        Path(args.markdown).write_text("\n".join(lines))
        print(f"wrote {args.markdown} ({len(sections)} experiment(s))")
    else:
        for exp_id, description, body in sections:
            print(f"\n### {exp_id}: {description}\n")
            print(body)

    if args.metrics:
        for system in systems:
            print(f"\n{system.summary()}")
        if not systems:
            print("\n(no instrumented systems were built)")
    if args.trace_out:
        write_chrome_trace(args.trace_out, systems)
        print(f"\nwrote {args.trace_out} ({len(systems)} system(s))")
    if args.profile_out:
        from repro.obs import build_profile
        profiles = [build_profile(system) for system in systems]
        document = {"schema": "repro.profile-set/1",
                    "experiments": wanted,
                    "profiles": [p.to_dict() for p in profiles]}
        Path(args.profile_out).write_text(
            json.dumps(document, sort_keys=True,
                       separators=(",", ":")) + "\n")
        print(f"\nwrote {args.profile_out} "
              f"({len(profiles)} profile(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
