"""Table 1: synthesis results of the DDU.

Regenerates the five published rows (lines of Verilog, NAND2 area,
worst-case iterations) from the synthesis model, and *measures* the
worst-case iteration count by actually running each DDU size on its
longest reducible chain — demonstrating the hardware model respects the
published bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.deadlock.ddu import DDU
from repro.deadlock.synthesis import DDU_PUBLISHED, ddu_synthesis
from repro.experiments.report import render_table
from repro.rag.generate import worst_case_state

#: Published Table 1 rows for side-by-side comparison.
PAPER_TABLE_1 = {
    (2, 3): (49, 186, 2),
    (5, 5): (73, 364, 6),
    (7, 7): (102, 455, 10),
    (10, 10): (162, 622, 16),
    (50, 50): (2682, 14142, 96),
}


@dataclass(frozen=True)
class Table1Row:
    processes: int
    resources: int
    lines: int
    area: int
    worst_iterations: int
    measured_chain_iterations: int
    paper_lines: int
    paper_area: int
    paper_worst: int


@dataclass(frozen=True)
class Table1Result:
    rows: tuple

    def render(self) -> str:
        return render_table(
            ["size", "lines", "area", "worst iter",
             "measured chain iter", "paper lines", "paper area",
             "paper worst"],
            [(f"{row.processes}x{row.resources}", row.lines, row.area,
              row.worst_iterations, row.measured_chain_iterations,
              row.paper_lines, row.paper_area, row.paper_worst)
             for row in self.rows],
            title="Table 1: synthesis results of DDU")


def run() -> Table1Result:
    rows = []
    for (p, r) in sorted(DDU_PUBLISHED):
        estimate = ddu_synthesis(p, r)
        unit = DDU(r, p)
        unit.load(worst_case_state(r, p))
        measured = unit.detect().iterations
        paper = PAPER_TABLE_1[(p, r)]
        rows.append(Table1Row(
            processes=p, resources=r,
            lines=estimate.lines_of_verilog,
            area=estimate.area_nand2,
            worst_iterations=estimate.worst_iterations,
            measured_chain_iterations=measured,
            paper_lines=paper[0], paper_area=paper[1],
            paper_worst=paper[2]))
    return Table1Result(rows=tuple(rows))


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
