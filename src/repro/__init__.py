"""repro — Hardware/Software Partitioning of Operating Systems.

A Python reproduction of Lee & Mooney, "Hardware/Software Partitioning
of Operating Systems: Focus on Deadlock Detection and Avoidance"
(DATE 2003): the delta RTOS/MPSoC design framework with its hardware
RTOS components — the Deadlock Detection Unit (DDU), the Deadlock
Avoidance Unit (DAU), the SoC Lock Cache (SoCLC) and the SoC Dynamic
Memory Management Unit (SoCDMMU) — plus the software baselines they are
compared against, all running on a cycle-accounted MPSoC simulator.

Quick start::

    from repro import build_system
    system = build_system("RTOS4")          # DAU-equipped MPSoC
    # ... create tasks on system.kernel and system.kernel.run()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.errors import (
    AllocationError,
    ConfigurationError,
    DeadlockError,
    GenerationError,
    ReproError,
    ResourceProtocolError,
    RTOSError,
    SimulationError,
)
from repro.rag import RAG, BitMatrix, StateMatrix
from repro.deadlock import (
    DAU,
    DDU,
    Decision,
    SoftwareDAA,
    dau_synthesis,
    ddu_synthesis,
    pdda_detect,
)
from repro.mpsoc import MPSoC, SoCConfig
from repro.rtos import Kernel, TaskContext
from repro.framework import RTOS_PRESETS, SystemConfig, build_system

__version__ = "1.0.0"

__all__ = [
    "RAG",
    "StateMatrix",
    "BitMatrix",
    "pdda_detect",
    "DDU",
    "DAU",
    "SoftwareDAA",
    "Decision",
    "ddu_synthesis",
    "dau_synthesis",
    "MPSoC",
    "SoCConfig",
    "Kernel",
    "TaskContext",
    "build_system",
    "SystemConfig",
    "RTOS_PRESETS",
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "DeadlockError",
    "ResourceProtocolError",
    "AllocationError",
    "RTOSError",
    "GenerationError",
    "__version__",
]
