"""The Atalanta-like shared-memory multiprocessor RTOS (Section 2.1).

A small configurable kernel in the spirit of Atalanta v0.3: all PEs
execute the same kernel code and share kernel structures.  Supported
services mirror the paper's list — priority scheduling with priority
inheritance as well as round-robin; task management; IPC primitives
(semaphores, mutexes, mailboxes, queues and events); memory management;
and interrupts.

The kernel is parameterized by pluggable back-ends, which is exactly the
hardware/software partitioning axis of the paper:

* lock manager — software priority inheritance
  (:class:`repro.rtos.sync.SoftwareLockManager`) vs the SoCLC
  (:class:`repro.soclc.lockcache.SoCLC`);
* resource manager — software PDDA/DAA vs the DDU/DAU
  (:mod:`repro.rtos.resources`);
* heap — software allocator (:class:`repro.rtos.memory.SoftwareHeap`)
  vs the SoCDMMU (:mod:`repro.socdmmu`).
"""

from repro.rtos.task import Task, TaskState, TaskStats
from repro.rtos.scheduler import PEScheduler
from repro.rtos.kernel import Kernel, TaskContext
from repro.rtos.sync import SoftwareLockManager, Semaphore, Spinlock
from repro.rtos.ipc import Mailbox, MessageQueue, EventFlags
from repro.rtos.memory import SoftwareHeap, HeapStats
from repro.rtos.watchdog import Watchdog, WatchdogTimeout
from repro.rtos.api import AtalantaAPI
from repro.rtos.report import system_report
from repro.rtos.periodic import OverrunPolicy, PeriodicTask
from repro.rtos.analysis import (
    AnalyzedTask,
    blocking_term,
    liu_layland_bound,
    response_time_analysis,
    utilization,
)
from repro.rtos.resources import (
    GrantOutcome,
    ResourceNotification,
    ResourceService,
    make_resource_service,
)

__all__ = [
    "Kernel",
    "TaskContext",
    "Task",
    "TaskState",
    "TaskStats",
    "PEScheduler",
    "SoftwareLockManager",
    "Semaphore",
    "Spinlock",
    "Mailbox",
    "MessageQueue",
    "EventFlags",
    "SoftwareHeap",
    "HeapStats",
    "Watchdog",
    "WatchdogTimeout",
    "AtalantaAPI",
    "system_report",
    "PeriodicTask",
    "OverrunPolicy",
    "AnalyzedTask",
    "response_time_analysis",
    "blocking_term",
    "utilization",
    "liu_layland_bound",
    "ResourceService",
    "ResourceNotification",
    "GrantOutcome",
    "make_resource_service",
]
