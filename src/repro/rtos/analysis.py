"""Fixed-priority response-time analysis with blocking terms.

The paper's real-time argument rests on Sha, Rajkumar and Lehoczky's
priority-inheritance theory ([17]): with PI a task can be blocked once
per lower-priority lock it conflicts with; with the immediate priority
ceiling protocol at most once in total.  This module provides the
classic analysis machinery so the simulator's measurements can be
checked against theory:

* :func:`response_time_analysis` — the standard recurrence
  ``R_i = C_i + B_i + sum_{j in hp(i)} ceil(R_i / T_j) * C_j``;
* :func:`blocking_term` — B_i under ``"pi"`` (sum over conflicting
  lower-priority critical sections, one per lock) or ``"ipcp"``
  (the single longest conflicting lower-priority critical section);
* :func:`utilization` and :func:`liu_layland_bound` — the rate-
  monotonic schedulability test.

Tasks on different PEs do not preempt each other, so the analysis is
per-PE; blocking through *global* locks still crosses PEs, which the
blocking term handles by considering every lower-priority task sharing
a lock regardless of placement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import RTOSError


@dataclass(frozen=True)
class AnalyzedTask:
    """One task's analysis inputs.

    ``critical_sections`` maps lock id -> worst-case critical-section
    length (cycles).  ``pe`` scopes preemption; locks may be shared
    across PEs.
    """

    name: str
    priority: int                # smaller = higher, RTOS convention
    wcet: float                  # worst-case execution time, cycles
    period: float
    pe: str = "PE1"
    deadline: Optional[float] = None
    critical_sections: dict = field(default_factory=dict)

    @property
    def effective_deadline(self) -> float:
        return self.deadline if self.deadline is not None else self.period


@dataclass(frozen=True)
class ResponseTimeResult:
    task: str
    response_time: float
    blocking: float
    interference: float
    schedulable: bool
    converged: bool


def _validate(tasks: list) -> None:
    names = [task.name for task in tasks]
    if len(set(names)) != len(names):
        raise RTOSError("duplicate task names in analysis")
    for task in tasks:
        if task.wcet <= 0 or task.period <= 0:
            raise RTOSError(f"{task.name}: wcet and period must be "
                            "positive")
        if task.wcet > task.period:
            raise RTOSError(f"{task.name}: wcet exceeds its period")


def utilization(tasks: Iterable[AnalyzedTask], pe: Optional[str] = None
                ) -> float:
    """Total utilization, optionally restricted to one PE."""
    chosen = [t for t in tasks if pe is None or t.pe == pe]
    return sum(t.wcet / t.period for t in chosen)


def liu_layland_bound(n: int) -> float:
    """The rate-monotonic utilization bound n*(2^(1/n) - 1)."""
    if n < 1:
        raise RTOSError("need at least one task")
    return n * (2 ** (1 / n) - 1)


def blocking_term(task: AnalyzedTask, tasks: Iterable[AnalyzedTask],
                  protocol: str = "ipcp") -> float:
    """Worst-case blocking B_i from lower-priority lock holders.

    ``"ipcp"``: one blocking episode total — the longest conflicting
    lower-priority critical section.  ``"pi"``: one episode per
    conflicting lock — the sum over locks of the longest lower-priority
    critical section on that lock.
    """
    if protocol not in ("pi", "ipcp"):
        raise RTOSError(f"unknown protocol {protocol!r}")
    my_locks = set(task.critical_sections)
    lower = [other for other in tasks
             if other.priority > task.priority and other is not task]
    if protocol == "ipcp":
        longest = 0.0
        for other in lower:
            for lock, length in other.critical_sections.items():
                if lock in my_locks:
                    longest = max(longest, length)
        return longest
    total = 0.0
    for lock in my_locks:
        longest = 0.0
        for other in lower:
            if lock in other.critical_sections:
                longest = max(longest, other.critical_sections[lock])
        total += longest
    return total


def response_time_analysis(tasks: Iterable[AnalyzedTask],
                           protocol: str = "ipcp",
                           context_switch: float = 0.0,
                           max_iterations: int = 200) -> list:
    """Worst-case response times for every task (per-PE preemption).

    Returns a list of :class:`ResponseTimeResult` in input order.  The
    recurrence iterates to a fixed point; non-convergence within the
    task's deadline is reported as unschedulable.
    """
    tasks = list(tasks)
    _validate(tasks)
    results = []
    for task in tasks:
        higher = [other for other in tasks
                  if other.pe == task.pe
                  and other.priority < task.priority]
        blocking = blocking_term(task, tasks, protocol=protocol)
        cost = task.wcet + 2 * context_switch
        response = cost + blocking
        converged = False
        for _ in range(max_iterations):
            interference = sum(
                math.ceil(response / other.period)
                * (other.wcet + 2 * context_switch)
                for other in higher)
            candidate = cost + blocking + interference
            if candidate == response:
                converged = True
                break
            response = candidate
            if response > 50 * task.effective_deadline:
                break           # clearly diverging
        interference = response - cost - blocking
        results.append(ResponseTimeResult(
            task=task.name,
            response_time=response,
            blocking=blocking,
            interference=interference,
            schedulable=converged
            and response <= task.effective_deadline,
            converged=converged))
    return results
