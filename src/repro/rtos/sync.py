"""Lock-based synchronization in software (the RTOS5 configuration).

:class:`SoftwareLockManager` implements Atalanta-style lock handling
with the Priority Inheritance Protocol: when a task blocks on a lock,
the holder inherits the blocked task's (higher) priority until release.
Cycle costs are the calibrated Table 10 software figures — a software
acquire walks shared kernel structures over the bus, so it is charged
:data:`repro.calibration.SW_LOCK_LATENCY_CYCLES`.

The manager records per-acquisition *latency* (service cost of the
acquire itself) and *delay* (blocking time of contended acquires), the
two quantities of Table 10.

Also here: :class:`Semaphore` (counting, priority-queued waiters) and
:class:`Spinlock` (busy-waiting on shared memory over the bus, used for
short critical sections in the RTOS5 architecture).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro import calibration
from repro.errors import RTOSError
from repro.rtos.kernel import Kernel, TaskContext
from repro.rtos.task import Task


@dataclass
class LockStats:
    """Table 10 measurements, collected across all locks of a manager."""

    acquisitions: int = 0
    contended_acquisitions: int = 0
    latencies: list = field(default_factory=list)
    delays: list = field(default_factory=list)

    @property
    def mean_latency(self) -> float:
        return (sum(self.latencies) / len(self.latencies)
                if self.latencies else 0.0)

    @property
    def mean_delay(self) -> float:
        return sum(self.delays) / len(self.delays) if self.delays else 0.0


class _LockRecord:
    __slots__ = ("name", "holder", "waiters", "ceiling", "boosts",
                 "acquired_at")

    def __init__(self, name: str, ceiling: Optional[int]) -> None:
        self.name = name
        self.holder: Optional[Task] = None
        self.waiters: list = []       # [(task, grant_event), ...]
        self.ceiling = ceiling
        self.boosts = 0               # priority pushes to undo on release
        self.acquired_at = 0.0        # hold-time measurement anchor


class SoftwareLockManager:
    """Blocking locks with the Priority Inheritance Protocol in software."""

    def __init__(self, kernel: Kernel,
                 acquire_cycles: int = calibration.SW_LOCK_LATENCY_CYCLES,
                 release_cycles: int = calibration.SW_LOCK_RELEASE_CYCLES,
                 waiter_cycles: int = calibration.SW_LOCK_WAITER_CYCLES,
                 ) -> None:
        self.kernel = kernel
        self.acquire_cycles = acquire_cycles
        self.release_cycles = release_cycles
        self.waiter_cycles = waiter_cycles
        self._locks: dict[str, _LockRecord] = {}
        self.stats = LockStats()
        metrics = kernel.obs.metrics
        self._m_acquisitions = metrics.counter(
            "lock.acquisitions", "lock grants")
        self._m_contended = metrics.counter(
            "lock.contended", "grants that had to wait")
        self._m_latency = metrics.histogram(
            "lock.acquire_latency", "service cost of one acquire")
        self._m_delay = metrics.histogram(
            "lock.acquire_delay", "blocking time of contended acquires")
        self._m_hold = metrics.histogram(
            "lock.hold_cycles", "cycles from grant to release")

    def register_lock(self, lock_id: str,
                      ceiling: Optional[int] = None) -> None:
        if lock_id in self._locks:
            raise RTOSError(f"lock {lock_id!r} already registered")
        self._locks[lock_id] = _LockRecord(lock_id, ceiling)

    def _lock(self, lock_id: str) -> _LockRecord:
        if lock_id not in self._locks:
            self.register_lock(lock_id)
        return self._locks[lock_id]

    # -- acquire -----------------------------------------------------------------

    def acquire(self, ctx: TaskContext, lock_id: str) -> Generator:
        task = ctx.task
        requested_at = ctx.now
        # The software acquire path: kernel entry, then a test-and-set
        # sequence plus PI bookkeeping on *shared-memory* kernel
        # structures — the on-chip traffic the SoCLC exists to remove
        # (Section 2.3.1).  Six single-word transactions ride the bus;
        # the rest of the budget is local kernel code.
        bus_ops = 6
        bus_cost = bus_ops * self.kernel.soc.bus.timing.transaction_cycles(1)
        for _ in range(bus_ops):
            yield from ctx.pe.bus_read()
        yield from ctx.pe.execute(max(0, self.acquire_cycles - bus_cost))
        lock = self._lock(lock_id)
        contended = False
        while lock.holder is not None and lock.holder is not task:
            contended = True
            # Atalanta's hybrid path: spin on the shared-memory lock
            # word for a bounded budget (each poll is a bus read) in
            # the hope of a quick hand-off, then fall back to blocking.
            spin_deadline = ctx.now + calibration.SW_LOCK_SPIN_BUDGET_CYCLES
            while ctx.now < spin_deadline and lock.holder is not None \
                    and lock.holder is not task:
                yield from ctx.pe.bus_read()
                yield calibration.SW_SPIN_POLL_BACKOFF_CYCLES
            if lock.holder is None or lock.holder is task:
                break
            # Walk the waiter queue / update PI structures; the holder
            # may release during this window, so re-check afterwards.
            yield from ctx.pe.execute(self.waiter_cycles)
            if lock.holder is None:
                break
            if task.priority < lock.holder.priority:
                lock.holder.push_priority(task.priority)
                lock.boosts += 1
                self.kernel.priority_changed(lock.holder)
                self.kernel.trace.record(
                    ctx.now, lock.holder.name, "priority_inherited",
                    lock=lock_id, inherited_from=task.name,
                    priority=lock.holder.priority)
            grant = self.kernel.engine.event(
                name=f"lock.{lock_id}.{task.name}")
            lock.waiters.append((task, grant))
            lock.waiters.sort(key=lambda entry: entry[0].priority)
            self.kernel.trace.record(ctx.now, task.name, "lock_blocked",
                                     lock=lock_id, holder=lock.holder.name)
            yield from self.kernel.block_on(task, grant)
            # Kernel re-entry on wake: reschedule + lock-word re-check.
            yield from ctx.pe.execute(calibration.SW_LOCK_WAKE_CYCLES)
            break   # the releasing task handed the lock to us
        if lock.holder is None:
            lock.holder = task
        if lock.holder is not task:
            raise RTOSError(f"lock {lock_id!r} handoff failed")
        lock.acquired_at = ctx.now
        self.stats.acquisitions += 1
        self.stats.latencies.append(self.acquire_cycles)
        delay = 0.0
        if contended:
            delay = ctx.now - requested_at
            task.stats.lock_wait_cycles += delay
            self.stats.contended_acquisitions += 1
            self.stats.delays.append(delay)
        if self.kernel.obs.enabled:
            self._m_acquisitions.inc()
            self._m_latency.observe(self.acquire_cycles)
            if contended:
                self._m_contended.inc()
                self._m_delay.observe(delay)
        self.kernel.trace.record(ctx.now, task.name, "lock_acquired",
                                 lock=lock_id, contended=contended)

    # -- release ------------------------------------------------------------------

    def release(self, ctx: TaskContext, lock_id: str) -> Generator:
        task = ctx.task
        lock = self._lock(lock_id)
        if lock.holder is not task:
            raise RTOSError(
                f"{task.name} released lock {lock_id!r} held by "
                f"{lock.holder and lock.holder.name}")
        # Release: write the lock word and waiter queue in shared memory;
        # the PI queue walk costs extra per blocked waiter.
        bus_ops = 3
        bus_cost = bus_ops * self.kernel.soc.bus.timing.transaction_cycles(1)
        for _ in range(bus_ops):
            yield from ctx.pe.bus_write()
        yield from ctx.pe.execute(max(0, self.release_cycles - bus_cost)
                                  + len(lock.waiters) * self.waiter_cycles)
        # Undo any inheritance applied while this task held the lock.
        while lock.boosts:
            task.pop_priority()
            lock.boosts -= 1
        if self.kernel.obs.enabled:
            self._m_hold.observe(ctx.now - lock.acquired_at)
        self.kernel.trace.record(ctx.now, task.name, "lock_released",
                                 lock=lock_id, priority=task.priority)
        if lock.waiters:
            next_task, grant = lock.waiters.pop(0)
            lock.holder = next_task
            grant.set(lock_id)
        else:
            lock.holder = None
        # Releasing may deboost below a ready task's priority.
        yield from self.kernel.preemption_point(task)

    def holder_name(self, lock_id: str) -> Optional[str]:
        lock = self._lock(lock_id)
        return lock.holder.name if lock.holder else None

    # -- short critical sections (kernel-structure guard) -----------------------

    def short_lock(self, ctx: TaskContext) -> Generator:
        """Enter a short CS: spin on a shared-memory kernel lock word.

        This is Atalanta's short-CS path in RTOS5 — every poll is a bus
        transaction, so contention congests the whole chip.
        """
        while True:
            yield from ctx.pe.bus_read()
            if getattr(self, "_short_holder", None) is None:
                # The test-and-set is atomic: claim at test time, then
                # pay for the lock-word write-back.
                self._short_holder = ctx.task.name
                yield from ctx.pe.bus_write()
                yield from ctx.pe.execute(
                    calibration.SW_SHORT_LOCK_CYCLES)
                return
            yield calibration.SW_SPIN_POLL_BACKOFF_CYCLES

    def short_unlock(self, ctx: TaskContext) -> Generator:
        if getattr(self, "_short_holder", None) != ctx.task.name:
            raise RTOSError(
                f"{ctx.task.name} left a short CS it never entered")
        yield from ctx.pe.bus_write()
        self._short_holder = None


def enter_kernel_cs(kernel: Kernel, ctx: TaskContext) -> Generator:
    """Guard a shared kernel structure with the short-CS mechanism.

    Dispatches to the attached lock manager's short-lock path (software
    spin-lock under RTOS5, SoCLC short-lock cell under RTOS6); a no-op
    when the manager has no short-CS support.
    """
    manager = kernel.lock_manager
    if manager is not None and hasattr(manager, "short_lock"):
        yield from manager.short_lock(ctx)


def leave_kernel_cs(kernel: Kernel, ctx: TaskContext) -> Generator:
    manager = kernel.lock_manager
    if manager is not None and hasattr(manager, "short_unlock"):
        yield from manager.short_unlock(ctx)


class Semaphore:
    """Counting semaphore with priority-ordered waiters."""

    def __init__(self, kernel: Kernel, name: str, initial: int = 0) -> None:
        if initial < 0:
            raise RTOSError("semaphore count must be non-negative")
        self.kernel = kernel
        self.name = name
        self.count = initial
        self._waiters: list = []

    def _enter_kernel_cs(self, ctx: TaskContext) -> Generator:
        """Guard the semaphore's kernel structure with a short CS."""
        yield from enter_kernel_cs(self.kernel, ctx)

    def _leave_kernel_cs(self, ctx: TaskContext) -> Generator:
        yield from leave_kernel_cs(self.kernel, ctx)

    def wait(self, ctx: TaskContext) -> Generator:
        """P(): decrement or block."""
        yield from ctx.service_overhead()
        yield from self._enter_kernel_cs(ctx)
        if self.count > 0:
            self.count -= 1
            yield from self._leave_kernel_cs(ctx)
            return
        grant = self.kernel.engine.event(name=f"sem.{self.name}")
        self._waiters.append((ctx.task, grant))
        self._waiters.sort(key=lambda entry: entry[0].priority)
        # Leave the kernel CS *before* sleeping.
        yield from self._leave_kernel_cs(ctx)
        yield from self.kernel.block_on(ctx.task, grant)

    def signal(self, ctx: TaskContext) -> Generator:
        """V(): wake one waiter or increment."""
        yield from ctx.service_overhead()
        yield from self._enter_kernel_cs(ctx)
        if self._waiters:
            _task, grant = self._waiters.pop(0)
            grant.set(self.name)
        else:
            self.count += 1
        yield from self._leave_kernel_cs(ctx)

    @property
    def waiting(self) -> int:
        return len(self._waiters)


class Spinlock:
    """A busy-wait lock living in shared memory (short-CS software path).

    Each poll is a bus transaction, so spinning congests the bus — the
    behaviour the SoCLC exists to remove.
    """

    def __init__(self, kernel: Kernel, name: str,
                 poll_interval: int = 12) -> None:
        self.kernel = kernel
        self.name = name
        self.poll_interval = poll_interval
        self.holder: Optional[str] = None
        self.spin_polls = 0

    def acquire(self, ctx: TaskContext) -> Generator:
        while True:
            yield from ctx.pe.bus_read()
            self.spin_polls += 1
            if self.holder is None:
                # Atomic test-and-set: claim at test time, then pay for
                # the lock-word write-back.
                self.holder = ctx.task.name
                yield from ctx.pe.bus_write()
                return
            yield self.poll_interval

    def release(self, ctx: TaskContext) -> Generator:
        if self.holder != ctx.task.name:
            raise RTOSError(
                f"{ctx.task.name} released spinlock held by {self.holder}")
        yield from ctx.pe.bus_write()
        self.holder = None
