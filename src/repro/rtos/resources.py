"""Deadlock-managed resource allocation (configurations RTOS1-RTOS4).

This is the software layer the paper partitions: processes ask the RTOS
for peripherals (VI, IDCT, DSP, WI); the RTOS tracks requests and grants
and runs a deadlock algorithm on every event.  Four back-ends:

=======  ===========================================  ==================
Config   Algorithm                                    Execution
=======  ===========================================  ==================
RTOS1    PDDA detection (Algorithms 1-2)              software on the PE
RTOS2    PDDA detection                               DDU hardware unit
RTOS3    DAA avoidance (Algorithm 3)                  software on the PE
RTOS4    DAA avoidance                                DAU hardware unit
=======  ===========================================  ==================

Software back-ends serialize on a kernel mutex and burn the calling PE
for the full algorithm run time; hardware back-ends serialize on the
unit's command port and cost a couple of bus transactions plus the
unit's few busy cycles — that asymmetry is where the application-level
speedups of Tables 5, 7 and 9 come from.

Granted resource names that match an MPSoC peripheral are bound to it
(ownership assignment), so peripheral use is protocol-checked.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Generator, Iterable, Mapping, Optional

from repro import calibration
from repro.deadlock.daa import Action, AvoidanceCore, Decision
from repro.deadlock.ddu import DDU
from repro.deadlock.pdda import pdda_detect
from repro.errors import ConfigurationError
from repro.rag.graph import RAG
from repro.rtos.kernel import Kernel, TaskContext
from repro.sim.process import SimResource


class NotificationKind(enum.Enum):
    GRANT = "grant"
    GIVE_UP = "give-up"


@dataclass(frozen=True)
class ResourceNotification:
    """Asynchronous message from the resource service to a task."""

    kind: NotificationKind
    resource: str
    #: For GIVE_UP: who wants the resource (informational).
    on_behalf_of: Optional[str] = None
    livelock: bool = False


@dataclass(frozen=True)
class GrantOutcome:
    """Synchronous outcome of a request/release service call."""

    granted: bool
    pending: bool = False
    must_give_up: bool = False
    deadlock_detected: bool = False
    decision: Optional[Decision] = None


@dataclass
class ServiceStats:
    """Per-service measurement record for the experiment harnesses."""

    invocations: int = 0
    algorithm_cycles: list = field(default_factory=list)
    deadlock_found_at: Optional[float] = None
    deadlock_algorithm_cycles: Optional[float] = None

    @property
    def total_algorithm_cycles(self) -> float:
        return sum(self.algorithm_cycles)

    @property
    def mean_algorithm_cycles(self) -> float:
        if not self.algorithm_cycles:
            return 0.0
        return self.total_algorithm_cycles / len(self.algorithm_cycles)


class ResourceService:
    """Common machinery: grant delivery, peripheral binding, charging."""

    #: True when the algorithm runs in a hardware unit.
    hardware = False
    #: Fault-injection site of the unit's command/status port (set by
    #: the hardware-backed subclasses).
    port_site: Optional[str] = None

    def __init__(self, kernel: Kernel, resources: Iterable[str],
                 api_cycles: int = calibration.RTOS_RESOURCE_API_CYCLES
                 ) -> None:
        self.kernel = kernel
        self.resources = tuple(resources)
        self.api_cycles = api_cycles
        self.stats = ServiceStats()
        #: Fault injector hook for the unit-port sites (repro.faults).
        self.faults = None
        #: Resilient wrapper; None = the fault-free fast path.
        self.resilient = None
        self.watchdog = None
        #: (engine time, event string) history of the resilient path.
        self.fault_events: list = []
        self._gate = SimResource(kernel.engine, "resource.gate")
        self._grant_waits: dict[tuple[str, str], object] = {}
        # Grants *delivered* to tasks.  The algorithm core's state is
        # updated when a decision is computed, but the decision only
        # reaches the task after the algorithm's cycle cost has been
        # paid — wait_grant must test delivery, not core state.
        self._delivered: set = set()
        #: Fires the first time a deadlock is detected (harness hook).
        self.deadlock_event = kernel.engine.event(name="deadlock.detected")
        metrics = kernel.obs.metrics
        self._m_invocations = metrics.counter(
            "deadlock.invocations", "deadlock-algorithm runs")
        self._m_algo_cycles = metrics.histogram(
            "deadlock.algorithm_cycles", "modelled cycles per algorithm run")
        self._m_detected = metrics.counter(
            "deadlock.detected", "deadlocks reported by the algorithm")

    # -- to be provided by subclasses -------------------------------------------

    def holder_of(self, resource: str) -> Optional[str]:
        raise NotImplementedError

    def request(self, ctx: TaskContext, resource: str) -> Generator:
        raise NotImplementedError

    def release(self, ctx: TaskContext, resource: str) -> Generator:
        raise NotImplementedError

    def withdraw(self, ctx: TaskContext, resource: str) -> Generator:
        raise NotImplementedError

    # -- grant delivery ------------------------------------------------------------

    def wait_grant(self, ctx: TaskContext, resource: str) -> Generator:
        """Block until a pending request of this task is granted."""
        key = (ctx.task.name, resource)
        if key in self._delivered:
            return
        event = self.kernel.engine.event(name=f"grant.{resource}.{ctx.name}")
        self._grant_waits[key] = event
        yield from self.kernel.block_on(ctx.task, event)

    def _deliver_grant(self, process: str, resource: str) -> None:
        self._delivered.add((process, resource))
        self._bind_peripheral(process, resource)
        task = self.kernel.tasks.get(process)
        if task is not None:
            task.held_resources.append(resource)
            self.kernel.notify_task(task, ResourceNotification(
                NotificationKind.GRANT, resource))
        self.kernel.trace.record(self.kernel.engine.now, process,
                                 "resource_granted", resource=resource)
        event = self._grant_waits.pop((process, resource), None)
        if event is not None:
            event.set(resource)

    def _record_release(self, process: str, resource: str) -> None:
        self._delivered.discard((process, resource))
        self._unbind_peripheral(process, resource)
        task = self.kernel.tasks.get(process)
        if task is not None and resource in task.held_resources:
            task.held_resources.remove(resource)
        self.kernel.trace.record(self.kernel.engine.now, process,
                                 "resource_released", resource=resource)

    def _ask_release(self, pairs: Iterable, on_behalf_of: str,
                     livelock: bool = False) -> None:
        for process, resource in pairs:
            task = self.kernel.tasks.get(process)
            if task is None:
                continue
            self.kernel.notify_task(task, ResourceNotification(
                NotificationKind.GIVE_UP, resource,
                on_behalf_of=on_behalf_of, livelock=livelock))
            self.kernel.trace.record(self.kernel.engine.now, process,
                                     "asked_to_release", resource=resource,
                                     on_behalf_of=on_behalf_of)

    def _bind_peripheral(self, process: str, resource: str) -> None:
        peripheral = self.kernel.soc.peripherals.get(resource)
        if peripheral is not None:
            peripheral.assign(process)

    def _unbind_peripheral(self, process: str, resource: str) -> None:
        peripheral = self.kernel.soc.peripherals.get(resource)
        if peripheral is not None and peripheral.owner == process:
            peripheral.unassign(process)

    # -- cost charging ----------------------------------------------------------------

    def _charge(self, ctx: TaskContext, cycles: float) -> Generator:
        """Pay for one algorithm invocation (already holding the gate)."""
        if self.hardware:
            # Command write to the unit, unit busy time, status read.
            yield from ctx.pe.bus_write()
            yield cycles
            yield from ctx.pe.bus_read()
        else:
            # The calling PE runs the algorithm itself.
            yield from ctx.pe.execute(cycles)

    # -- resilient charging (active only when enable_resilience ran) -------------

    def _fault_event(self, event: str) -> None:
        self.fault_events.append((self.kernel.engine.now, event))

    def _log_fault_events(self, events: Iterable[str]) -> None:
        now = self.kernel.engine.now
        for event in events:
            self.fault_events.append((now, event))

    def _unit_bus(self, ctx: TaskContext, op: str) -> Generator:
        """One transaction on the unit's port, with bounded retry.

        Port faults (``ddu.port`` / ``dau.port``) hit only the
        service's own command/status traffic, never the workload's
        memory transactions.  An ERROR response is retried with
        backoff; exhausting the budget costs latency only — the next
        cross-check still validates the verdict itself.
        """
        policy = self.resilient.policy
        for attempt in range(policy.max_retries + 1):
            if attempt:
                self._fault_event("retry")
                yield from ctx.pe.execute(
                    policy.retry_backoff_cycles * attempt)
            error = False
            if self.faults is not None:
                for spec in self.faults.fire(self.port_site, key=op):
                    if spec.kind == "timeout":
                        yield int(spec.params.get("extra_cycles", 16))
                    elif spec.kind == "error":
                        error = True
            if op == "write":
                yield from ctx.pe.bus_write()
            else:
                yield from ctx.pe.bus_read()
            if not error:
                return
            self._fault_event("anomaly:bus")
            mode_before = self.resilient.mode
            self.resilient.note_bus_error()
            if self.resilient.mode != mode_before:
                self._fault_event("failover")
        self._fault_event("bus-unreachable")

    def _await_timeout(self, ctx: TaskContext, budget: float) -> Generator:
        """Wait out a hung unit under a watchdog."""
        if self.watchdog is None:
            yield budget
            return
        watch = self.watchdog.arm(f"{self.port_site}.{ctx.task.name}",
                                  budget)
        yield budget + 1
        if not self.watchdog.disarm(watch):
            self._fault_event("watchdog-trip")

    def _pay(self, ctx: TaskContext, outcome) -> Generator:
        """Pay a resilient invocation's charge segments in order."""
        for charge in outcome.charges:
            kind = charge.kind
            if kind == "bus_write":
                yield from self._unit_bus(ctx, "write")
            elif kind == "bus_read":
                yield from self._unit_bus(ctx, "read")
            elif kind == "bus_burst":
                yield from ctx.pe.bus_burst(words=max(1, int(charge.cycles)))
            elif kind == "unit":
                yield charge.cycles
            elif kind == "timeout":
                yield from self._await_timeout(ctx, charge.cycles)
            else:
                # software / backoff both run on the calling PE.
                yield from ctx.pe.execute(charge.cycles)

    def _note_invocation(self, cycles: float) -> None:
        self.stats.invocations += 1
        self.stats.algorithm_cycles.append(cycles)
        if self.kernel.obs.enabled:
            self._m_invocations.inc()
            self._m_algo_cycles.observe(cycles)

    def _note_deadlock(self, algorithm_cycles: float) -> None:
        if self.kernel.obs.enabled:
            self._m_detected.inc()
        if self.stats.deadlock_found_at is None:
            self.stats.deadlock_found_at = self.kernel.engine.now
            self.stats.deadlock_algorithm_cycles = algorithm_cycles
            self.kernel.trace.record(self.kernel.engine.now, "service",
                                     "deadlock_detected")
            self.deadlock_event.set(self.kernel.engine.now)


class _WithdrawMixin:
    """Shared withdraw path for the resource services.

    Concrete services provide ``_do_withdraw(process, resource)`` to
    remove the pending request from their algorithm state.
    """

    def withdraw(self, ctx: TaskContext, resource: str) -> Generator:
        """Cancel the calling task's pending request for ``resource``."""
        yield from ctx.pe.execute(self.api_cycles)
        yield from self._gate.acquire(ctx.task.name)
        self._do_withdraw(ctx.task.name, resource)
        self._grant_waits.pop((ctx.task.name, resource), None)
        self.kernel.trace.record(self.kernel.engine.now, ctx.task.name,
                                 "request_withdrawn", resource=resource)
        self._gate.release(ctx.task.name)
        return GrantOutcome(granted=False)


class DetectionResourceService(_WithdrawMixin, ResourceService):
    """RTOS1 / RTOS2: availability+priority grants, detection after events.

    Requests are granted when the resource is free, otherwise queued by
    priority; PDDA runs after every request and release command.  When
    it reports a deadlock the service records the detection time — the
    Table 5 application measurement stops there (the application cannot
    finish once deadlocked).
    """

    def __init__(self, kernel: Kernel, processes: Iterable[str],
                 resources: Iterable[str], priorities: Mapping[str, int],
                 use_ddu: bool = False) -> None:
        super().__init__(kernel, resources)
        self.rag = RAG(processes, resources)
        self.priorities = dict(priorities)
        self.hardware = use_ddu
        self.ddu = (DDU(self.rag.num_resources, self.rag.num_processes,
                        obs=kernel.obs)
                    if use_ddu else None)
        self._m_sw_detections = kernel.obs.metrics.counter(
            "matrix.fastpath.sw_detections",
            "software PDDA runs (backend per REPRO_MATRIX_BACKEND)")

    port_site = "ddu.port"

    def enable_resilience(self, policy=None):
        """Arm cross-checking, retry and DDU->software failover.

        Only meaningful for RTOS2: RTOS1 already *is* the software
        path.  Returns the :class:`ResilientDetector` for inspection.
        """
        if self.ddu is None:
            raise ConfigurationError(
                "resilience wraps the DDU; RTOS1 has no unit to fail")
        from repro.faults.health import ResiliencePolicy
        from repro.faults.resilient import ResilientDetector
        from repro.rtos.watchdog import Watchdog
        policy = policy if policy is not None else ResiliencePolicy()
        self.resilient = ResilientDetector(self.ddu, policy,
                                           obs=self.kernel.obs)
        self.watchdog = Watchdog(self.kernel)
        return self.resilient

    def holder_of(self, resource: str) -> Optional[str]:
        return self.rag.holder_of(resource)

    def _do_withdraw(self, process: str, resource: str) -> None:
        # Idempotent: recovery may already have withdrawn the edge.
        if resource in self.rag.requests_of(process):
            self.rag.remove_request(process, resource)

    def _detect(self) -> tuple[bool, float]:
        """Run detection on the current state; returns (deadlock, cycles)."""
        if self.ddu is not None:
            self.ddu.load(self.rag)
            result = self.ddu.detect()
            return result.deadlock, result.cycles
        if self.kernel.obs.enabled:
            self._m_sw_detections.inc()
        result = pdda_detect(self.rag)
        return result.deadlock, result.software_cycles

    def _detect_and_charge(self, ctx: TaskContext) -> Generator:
        """One detection invocation: run, record, pay.  Returns deadlock."""
        if self.resilient is not None:
            outcome = self.resilient.detect(self.rag)
            self._note_invocation(outcome.cycles)
            self._log_fault_events(outcome.events)
            span = self.kernel.obs.begin(ctx.task.name, "detect",
                                         cycles=outcome.cycles,
                                         deadlock=outcome.deadlock,
                                         hardware=outcome.hardware)
            try:
                yield from self._pay(ctx, outcome)
            finally:
                self.kernel.obs.end(span)
            if outcome.deadlock:
                self._note_deadlock(outcome.cycles)
            return outcome.deadlock
        deadlock, cycles = self._detect()
        self._note_invocation(cycles)
        span = self.kernel.obs.begin(ctx.task.name, "detect",
                                     cycles=cycles, deadlock=deadlock)
        try:
            yield from self._charge(ctx, cycles)
        finally:
            self.kernel.obs.end(span)
        if deadlock:
            self._note_deadlock(cycles)
        return deadlock

    def request(self, ctx: TaskContext, resource: str) -> Generator:
        # Detection runs on *every* resource allocation event (Section
        # 4.1): once when the request edge appears and again when a
        # grant edge appears, so an immediately-granted request costs
        # two invocations — this is how the Table 4 scenario reaches
        # its ~10 invocations.
        yield from ctx.pe.execute(self.api_cycles)
        yield from self._gate.acquire(ctx.task.name)
        self.rag.add_request(ctx.task.name, resource)
        deadlock = yield from self._detect_and_charge(ctx)
        granted = False
        if self.rag.is_available(resource):
            self.rag.remove_request(ctx.task.name, resource)
            self.rag.grant(resource, ctx.task.name)
            granted = True
            deadlock = (yield from self._detect_and_charge(ctx)) or deadlock
            self._deliver_grant(ctx.task.name, resource)
        self._gate.release(ctx.task.name)
        return GrantOutcome(granted=granted, pending=not granted,
                            deadlock_detected=deadlock)

    def release(self, ctx: TaskContext, resource: str) -> Generator:
        yield from ctx.pe.execute(self.api_cycles)
        yield from self._gate.acquire(ctx.task.name)
        self.rag.release(ctx.task.name, resource)
        self._record_release(ctx.task.name, resource)
        deadlock = yield from self._detect_and_charge(ctx)
        waiters = sorted(self.rag.waiters_for(resource),
                         key=lambda p: self.priorities[p])
        if waiters:
            granted_to = waiters[0]
            self.rag.remove_request(granted_to, resource)
            self.rag.grant(resource, granted_to)
            deadlock = (yield from self._detect_and_charge(ctx)) or deadlock
            self._deliver_grant(granted_to, resource)
        self._gate.release(ctx.task.name)
        return GrantOutcome(granted=True, deadlock_detected=deadlock)


class AvoidanceResourceService(_WithdrawMixin, ResourceService):
    """RTOS3 / RTOS4: every event goes through Algorithm 3.

    Wraps an :class:`~repro.deadlock.daa.AvoidanceCore` (the software
    DAA or the DAU) and converts its :class:`Decision` into task-level
    effects: grants are delivered, give-up demands are sent as
    notifications (Assumption 3's mechanism).
    """

    port_site = "dau.port"

    def __init__(self, kernel: Kernel, core: AvoidanceCore,
                 hardware: bool = False) -> None:
        super().__init__(kernel, core.rag.resources)
        self.core = core
        self.hardware = hardware

    def enable_resilience(self, policy=None):
        """Arm cross-checking and DAU -> SoftwareDAA twin failover.

        Only meaningful for RTOS4: RTOS3's core is already software.
        Returns the :class:`ResilientAvoider` for inspection.
        """
        if not self.hardware:
            raise ConfigurationError(
                "resilience wraps the DAU; RTOS3 has no unit to fail")
        from repro.faults.health import ResiliencePolicy
        from repro.faults.resilient import ResilientAvoider
        from repro.rtos.watchdog import Watchdog
        policy = policy if policy is not None else ResiliencePolicy()
        self.resilient = ResilientAvoider(self.core, policy,
                                          obs=self.kernel.obs)
        self.watchdog = Watchdog(self.kernel)
        return self.resilient

    @property
    def _active_core(self):
        if self.resilient is not None:
            return self.resilient.active_core
        return self.core

    def holder_of(self, resource: str) -> Optional[str]:
        return self._active_core.rag.holder_of(resource)

    def _do_withdraw(self, process: str, resource: str) -> None:
        core = self._active_core
        if resource in core.rag.requests_of(process):
            core.withdraw(process, resource)

    def _decide_and_pay(self, ctx: TaskContext, op: str,
                        resource: str) -> Generator:
        """Resilient path: decide via the wrapper, pay its charges."""
        outcome = self.resilient.decide(ctx.pe.name, op, ctx.task.name,
                                        resource)
        self._note_invocation(outcome.cycles)
        self._log_fault_events(outcome.events)
        span = self.kernel.obs.begin(ctx.task.name, f"avoid.{op}",
                                     cycles=outcome.cycles,
                                     hardware=outcome.hardware)
        try:
            yield from self._pay(ctx, outcome)
        finally:
            self.kernel.obs.end(span)
        return outcome.decision

    def request(self, ctx: TaskContext, resource: str) -> Generator:
        yield from ctx.pe.execute(self.api_cycles)
        yield from self._gate.acquire(ctx.task.name)
        if self.resilient is not None:
            decision = yield from self._decide_and_pay(ctx, "request",
                                                       resource)
            if decision.action is Action.GRANTED:
                self._deliver_grant(ctx.task.name, resource)
            if (decision.ask_release
                    and decision.action is not Action.GIVE_UP):
                self._ask_release(decision.ask_release,
                                  on_behalf_of=ctx.task.name,
                                  livelock=decision.livelock)
            self._gate.release(ctx.task.name)
            return GrantOutcome(
                granted=decision.action is Action.GRANTED,
                pending=decision.action is Action.PENDING,
                must_give_up=decision.action is Action.GIVE_UP,
                decision=decision)
        decision = self.core.request(ctx.task.name, resource)
        self._note_invocation(decision.cycles)
        yield from self._charge(ctx, decision.cycles)
        if decision.action is Action.GRANTED:
            self._deliver_grant(ctx.task.name, resource)
        if decision.ask_release and decision.action is not Action.GIVE_UP:
            self._ask_release(decision.ask_release,
                              on_behalf_of=ctx.task.name,
                              livelock=decision.livelock)
        self._gate.release(ctx.task.name)
        return GrantOutcome(
            granted=decision.action is Action.GRANTED,
            pending=decision.action is Action.PENDING,
            must_give_up=decision.action is Action.GIVE_UP,
            decision=decision)

    def release(self, ctx: TaskContext, resource: str) -> Generator:
        yield from ctx.pe.execute(self.api_cycles)
        yield from self._gate.acquire(ctx.task.name)
        if self.resilient is not None:
            decision = yield from self._decide_and_pay(ctx, "release",
                                                       resource)
            self._record_release(ctx.task.name, resource)
            if decision.granted_to is not None:
                self._deliver_grant(decision.granted_to, resource)
            if decision.ask_release:
                self._ask_release(decision.ask_release,
                                  on_behalf_of=ctx.task.name,
                                  livelock=decision.livelock)
            self._gate.release(ctx.task.name)
            return GrantOutcome(granted=True, decision=decision)
        decision = self.core.release(ctx.task.name, resource)
        self._note_invocation(decision.cycles)
        self._record_release(ctx.task.name, resource)
        yield from self._charge(ctx, decision.cycles)
        if decision.granted_to is not None:
            self._deliver_grant(decision.granted_to, resource)
        if decision.ask_release:
            self._ask_release(decision.ask_release,
                              on_behalf_of=ctx.task.name,
                              livelock=decision.livelock)
        self._gate.release(ctx.task.name)
        return GrantOutcome(granted=True, decision=decision)


class MultiUnitResourceService(_WithdrawMixin, ResourceService):
    """Pooled resources through the kernel (the multi-unit extension).

    Wraps a :class:`~repro.deadlock.multiunit_avoidance.MultiUnitAvoider`
    so tasks can request several units of a resource class
    (``ctx.request("DMA", units=2)``).  Grant delivery fires when a
    task's outstanding request for the class is fully satisfied.
    Resource classes are pools, not single peripherals, so no
    peripheral ownership binding is applied.
    """

    def __init__(self, kernel: Kernel, avoider,
                 hardware: bool = False) -> None:
        super().__init__(kernel, avoider.system.resources)
        self.core = avoider
        self.hardware = hardware

    def holder_of(self, resource: str):
        raise NotImplementedError(
            "pooled resources have unit counts, not single holders; "
            "use core.system.allocation_of()")

    def _bind_peripheral(self, process: str, resource: str) -> None:
        pass

    def _unbind_peripheral(self, process: str, resource: str) -> None:
        pass

    def _do_withdraw(self, process: str, resource: str) -> None:
        outstanding = self.core.system.outstanding_request(process,
                                                           resource)
        if outstanding:
            self.core.system.withdraw(process, resource, outstanding)

    def wait_grant(self, ctx: TaskContext, resource: str) -> Generator:
        """Block until the task's outstanding request is fully granted."""
        system = self.core.system
        if (system.outstanding_request(ctx.task.name, resource) == 0
                and system.allocation_of(ctx.task.name, resource) > 0):
            return
        key = (ctx.task.name, resource)
        event = self.kernel.engine.event(name=f"grant.{resource}.{ctx.name}")
        self._grant_waits[key] = event
        yield from self.kernel.block_on(ctx.task, event)

    def request(self, ctx: TaskContext, resource: str,
                units: int = 1) -> Generator:
        yield from ctx.pe.execute(self.api_cycles)
        yield from self._gate.acquire(ctx.task.name)
        decision = self.core.request(ctx.task.name, resource, units)
        self._note_invocation(decision.cycles)
        yield from self._charge(ctx, decision.cycles)
        if decision.action is Action.GRANTED:
            self._deliver_grant(ctx.task.name, resource)
        if decision.ask_release and decision.action is not Action.GIVE_UP:
            self._ask_release(decision.ask_release,
                              on_behalf_of=ctx.task.name,
                              livelock=decision.livelock)
        self._gate.release(ctx.task.name)
        return GrantOutcome(
            granted=decision.action is Action.GRANTED,
            pending=decision.action is Action.PENDING,
            must_give_up=decision.action is Action.GIVE_UP,
            decision=decision)

    def release(self, ctx: TaskContext, resource: str,
                units: int = 0) -> Generator:
        """Release ``units`` (0 = everything held) of a class."""
        system = self.core.system
        held = system.allocation_of(ctx.task.name, resource)
        amount = units if units else held
        yield from ctx.pe.execute(self.api_cycles)
        yield from self._gate.acquire(ctx.task.name)
        decision = self.core.release(ctx.task.name, resource, amount)
        self._note_invocation(decision.cycles)
        self._record_release(ctx.task.name, resource)
        yield from self._charge(ctx, decision.cycles)
        if decision.granted_to is not None and \
                system.outstanding_request(decision.granted_to,
                                           resource) == 0:
            self._deliver_grant(decision.granted_to, resource)
        if decision.ask_release:
            self._ask_release(decision.ask_release,
                              on_behalf_of=ctx.task.name,
                              livelock=decision.livelock)
        self._gate.release(ctx.task.name)
        return GrantOutcome(granted=True, decision=decision)


def make_resource_service(kernel: Kernel, config: str,
                          processes: Iterable[str],
                          resources: Iterable[str],
                          priorities: Mapping[str, int]) -> ResourceService:
    """Build the resource service for a Table 3 configuration name.

    ``config`` is one of ``"RTOS1"`` (software PDDA), ``"RTOS2"`` (DDU),
    ``"RTOS3"`` (software DAA), ``"RTOS4"`` (DAU).
    """
    from repro.deadlock.daa import SoftwareDAA
    from repro.deadlock.dau import DAU

    config = config.upper()
    if config == "RTOS1":
        return DetectionResourceService(kernel, processes, resources,
                                        priorities, use_ddu=False)
    if config == "RTOS2":
        return DetectionResourceService(kernel, processes, resources,
                                        priorities, use_ddu=True)
    if config == "RTOS3":
        core = SoftwareDAA(processes, resources, priorities)
        return AvoidanceResourceService(kernel, core, hardware=False)
    if config == "RTOS4":
        core = DAU(processes, resources, priorities, obs=kernel.obs)
        return AvoidanceResourceService(kernel, core, hardware=True)
    raise ConfigurationError(
        f"unknown deadlock configuration {config!r} "
        "(expected RTOS1..RTOS4)")
