"""Per-PE preemptive priority scheduler with optional round-robin.

One scheduler instance per processing element.  Dispatching is
synchronous bookkeeping; the *running* task's generator advances through
the kernel, which calls :meth:`PEScheduler.preemption_point` at quantum
boundaries and service calls — so preemption latency is bounded by the
kernel's quantum, as on a real cooperative-kernel RTOS tick.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import RTOSError
from repro.obs import NULL_OBS, Observability
from repro.rtos.task import Task, TaskState
from repro.sim.engine import Engine
from repro.sim.trace import Trace


class PEScheduler:
    """Ready queue + running slot for one PE."""

    def __init__(self, engine: Engine, pe_name: str, trace: Trace,
                 round_robin: bool = False,
                 obs: Optional[Observability] = None) -> None:
        self.engine = engine
        self.pe_name = pe_name
        self.trace = trace
        self.round_robin = round_robin
        self.ready: list[Task] = []
        self.running: Optional[Task] = None
        self._arrival_counter = 0
        self._arrival_order: dict[str, int] = {}
        self.dispatch_count = 0
        self.obs = obs if obs is not None else NULL_OBS
        # Shared across every PE of the system (get-or-create by name).
        self._m_dispatches = self.obs.metrics.counter(
            "sched.dispatches", "tasks placed on a CPU")
        self._m_ready_depth = self.obs.metrics.histogram(
            "sched.ready_depth", "ready-queue depth at dispatch",
            bounds=(0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64))

    # -- queue management -------------------------------------------------------

    def _sort_key(self, task: Task) -> tuple:
        return (task.priority, self._arrival_order.get(task.name, 0))

    def activate(self, task: Task) -> None:
        """A task became runnable (released, unblocked, or preempted out)."""
        if task.pe_name != self.pe_name:
            raise RTOSError(
                f"{task.name} activated on wrong PE {self.pe_name}")
        if task in self.ready:
            raise RTOSError(f"{task.name} already ready")
        task.state = TaskState.READY
        self._arrival_order[task.name] = self._arrival_counter
        self._arrival_counter += 1
        self.ready.append(task)
        if self.running is None:
            self.dispatch()
        elif task.priority < self.running.priority:
            # Higher-priority arrival: ask the running task to yield at
            # its next preemption point.
            self.running.preempt_pending = True

    def best_ready(self) -> Optional[Task]:
        if not self.ready:
            return None
        return min(self.ready, key=self._sort_key)

    def dispatch(self) -> Optional[Task]:
        """Fill an empty running slot from the ready queue."""
        if self.running is not None:
            raise RTOSError(f"{self.pe_name}: dispatch while running "
                            f"{self.running.name}")
        task = self.best_ready()
        if task is None:
            return None
        if self.obs.enabled:
            self._m_dispatches.inc()
            self._m_ready_depth.observe(len(self.ready))
        self.ready.remove(task)
        task.state = TaskState.RUNNING
        task.preempt_pending = False
        self.running = task
        self.dispatch_count += 1
        task._needs_context_switch = True
        if task._grant is not None:
            grant, task._grant = task._grant, None
            grant.set(task)
        self.trace.record(self.engine.now, task.name, "run_start",
                          pe=self.pe_name, priority=task.priority)
        return task

    # -- transitions driven by the kernel ---------------------------------------

    def yield_running(self, task: Task, new_state: TaskState) -> None:
        """The running task leaves the CPU (block, preempt, or finish)."""
        if self.running is not task:
            raise RTOSError(
                f"{task.name} yielded {self.pe_name} but "
                f"{self.running and self.running.name} is running")
        self.running = None
        task.preempt_pending = False
        self.trace.record(self.engine.now, task.name, "run_end",
                          pe=self.pe_name)
        if new_state is TaskState.READY:
            self.activate(task)
        else:
            task.state = new_state
        if self.running is None:
            self.dispatch()

    def should_preempt(self, task: Task) -> bool:
        """Does a better candidate exist at this preemption point?"""
        best = self.best_ready()
        if best is None:
            return False
        if best.priority < task.priority:
            return True
        if self.round_robin and best.priority == task.priority:
            return True
        return False

    def requeue_priority(self, task: Task) -> None:
        """Re-evaluate preemption after a priority change (PI/IPCP)."""
        if (self.running is not None and task in self.ready
                and task.priority < self.running.priority):
            self.running.preempt_pending = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        running = self.running.name if self.running else None
        return (f"<PEScheduler {self.pe_name} running={running} "
                f"ready={[t.name for t in self.ready]}>")
