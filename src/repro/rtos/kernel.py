"""The kernel: task lifecycle, CPU arbitration, and the service API.

All application code runs inside tasks; a task body is a generator
function ``fn(ctx)`` that uses the :class:`TaskContext` services
(``compute``, ``lock``/``unlock``, ``request``/``release_resource``,
``malloc``/``free``, IPC).  The kernel charges cycle costs for services
on the calling task's PE, implements bounded-latency preemption at
quantum boundaries, and exposes pluggable back-ends for locks, deadlock
management and dynamic memory (the hardware/software partitioning axis).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro import calibration
from repro.errors import RTOSError
from repro.mpsoc.soc import MPSoC
from repro.rtos.scheduler import PEScheduler
from repro.rtos.task import Task, TaskState
from repro.sim.engine import SimEvent


class Kernel:
    """A shared-kernel multiprocessor RTOS instance on one MPSoC."""

    def __init__(self, soc: MPSoC, quantum: int = 200,
                 round_robin: bool = False,
                 service_overhead: int = calibration.RTOS_SERVICE_OVERHEAD_CYCLES,
                 context_switch_cycles: int = calibration.RTOS_CONTEXT_SWITCH_CYCLES,
                 strict_leak_check: bool = False,
                 ) -> None:
        if quantum < 1:
            raise RTOSError("quantum must be at least one cycle")
        self.strict_leak_check = strict_leak_check
        #: (task name, leaked resource names) per finished-while-holding.
        self.leaks: list[tuple[str, list[str]]] = []
        #: When True, an exception escaping a task body marks the task
        #: FAILED and the system keeps running (fault isolation); when
        #: False (default) the failure surfaces at Kernel.run().
        self.isolate_task_failures = False
        #: (task name, exception) per isolated failure.
        self.task_failures: list = []
        self.soc = soc
        self.engine = soc.engine
        self.trace = soc.trace
        self.obs = soc.obs
        self.quantum = quantum
        self.service_overhead = service_overhead
        self.context_switch_cycles = context_switch_cycles
        metrics = self.obs.metrics
        self._m_context_switches = metrics.counter(
            "kernel.context_switches", "context-switch charges paid")
        self._m_preemptions = metrics.counter(
            "kernel.preemptions", "quantum-boundary preemptions")
        self._m_leaks = metrics.counter(
            "kernel.leaks", "tasks that finished holding resources")
        self._m_task_failures = metrics.counter(
            "kernel.task_failures", "isolated task-body failures")
        self.schedulers: dict[str, PEScheduler] = {
            pe.name: PEScheduler(self.engine, pe.name, self.trace,
                                 round_robin=round_robin, obs=self.obs)
            for pe in soc.pes}
        self.tasks: dict[str, Task] = {}
        self._procs = []
        # Pluggable back-ends (attached by the framework builder).
        self.lock_manager = None
        self.resource_service = None
        self.heap_service = None

    # -- configuration ------------------------------------------------------------

    def attach_lock_manager(self, manager: Any) -> None:
        self.lock_manager = manager

    def attach_resource_service(self, service: Any) -> None:
        self.resource_service = service

    def attach_heap_service(self, service: Any) -> None:
        self.heap_service = service

    # -- task management ------------------------------------------------------------

    def create_task(self, fn: Callable, name: str, priority: int,
                    pe: str, start_time: float = 0.0) -> Task:
        """Register a task; it activates at ``start_time``."""
        if name in self.tasks:
            raise RTOSError(f"duplicate task name {name!r}")
        if pe not in self.schedulers:
            raise RTOSError(f"unknown PE {pe!r}")
        task = Task(name, fn, priority, pe, start_time)
        self.tasks[name] = task
        proc = self.engine.spawn(self._task_body(task), name=f"task.{name}")
        self._procs.append(proc)
        return task

    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation; returns the final simulated time."""
        return self.engine.run(until=until)

    def finished(self, *names: str) -> bool:
        wanted = names if names else tuple(self.tasks)
        return all(self.tasks[n].state is TaskState.FINISHED for n in wanted)

    # -- task lifecycle (engine process per task) ----------------------------------------

    def _task_body(self, task: Task) -> Generator:
        if task.start_time > 0:
            yield task.start_time
        task.stats.activation_time = self.engine.now
        self.trace.record(self.engine.now, task.name, "activate",
                          pe=task.pe_name, priority=task.priority)
        scheduler = self.schedulers[task.pe_name]
        scheduler.activate(task)
        yield from self._wait_for_cpu(task)
        task.stats.first_run_time = self.engine.now
        ctx = TaskContext(self, task)
        try:
            yield from task.fn(ctx)
        except Exception as exc:
            if not self.isolate_task_failures:
                raise
            # Fault isolation: record, release the leaked resources so
            # the rest of the system can continue, mark FAILED.
            self.task_failures.append((task.name, exc))
            self.trace.record(self.engine.now, task.name, "task_failed",
                              error=type(exc).__name__)
            if self.obs.enabled:
                self._m_task_failures.inc()
            if (self.resource_service is not None
                    and task.held_resources):
                for resource in list(task.held_resources):
                    yield from self.resource_service.release(
                        ctx, resource)
            # Heap teardown: a failed task's handles would otherwise
            # leak G_blocks forever (the SoCDMMU exposes reclaim_task;
            # the plain software heap has no per-task ledger).
            reclaim = getattr(self.heap_service, "reclaim_task", None)
            if reclaim is not None:
                reclaim(task.name)
            scheduler.yield_running(task, TaskState.FAILED)
            task.stats.finish_time = self.engine.now
            return
        finally:
            # The finally clause also runs when a forever-blocked task's
            # generator is garbage-collected at interpreter shutdown; in
            # that case the task is not on the CPU and there is nothing
            # to hand back.  Isolated failures were fully handled above.
            if task.state is TaskState.FAILED:
                pass
            elif scheduler.running is task:
                scheduler.yield_running(task, TaskState.FINISHED)
                task.stats.finish_time = self.engine.now
                self.trace.record(self.engine.now, task.name, "finish",
                                  pe=task.pe_name)
                self._check_leaks(task)
            else:
                task.state = TaskState.FINISHED

    def _check_leaks(self, task: Task) -> None:
        """A finished task still holding resources leaked them."""
        if not task.held_resources:
            return
        leaked = list(task.held_resources)
        self.leaks.append((task.name, leaked))
        self.trace.record(self.engine.now, task.name, "resource_leak",
                          resources=",".join(leaked))
        if self.obs.enabled:
            self._m_leaks.inc()
        if self.strict_leak_check:
            raise RTOSError(
                f"task {task.name!r} finished holding {leaked}")

    def _wait_for_cpu(self, task: Task) -> Generator:
        scheduler = self.schedulers[task.pe_name]
        while scheduler.running is not task:
            task._grant = self.engine.event(name=f"cpu.{task.name}")
            yield task._grant
        if task._needs_context_switch:
            task._needs_context_switch = False
            task.stats.context_switches += 1
            if self.obs.enabled:
                self._m_context_switches.inc()
            yield self.context_switch_cycles

    def preemption_point(self, task: Task) -> Generator:
        """Yield the CPU if a better candidate is ready (quantum boundary)."""
        scheduler = self.schedulers[task.pe_name]
        if task.suspend_pending:
            # Park until resume_task() re-activates us; _wait_for_cpu
            # sleeps on a dispatch grant that only activation can fire.
            task.suspend_pending = False
            self.trace.record(self.engine.now, task.name, "suspended",
                              pe=task.pe_name)
            scheduler.yield_running(task, TaskState.SUSPENDED)
            yield from self._wait_for_cpu(task)
            return
        if task.preempt_pending or scheduler.should_preempt(task):
            task.stats.preemptions += 1
            if self.obs.enabled:
                self._m_preemptions.inc()
            self.trace.record(self.engine.now, task.name, "preempted",
                              pe=task.pe_name)
            scheduler.yield_running(task, TaskState.READY)
            yield from self._wait_for_cpu(task)
        else:
            task.preempt_pending = False

    def block_on(self, task: Task, event: SimEvent) -> Generator:
        """Block the running task until ``event`` fires; returns payload."""
        scheduler = self.schedulers[task.pe_name]
        scheduler.yield_running(task, TaskState.BLOCKED)
        self.trace.record(self.engine.now, task.name, "block_start",
                          pe=task.pe_name)
        blocked_at = self.engine.now
        payload = yield event
        task.stats.blocked_cycles += self.engine.now - blocked_at
        self.trace.record(self.engine.now, task.name, "block_end",
                          pe=task.pe_name)
        if task.suspend_pending:
            # A suspension arrived while blocked: park instead of
            # re-joining the ready queue (deferred suspension).
            task.suspend_pending = False
            task.state = TaskState.SUSPENDED
            self.trace.record(self.engine.now, task.name, "suspended",
                              pe=task.pe_name)
        else:
            scheduler.activate(task)
        yield from self._wait_for_cpu(task)
        return payload

    # -- task management services (Section 2.1: "task creation,
    # suspension and resumption") ------------------------------------------------

    def _task_by_name(self, name: str) -> Task:
        try:
            return self.tasks[name]
        except KeyError:
            raise RTOSError(f"unknown task {name!r}") from None

    def suspend_task(self, name: str) -> None:
        """Suspend a task: immediately if READY, at its next safe point
        if RUNNING, deferred past the wake-up if BLOCKED."""
        task = self._task_by_name(name)
        scheduler = self.schedulers[task.pe_name]
        if task.state is TaskState.READY:
            scheduler.ready.remove(task)
            task.state = TaskState.SUSPENDED
            self.trace.record(self.engine.now, task.name, "suspended",
                              pe=task.pe_name)
        elif task.state in (TaskState.RUNNING, TaskState.BLOCKED,
                            TaskState.NEW):
            task.suspend_pending = True
        elif task.state is TaskState.SUSPENDED:
            pass
        else:
            raise RTOSError(f"cannot suspend {name!r} "
                            f"(state {task.state.value})")

    def resume_task(self, name: str) -> None:
        """Resume a suspended task (or cancel a pending suspension)."""
        task = self._task_by_name(name)
        if task.state is TaskState.SUSPENDED:
            self.trace.record(self.engine.now, task.name, "resumed",
                              pe=task.pe_name)
            self.schedulers[task.pe_name].activate(task)
        elif task.suspend_pending:
            task.suspend_pending = False
        # Resuming a task that is not suspended is a no-op, as in most
        # RTOS APIs.

    def set_task_priority(self, name: str, new_priority: int) -> None:
        """Change a task's base priority (not while PI/IPCP-boosted)."""
        task = self._task_by_name(name)
        if new_priority < 0:
            raise RTOSError("priority must be non-negative")
        if task.is_boosted:
            raise RTOSError(
                f"cannot reprioritize {name!r} while priority-boosted")
        task.base_priority = new_priority
        task.priority = new_priority
        scheduler = self.schedulers[task.pe_name]
        if task.state is TaskState.READY:
            scheduler.requeue_priority(task)
        elif (scheduler.running is task and task.state is TaskState.RUNNING
              and scheduler.should_preempt(task)):
            task.preempt_pending = True

    # -- checkpoint protocol -------------------------------------------------------

    SNAPSHOT_KIND = "rtos.kernel"

    @staticmethod
    def _failure_text(exc: Any) -> str:
        """Task failures snapshot (and restore) as text — exception
        objects are not JSON-safe and need not round-trip as objects."""
        if isinstance(exc, str):
            return exc
        return f"{type(exc).__name__}: {exc}"

    def snapshot_state(self) -> dict:
        """Versioned, hashed snapshot of the kernel at quiescence.

        Delegates the quiescence check to the engine snapshot: live
        task generators cannot be serialised, so the kernel is
        snapshottable only once every spawned task has finished or
        failed (the state every experiment driver and campaign checker
        reaches after ``run()``).
        """
        from repro.checkpoint.protocol import snapshot_envelope
        round_robin = next(iter(self.schedulers.values())).round_robin
        return snapshot_envelope(self.SNAPSHOT_KIND, {
            "quantum": self.quantum,
            "round_robin": round_robin,
            "service_overhead": self.service_overhead,
            "context_switch_cycles": self.context_switch_cycles,
            "strict_leak_check": self.strict_leak_check,
            "isolate_task_failures": self.isolate_task_failures,
            "pes": list(self.schedulers),
            "engine": self.engine.snapshot_state(),
            "dispatch_counts": sorted(
                [pe, sched.dispatch_count]
                for pe, sched in self.schedulers.items()),
            "tasks": [self._task_payload(self.tasks[name])
                      for name in sorted(self.tasks)],
            "leaks": [[name, list(resources)]
                      for name, resources in self.leaks],
            "task_failures": [[name, self._failure_text(exc)]
                              for name, exc in self.task_failures],
        })

    @staticmethod
    def _task_payload(task: Task) -> dict:
        stats = task.stats
        return {
            "name": task.name,
            "base_priority": task.base_priority,
            "priority": task.priority,
            "priority_stack": list(task._priority_stack),
            "pe": task.pe_name,
            "start_time": task.start_time,
            "state": task.state.value,
            "held_resources": list(task.held_resources),
            "stats": {
                "activation_time": stats.activation_time,
                "first_run_time": stats.first_run_time,
                "finish_time": stats.finish_time,
                "blocked_cycles": stats.blocked_cycles,
                "lock_wait_cycles": stats.lock_wait_cycles,
                "preemptions": stats.preemptions,
                "context_switches": stats.context_switches,
            },
        }

    @classmethod
    def restore_state(cls, envelope: dict,
                      soc: Optional[MPSoC] = None) -> "Kernel":
        """Rebuild a kernel (and its engine clock) from a snapshot.

        ``soc`` must be a *fresh* MPSoC matching the snapshot's PE
        census; when omitted, a default one of the right size is built.
        Finished tasks are restored as records (``fn=None``) without
        respawning engine processes — new work is created on top with
        :meth:`create_task` as usual.
        """
        from repro.checkpoint.protocol import open_envelope
        from repro.errors import CheckpointError
        from repro.mpsoc.soc import SoCConfig
        state = open_envelope(envelope, kind=cls.SNAPSHOT_KIND)
        if soc is None:
            soc = MPSoC(SoCConfig(num_pes=len(state["pes"])))
        kernel = cls(soc, quantum=state["quantum"],
                     round_robin=state["round_robin"],
                     service_overhead=state["service_overhead"],
                     context_switch_cycles=state["context_switch_cycles"],
                     strict_leak_check=state["strict_leak_check"])
        if list(kernel.schedulers) != list(state["pes"]):
            raise CheckpointError(
                f"PE census mismatch: snapshot has {state['pes']}, "
                f"SoC has {list(kernel.schedulers)}")
        kernel.isolate_task_failures = state["isolate_task_failures"]
        kernel.engine.apply_snapshot(state["engine"])
        for pe, count in state["dispatch_counts"]:
            kernel.schedulers[pe].dispatch_count = count
        for record in state["tasks"]:
            task = Task(record["name"], None, record["base_priority"],
                        record["pe"], record["start_time"])
            task.priority = record["priority"]
            task._priority_stack = list(record["priority_stack"])
            task.state = TaskState(record["state"])
            task.held_resources = list(record["held_resources"])
            stats = record["stats"]
            task.stats.activation_time = stats["activation_time"]
            task.stats.first_run_time = stats["first_run_time"]
            task.stats.finish_time = stats["finish_time"]
            task.stats.blocked_cycles = stats["blocked_cycles"]
            task.stats.lock_wait_cycles = stats["lock_wait_cycles"]
            task.stats.preemptions = stats["preemptions"]
            task.stats.context_switches = stats["context_switches"]
            kernel.tasks[task.name] = task
        kernel.leaks = [(name, list(resources))
                        for name, resources in state["leaks"]]
        kernel.task_failures = [(name, text)
                                for name, text in state["task_failures"]]
        return kernel

    def notify_task(self, task: Task, notification: Any) -> None:
        """Deliver an asynchronous notification (resource give-up etc.)."""
        task.notifications.append(notification)
        if task._notify_event is not None:
            event, task._notify_event = task._notify_event, None
            event.set(notification)

    def priority_changed(self, task: Task) -> None:
        """Re-evaluate scheduling after a PI/IPCP priority change."""
        self.schedulers[task.pe_name].requeue_priority(task)


class TaskContext:
    """The service API visible to application task code."""

    def __init__(self, kernel: Kernel, task: Task) -> None:
        self.kernel = kernel
        self.task = task
        self.pe = kernel.soc.pe(task.pe_name)

    @property
    def now(self) -> float:
        return self.kernel.engine.now

    @property
    def name(self) -> str:
        return self.task.name

    # -- CPU time ------------------------------------------------------------

    def compute(self, cycles: float) -> Generator:
        """Local computation, preemptible at quantum boundaries."""
        remaining = cycles
        while remaining > 0:
            quantum = min(remaining, self.kernel.quantum)
            yield from self.pe.execute(quantum)
            remaining -= quantum
            yield from self.kernel.preemption_point(self.task)

    def service_overhead(self) -> Generator:
        """Kernel entry/exit cost for one service call."""
        yield from self.pe.execute(self.kernel.service_overhead)

    def sleep(self, cycles: float) -> Generator:
        """Sleep without occupying the CPU."""
        if cycles < 0:
            raise RTOSError("negative sleep")
        timer = self.kernel.engine.event(name=f"timer.{self.task.name}")
        self.kernel.engine.schedule(cycles, timer.set, None)
        yield from self.kernel.block_on(self.task, timer)

    # -- observability ---------------------------------------------------------

    def span(self, name: str, gen: Generator, **attrs: Any) -> Generator:
        """Run a service generator inside an observability span.

        A pass-through when observability is disabled.  Application
        code can use it too, to mark phases of a task body::

            yield from ctx.span("phase1", ctx.compute(10_000))
        """
        return self.kernel.obs.wrap(self.task.name, name, gen, **attrs)

    # -- locks ------------------------------------------------------------------

    def lock(self, lock_id: str) -> Generator:
        if self.kernel.lock_manager is None:
            raise RTOSError("no lock manager attached")
        yield from self.span(
            "lock", self.kernel.lock_manager.acquire(self, lock_id),
            lock=lock_id)

    def unlock(self, lock_id: str) -> Generator:
        if self.kernel.lock_manager is None:
            raise RTOSError("no lock manager attached")
        yield from self.span(
            "unlock", self.kernel.lock_manager.release(self, lock_id),
            lock=lock_id)

    # -- deadlock-managed resources ------------------------------------------------

    def request(self, resource: str, units: int = 1) -> Generator:
        """Issue a resource request; returns the service outcome.

        ``units`` is only meaningful for pooled (multi-unit) resource
        services; single-unit services accept only the default 1.
        """
        if self.kernel.resource_service is None:
            raise RTOSError("no resource service attached")
        if units == 1:
            inner = self.kernel.resource_service.request(self, resource)
        else:
            inner = self.kernel.resource_service.request(
                self, resource, units=units)
        outcome = yield from self.span("request", inner,
                                       resource=resource, units=units)
        return outcome

    def release_resource(self, resource: str, units: int = 0) -> Generator:
        """Release a resource (for pools: ``units``, 0 = everything)."""
        if self.kernel.resource_service is None:
            raise RTOSError("no resource service attached")
        if units == 0:
            inner = self.kernel.resource_service.release(self, resource)
        else:
            inner = self.kernel.resource_service.release(
                self, resource, units=units)
        outcome = yield from self.span("release", inner,
                                       resource=resource, units=units)
        return outcome

    def wait_grant(self, resource: str) -> Generator:
        """Block until a pending request for ``resource`` is granted."""
        yield from self.span(
            "wait_grant",
            self.kernel.resource_service.wait_grant(self, resource),
            resource=resource)

    def withdraw_request(self, resource: str) -> Generator:
        """Cancel a pending request (abort a multi-resource acquire)."""
        if self.kernel.resource_service is None:
            raise RTOSError("no resource service attached")
        outcome = yield from self.kernel.resource_service.withdraw(
            self, resource)
        return outcome

    def acquire(self, resource: str, retry_backoff: float = 500.0
                ) -> Generator:
        """Request-until-held convenience loop.

        Handles the three avoidance outcomes: GRANTED returns at once;
        PENDING blocks for the grant; GIVE_UP releases everything this
        task holds, backs off, re-acquires what it gave up and retries —
        the recovery behaviour the paper's scenarios script by hand.
        """
        yield from self.span("acquire", self._acquire(resource,
                                                      retry_backoff),
                             resource=resource)

    def _acquire(self, resource: str, retry_backoff: float) -> Generator:
        while True:
            outcome = yield from self.request(resource)
            if outcome.granted:
                return
            if outcome.must_give_up:
                gave_up = list(self.task.held_resources)
                for held in gave_up:
                    yield from self.release_resource(held)
                yield from self.sleep(retry_backoff)
                for held in gave_up:
                    yield from self.acquire(held, retry_backoff)
                continue
            yield from self.wait_grant(resource)
            return

    # -- peripherals --------------------------------------------------------------

    def use_peripheral(self, name: str, cycles: float) -> Generator:
        """Run an owned peripheral for ``cycles`` (ownership enforced)."""
        peripheral = self.kernel.soc.peripheral(name)
        yield from self.span("use_peripheral",
                             peripheral.serve(self.task.name, cycles),
                             peripheral=name, cycles=cycles)

    # -- dynamic memory --------------------------------------------------------------

    def malloc(self, size_bytes: int) -> Generator:
        if self.kernel.heap_service is None:
            raise RTOSError("no heap service attached")
        address = yield from self.span(
            "malloc", self.kernel.heap_service.malloc(self, size_bytes),
            bytes=size_bytes)
        return address

    def free(self, address: int) -> Generator:
        if self.kernel.heap_service is None:
            raise RTOSError("no heap service attached")
        yield from self.span(
            "free", self.kernel.heap_service.free(self, address))

    # -- notifications ----------------------------------------------------------------

    def pop_notifications(self) -> list:
        """Drain this task's pending notifications."""
        notes, self.task.notifications = self.task.notifications, []
        return notes

    def wait_notification(self) -> Generator:
        """Block until a notification arrives; returns the first one."""
        if self.task.notifications:
            return self.task.notifications.pop(0)
        self.task._notify_event = self.kernel.engine.event(
            name=f"notify.{self.task.name}")
        yield from self.kernel.block_on(self.task, self.task._notify_event)
        return self.task.notifications.pop(0)
