"""Software dynamic memory management (the glibc-like baseline).

:class:`SoftwareHeap` is a first-fit free-list allocator over a region
of the shared L2 memory with the cycle-cost model calibrated to Table
11: a malloc costs a base amount plus a per-free-list-entry walk, a free
costs coalescing work.  The allocator actually maintains the free list,
so fragmentation genuinely lengthens the walk — the behaviour that makes
software memory management non-deterministic, which is the paper's
argument for the SoCDMMU.

Heap operations from different PEs serialize on a heap mutex, as glibc's
arena lock does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from repro import calibration
from repro.errors import AllocationError
from repro.rtos.kernel import Kernel, TaskContext
from repro.sim.process import SimResource


@dataclass
class HeapStats:
    """Memory-management cycle accounting (Tables 11-12)."""

    malloc_calls: int = 0
    free_calls: int = 0
    mm_cycles: float = 0.0
    peak_in_use: int = 0
    failed_allocations: int = 0
    walk_lengths: list = field(default_factory=list)

    @property
    def calls(self) -> int:
        return self.malloc_calls + self.free_calls


_HEADER_BYTES = 8   # allocation header, as in a dlmalloc-style heap
_ALIGN = 8


class SoftwareHeap:
    """First-fit free-list allocator with calibrated cycle costs."""

    def __init__(self, kernel: Kernel, base: int = 0x10_0000,
                 size_bytes: int = 4 * 1024 * 1024) -> None:
        if size_bytes <= 0:
            raise AllocationError("heap size must be positive")
        self.kernel = kernel
        self.base = base
        self.size_bytes = size_bytes
        # Free list of (address, size) sorted by address.
        self._free: list[tuple[int, int]] = [(base, size_bytes)]
        self._allocated: dict[int, int] = {}
        self._in_use = 0
        self._mutex = SimResource(kernel.engine, "heap.mutex")
        self.stats = HeapStats()
        metrics = kernel.obs.metrics
        self._m_mallocs = metrics.counter(
            "heap.mallocs", "malloc calls served")
        self._m_frees = metrics.counter(
            "heap.frees", "free calls served")
        self._m_failed = metrics.counter(
            "heap.failed", "allocations refused (heap exhausted)")
        self._m_walk = metrics.histogram(
            "heap.walk_entries", "free-list entries walked per malloc",
            bounds=(1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64))
        self._m_alloc_bytes = metrics.histogram(
            "heap.alloc_bytes", "padded bytes per allocation")
        self._m_free_list = metrics.gauge(
            "heap.free_list_entries", "free-list length")

    # -- allocator mechanics (zero simulated time; costs charged by callers) --

    def _find_block(self, size: int) -> tuple[int, int]:
        """First-fit search; returns (free-list index, walked entries)."""
        for index, (_addr, block_size) in enumerate(self._free):
            if block_size >= size:
                return index, index + 1
        return -1, len(self._free)

    def _carve(self, index: int, size: int) -> int:
        address, block_size = self._free[index]
        if block_size == size:
            self._free.pop(index)
        else:
            self._free[index] = (address + size, block_size - size)
        self._allocated[address] = size
        self._in_use += size
        self.stats.peak_in_use = max(self.stats.peak_in_use, self._in_use)
        return address

    def _coalesce(self, address: int, size: int) -> None:
        self._free.append((address, size))
        self._free.sort()
        merged: list[tuple[int, int]] = []
        for addr, sz in self._free:
            if merged and merged[-1][0] + merged[-1][1] == addr:
                prev_addr, prev_sz = merged[-1]
                merged[-1] = (prev_addr, prev_sz + sz)
            else:
                merged.append((addr, sz))
        self._free = merged

    @staticmethod
    def _padded(size_bytes: int) -> int:
        size = size_bytes + _HEADER_BYTES
        return (size + _ALIGN - 1) // _ALIGN * _ALIGN

    # -- the service API -------------------------------------------------------

    def malloc(self, ctx: TaskContext, size_bytes: int) -> Generator:
        """Allocate; returns the block address.  Charges Table 11 costs."""
        if size_bytes <= 0:
            raise AllocationError("allocation size must be positive")
        task = ctx.task.name
        yield from self._mutex.acquire(task)
        size = self._padded(size_bytes)
        index, walked = self._find_block(size)
        cost = (calibration.SW_MALLOC_BASE_CYCLES
                + walked * calibration.SW_MALLOC_WALK_CYCLES
                + (size // 1024) * calibration.SW_MALLOC_SIZE_CYCLES_PER_KB)
        yield from ctx.pe.execute(cost)
        self.stats.mm_cycles += cost
        self.stats.malloc_calls += 1
        self.stats.walk_lengths.append(walked)
        if self.kernel.obs.enabled:
            self._m_walk.observe(walked)
        if index < 0:
            self.stats.failed_allocations += 1
            if self.kernel.obs.enabled:
                self._m_failed.inc()
            self._mutex.release(task)
            raise AllocationError(
                f"heap exhausted: {size_bytes} bytes requested")
        address = self._carve(index, size)
        if self.kernel.obs.enabled:
            self._m_mallocs.inc()
            self._m_alloc_bytes.observe(size)
            self._m_free_list.set(len(self._free))
        self._mutex.release(task)
        return address

    def free(self, ctx: TaskContext, address: int) -> Generator:
        """Release a block back to the free list."""
        task = ctx.task.name
        yield from self._mutex.acquire(task)
        if address not in self._allocated:
            self._mutex.release(task)
            raise AllocationError(f"free of unallocated address {address:#x}")
        cost = calibration.SW_FREE_CYCLES
        yield from ctx.pe.execute(cost)
        self.stats.mm_cycles += cost
        self.stats.free_calls += 1
        size = self._allocated.pop(address)
        self._in_use -= size
        self._coalesce(address, size)
        if self.kernel.obs.enabled:
            self._m_frees.inc()
            self._m_free_list.set(len(self._free))
        self._mutex.release(task)

    # -- checkpoint plumbing -----------------------------------------------------

    def snapshot_payload(self) -> dict:
        """JSON-safe free list + allocation table + stats (no envelope;
        the owning service wraps it — the SoCDMMU checkpoints its
        degraded-mode fallback heap through this)."""
        return {
            "base": self.base,
            "size_bytes": self.size_bytes,
            "free": [[addr, size] for addr, size in self._free],
            "allocated": sorted(
                [addr, size] for addr, size in self._allocated.items()),
            "in_use": self._in_use,
            "stats": {
                "malloc_calls": self.stats.malloc_calls,
                "free_calls": self.stats.free_calls,
                "mm_cycles": self.stats.mm_cycles,
                "peak_in_use": self.stats.peak_in_use,
                "failed_allocations": self.stats.failed_allocations,
                "walk_lengths": list(self.stats.walk_lengths),
            },
        }

    @classmethod
    def from_payload(cls, kernel: Kernel, data: dict) -> "SoftwareHeap":
        heap = cls(kernel, base=data["base"], size_bytes=data["size_bytes"])
        heap._free = [(addr, size) for addr, size in data["free"]]
        heap._allocated = {addr: size for addr, size in data["allocated"]}
        heap._in_use = data["in_use"]
        stats = data["stats"]
        heap.stats.malloc_calls = stats["malloc_calls"]
        heap.stats.free_calls = stats["free_calls"]
        heap.stats.mm_cycles = stats["mm_cycles"]
        heap.stats.peak_in_use = stats["peak_in_use"]
        heap.stats.failed_allocations = stats["failed_allocations"]
        heap.stats.walk_lengths = list(stats["walk_lengths"])
        return heap

    @property
    def in_use_bytes(self) -> int:
        return self._in_use

    @property
    def free_bytes(self) -> int:
        return sum(size for _addr, size in self._free)

    @property
    def fragmentation(self) -> float:
        """1 - (largest free block / total free): 0 when unfragmented."""
        if not self._free:
            return 0.0
        total = self.free_bytes
        largest = max(size for _addr, size in self._free)
        return 1.0 - largest / total if total else 0.0
