"""Atalanta-flavoured RTOS API façade.

Atalanta [5] exposes a C API (``asc_task_create``, ``asc_sema_wait``,
...).  This module provides the same surface over the kernel so code
ported from an Atalanta-style RTOS maps one-to-one; it is also the
most convenient way to use the RTOS without touching kernel internals.

Handle-based: creation calls return small integer ids, the service
calls take them — as the C API does.  All blocking calls are generator
sub-protocols (``yield from api.sema_wait(ctx, sid)``) like the rest of
the task-context API.
"""

from __future__ import annotations

import itertools
from typing import Callable, Generator, Optional

from repro.errors import RTOSError
from repro.rtos.ipc import EventFlags, Mailbox, MessageQueue
from repro.rtos.kernel import Kernel, TaskContext
from repro.rtos.sync import Semaphore


class AtalantaAPI:
    """Handle-based façade over one kernel instance."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self._ids = itertools.count(1)
        self._semaphores: dict = {}
        self._mailboxes: dict = {}
        self._queues: dict = {}
        self._flags: dict = {}

    # -- task management -----------------------------------------------------

    def task_create(self, fn: Callable, name: str, priority: int,
                    pe: str, start_time: float = 0.0) -> str:
        """asc_task_create: returns the task name (its handle)."""
        self.kernel.create_task(fn, name, priority, pe,
                                start_time=start_time)
        return name

    def task_suspend(self, name: str) -> None:
        """asc_task_suspend."""
        self.kernel.suspend_task(name)

    def task_resume(self, name: str) -> None:
        """asc_task_resume."""
        self.kernel.resume_task(name)

    def task_priority_change(self, name: str, priority: int) -> None:
        """asc_task_priority_change."""
        self.kernel.set_task_priority(name, priority)

    def task_delay(self, ctx: TaskContext, cycles: float) -> Generator:
        """asc_task_delay: sleep the calling task."""
        yield from ctx.sleep(cycles)

    # -- semaphores ---------------------------------------------------------------

    def sema_create(self, initial: int = 0,
                    name: Optional[str] = None) -> int:
        handle = next(self._ids)
        self._semaphores[handle] = Semaphore(
            self.kernel, name or f"sema{handle}", initial=initial)
        return handle

    def sema_wait(self, ctx: TaskContext, handle: int) -> Generator:
        yield from self._get(self._semaphores, handle, "semaphore"
                             ).wait(ctx)

    def sema_signal(self, ctx: TaskContext, handle: int) -> Generator:
        yield from self._get(self._semaphores, handle, "semaphore"
                             ).signal(ctx)

    # -- mutex-style locks (the lock manager's long locks) --------------------------

    def lock(self, ctx: TaskContext, lock_id: str) -> Generator:
        """asc_mutex_lock (priority inheritance / IPCP per build)."""
        yield from ctx.lock(lock_id)

    def unlock(self, ctx: TaskContext, lock_id: str) -> Generator:
        yield from ctx.unlock(lock_id)

    # -- mailboxes --------------------------------------------------------------------

    def mbox_create(self, name: Optional[str] = None) -> int:
        handle = next(self._ids)
        self._mailboxes[handle] = Mailbox(
            self.kernel, name or f"mbox{handle}")
        return handle

    def mbox_post(self, ctx: TaskContext, handle: int,
                  message) -> Generator:
        yield from self._get(self._mailboxes, handle, "mailbox"
                             ).post(ctx, message)

    def mbox_pend(self, ctx: TaskContext, handle: int) -> Generator:
        message = yield from self._get(self._mailboxes, handle,
                                       "mailbox").pend(ctx)
        return message

    # -- message queues ------------------------------------------------------------------

    def queue_create(self, capacity: int = 8,
                     name: Optional[str] = None) -> int:
        handle = next(self._ids)
        self._queues[handle] = MessageQueue(
            self.kernel, name or f"queue{handle}", capacity=capacity)
        return handle

    def queue_send(self, ctx: TaskContext, handle: int,
                   item) -> Generator:
        yield from self._get(self._queues, handle, "queue"
                             ).send(ctx, item)

    def queue_receive(self, ctx: TaskContext, handle: int) -> Generator:
        item = yield from self._get(self._queues, handle, "queue"
                                    ).receive(ctx)
        return item

    # -- event flags ----------------------------------------------------------------------

    def flag_create(self, name: Optional[str] = None) -> int:
        handle = next(self._ids)
        self._flags[handle] = EventFlags(
            self.kernel, name or f"flags{handle}")
        return handle

    def flag_set(self, ctx: TaskContext, handle: int,
                 mask: int) -> Generator:
        yield from self._get(self._flags, handle, "flag group"
                             ).set(ctx, mask)

    def flag_wait(self, ctx: TaskContext, handle: int, mask: int,
                  wait_all: bool = False) -> Generator:
        value = yield from self._get(self._flags, handle, "flag group"
                                     ).wait(ctx, mask, wait_all=wait_all)
        return value

    # -- memory management -------------------------------------------------------------------

    def mem_alloc(self, ctx: TaskContext, size_bytes: int) -> Generator:
        """asc_mem_alloc: software heap or SoCDMMU per the build."""
        address = yield from ctx.malloc(size_bytes)
        return address

    def mem_free(self, ctx: TaskContext, address: int) -> Generator:
        yield from ctx.free(address)

    # -- helpers ---------------------------------------------------------------------------------

    @staticmethod
    def _get(table: dict, handle: int, kind: str):
        try:
            return table[handle]
        except KeyError:
            raise RTOSError(f"unknown {kind} handle {handle}") from None
