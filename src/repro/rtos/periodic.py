"""Periodic task executive with deadline monitoring.

The robot task set (Section 5.5) is a classic fixed-priority periodic
workload: each task re-releases every period and must respond within
its WCRT requirement.  :class:`PeriodicTask` packages that pattern —
periodic release, per-activation deadline check through the
:class:`~repro.rtos.watchdog.Watchdog`, overrun policy — so
applications declare *what* runs instead of hand-rolling release loops.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import RTOSError
from repro.rtos.kernel import Kernel
from repro.rtos.watchdog import Watchdog


class OverrunPolicy(enum.Enum):
    """What to do when an activation outlives its period."""

    SKIP = "skip"          # drop the missed release(s), re-align
    CATCH_UP = "catch-up"  # run back-to-back until re-aligned


@dataclass
class ActivationRecord:
    """Timing of one activation."""

    index: int
    release: float
    start: float
    finish: float

    @property
    def response_time(self) -> float:
        return self.finish - self.release


@dataclass
class PeriodicStats:
    activations: int = 0
    deadline_misses: int = 0
    overruns: int = 0
    records: list = field(default_factory=list)

    @property
    def worst_response(self) -> float:
        if not self.records:
            return 0.0
        return max(record.response_time for record in self.records)

    @property
    def mean_response(self) -> float:
        if not self.records:
            return 0.0
        return (sum(record.response_time for record in self.records)
                / len(self.records))


class PeriodicTask:
    """A fixed-priority periodic task with deadline monitoring.

    ``body(ctx)`` is one activation; the executive re-releases it every
    ``period`` cycles for ``activations`` rounds (or forever when 0),
    checking each response against ``deadline`` (default: the period).
    """

    def __init__(self, kernel: Kernel, name: str, body: Callable,
                 priority: int, pe: str, period: float,
                 deadline: Optional[float] = None,
                 activations: int = 0, offset: float = 0.0,
                 overrun_policy: OverrunPolicy = OverrunPolicy.SKIP,
                 watchdog: Optional[Watchdog] = None) -> None:
        if period <= 0:
            raise RTOSError("period must be positive")
        if deadline is not None and deadline <= 0:
            raise RTOSError("deadline must be positive")
        self.kernel = kernel
        self.name = name
        self.body = body
        self.period = period
        self.deadline = deadline if deadline is not None else period
        self.activations = activations
        self.offset = offset
        self.overrun_policy = overrun_policy
        self.watchdog = watchdog
        self.stats = PeriodicStats()
        kernel.create_task(self._executive, name, priority, pe,
                           start_time=offset)

    def _executive(self, ctx):
        index = 0
        # Releases anchor to the nominal grid (offset + k*period); the
        # first actual run starts later by scheduling latency, which
        # correctly counts into the response time.
        release = self.offset
        while self.activations == 0 or index < self.activations:
            start = ctx.now
            watch = None
            if self.watchdog is not None:
                watch = self.watchdog.arm(f"{self.name}#{index}",
                                          self.deadline)
            yield from self.body(ctx)
            finish = ctx.now
            if watch is not None and self.watchdog.is_active(watch):
                self.watchdog.disarm(watch)
            record = ActivationRecord(index=index, release=release,
                                      start=start, finish=finish)
            self.stats.records.append(record)
            self.stats.activations += 1
            if record.response_time > self.deadline:
                self.stats.deadline_misses += 1
                self.kernel.trace.record(finish, self.name,
                                         "deadline_missed",
                                         activation=index,
                                         response=record.response_time)
            index += 1
            next_release = release + self.period
            if finish < next_release:
                yield from ctx.sleep(next_release - finish)
                release = next_release
            else:
                # Overrun: the next release already passed.
                self.stats.overruns += 1
                if self.overrun_policy is OverrunPolicy.CATCH_UP:
                    release = next_release
                else:
                    # Skip the missed releases; re-align to the grid.
                    missed = int((finish - release) // self.period)
                    release = release + (missed + 1) * self.period
                    if self.activations:
                        index += missed
                    if finish < release:
                        yield from ctx.sleep(release - finish)

    @property
    def utilization_estimate(self) -> float:
        """Measured mean busy fraction: mean response over period."""
        return self.stats.mean_response / self.period
