"""Watchdog / deadline-monitor service.

Real-time claims (the robot's 250/300/600 us WCRTs, Section 5.5) need a
mechanism that *notices* a missed deadline, not just post-hoc analysis.
The watchdog arms a one-shot (or periodic, via :meth:`kick`) timer per
monitored activity; if the timer fires before :meth:`kick`/:meth:`disarm`,
the miss is recorded, traced, and an optional callback runs (e.g. to
suspend the offender or trigger a mode change).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import RTOSError
from repro.rtos.kernel import Kernel


@dataclass(frozen=True)
class WatchdogTimeout:
    """One recorded deadline miss."""

    watch_id: int
    name: str
    armed_at: float
    deadline: float
    fired_at: float


@dataclass
class _Watch:
    watch_id: int
    name: str
    deadline_cycles: float
    armed_at: float
    deadline: float
    on_timeout: Optional[Callable]
    active: bool = True
    generation: int = 0


class Watchdog:
    """Deadline monitoring over the kernel's engine clock."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self._watches: dict[int, _Watch] = {}
        self._ids = itertools.count(1)
        self.timeouts: list[WatchdogTimeout] = []

    # -- arming -----------------------------------------------------------------

    def arm(self, name: str, deadline_cycles: float,
            on_timeout: Optional[Callable] = None) -> int:
        """Start watching; returns the watch id."""
        if deadline_cycles <= 0:
            raise RTOSError("deadline must be positive")
        watch_id = next(self._ids)
        watch = _Watch(
            watch_id=watch_id,
            name=name,
            deadline_cycles=deadline_cycles,
            armed_at=self.kernel.engine.now,
            deadline=self.kernel.engine.now + deadline_cycles,
            on_timeout=on_timeout)
        self._watches[watch_id] = watch
        self._schedule(watch)
        return watch_id

    def _schedule(self, watch: _Watch) -> None:
        generation = watch.generation
        self.kernel.engine.schedule(
            watch.deadline - self.kernel.engine.now,
            self._expire, watch.watch_id, generation)

    def _expire(self, watch_id: int, generation: int) -> None:
        watch = self._watches.get(watch_id)
        if watch is None or not watch.active:
            return
        if watch.generation != generation:
            return                      # kicked since this was scheduled
        watch.active = False
        timeout = WatchdogTimeout(
            watch_id=watch_id,
            name=watch.name,
            armed_at=watch.armed_at,
            deadline=watch.deadline,
            fired_at=self.kernel.engine.now)
        self.timeouts.append(timeout)
        self.kernel.trace.record(self.kernel.engine.now, watch.name,
                                 "deadline_missed",
                                 watch_id=watch_id,
                                 deadline=watch.deadline)
        if watch.on_timeout is not None:
            watch.on_timeout(timeout)

    # -- servicing ----------------------------------------------------------------

    def kick(self, watch_id: int) -> None:
        """Service the watchdog: restart the deadline window."""
        watch = self._require(watch_id)
        if not watch.active:
            raise RTOSError(
                f"watch {watch_id} already expired; re-arm instead")
        watch.generation += 1
        watch.armed_at = self.kernel.engine.now
        watch.deadline = self.kernel.engine.now + watch.deadline_cycles
        self._schedule(watch)

    def disarm(self, watch_id: int) -> bool:
        """Stop watching; returns False when the deadline already hit."""
        watch = self._require(watch_id)
        was_active = watch.active
        watch.active = False
        del self._watches[watch_id]
        return was_active

    def is_active(self, watch_id: int) -> bool:
        watch = self._watches.get(watch_id)
        return bool(watch and watch.active)

    @property
    def miss_count(self) -> int:
        return len(self.timeouts)

    def _require(self, watch_id: int) -> _Watch:
        try:
            return self._watches[watch_id]
        except KeyError:
            raise RTOSError(f"unknown watch id {watch_id}") from None
