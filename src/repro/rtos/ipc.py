"""Inter-process communication primitives (Section 2.1).

Atalanta provides "various IPC primitives such as semaphores, mutexes,
mailboxes, queues and events".  Semaphores and mutexes live in
:mod:`repro.rtos.sync`; this module adds:

* :class:`Mailbox` — a single-slot message rendezvous;
* :class:`MessageQueue` — a bounded FIFO with blocking send/receive;
* :class:`EventFlags` — a bit-mask event group with wait-any/wait-all.

All primitives charge the kernel service overhead and block through the
kernel so waiting tasks release their PE.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from repro.errors import RTOSError
from repro.rtos.kernel import Kernel, TaskContext


class Mailbox:
    """Single-message mailbox: post fails over to blocking when full."""

    def __init__(self, kernel: Kernel, name: str) -> None:
        self.kernel = kernel
        self.name = name
        self._message: Any = None
        self._full = False
        self._receivers: list = []
        self._senders: list = []

    def post(self, ctx: TaskContext, message: Any) -> Generator:
        """Deposit a message; blocks while the mailbox is full."""
        return self.kernel.obs.wrap(ctx.task.name, "mbox.post",
                                    self._post(ctx, message),
                                    mailbox=self.name)

    def _post(self, ctx: TaskContext, message: Any) -> Generator:
        yield from ctx.service_overhead()
        while self._full:
            gate = self.kernel.engine.event(name=f"mbox.{self.name}.send")
            self._senders.append(gate)
            yield from self.kernel.block_on(ctx.task, gate)
        if self._receivers:
            grant = self._receivers.pop(0)
            grant.set(message)
            return
        self._message = message
        self._full = True

    def pend(self, ctx: TaskContext) -> Generator:
        """Receive a message; blocks while the mailbox is empty."""
        return self.kernel.obs.wrap(ctx.task.name, "mbox.pend",
                                    self._pend(ctx), mailbox=self.name)

    def _pend(self, ctx: TaskContext) -> Generator:
        yield from ctx.service_overhead()
        if self._full:
            message = self._message
            self._message = None
            self._full = False
            if self._senders:
                self._senders.pop(0).set(None)
            return message
        grant = self.kernel.engine.event(name=f"mbox.{self.name}.recv")
        self._receivers.append(grant)
        message = yield from self.kernel.block_on(ctx.task, grant)
        return message

    def peek(self) -> Optional[Any]:
        """Non-blocking, zero-cost look at the stored message."""
        return self._message if self._full else None


class MessageQueue:
    """Bounded FIFO queue with blocking send and receive."""

    def __init__(self, kernel: Kernel, name: str, capacity: int = 8) -> None:
        if capacity < 1:
            raise RTOSError("queue capacity must be at least 1")
        self.kernel = kernel
        self.name = name
        self.capacity = capacity
        self._items: deque = deque()
        self._receivers: list = []
        self._senders: list = []

    def __len__(self) -> int:
        return len(self._items)

    def send(self, ctx: TaskContext, item: Any) -> Generator:
        return self.kernel.obs.wrap(ctx.task.name, "queue.send",
                                    self._send(ctx, item), queue=self.name)

    def _send(self, ctx: TaskContext, item: Any) -> Generator:
        yield from ctx.service_overhead()
        while len(self._items) >= self.capacity and not self._receivers:
            gate = self.kernel.engine.event(name=f"queue.{self.name}.send")
            self._senders.append(gate)
            yield from self.kernel.block_on(ctx.task, gate)
        if self._receivers:
            self._receivers.pop(0).set(item)
            return
        self._items.append(item)

    def receive(self, ctx: TaskContext) -> Generator:
        return self.kernel.obs.wrap(ctx.task.name, "queue.receive",
                                    self._receive(ctx), queue=self.name)

    def _receive(self, ctx: TaskContext) -> Generator:
        yield from ctx.service_overhead()
        if self._items:
            item = self._items.popleft()
            if self._senders:
                self._senders.pop(0).set(None)
            return item
        grant = self.kernel.engine.event(name=f"queue.{self.name}.recv")
        self._receivers.append(grant)
        item = yield from self.kernel.block_on(ctx.task, grant)
        return item


class EventFlags:
    """A 32-bit event-flag group with wait-any / wait-all semantics."""

    def __init__(self, kernel: Kernel, name: str) -> None:
        self.kernel = kernel
        self.name = name
        self.flags = 0
        self._waiters: list = []   # [(mask, wait_all, event), ...]

    def set(self, ctx: TaskContext, mask: int) -> Generator:
        """Set flag bits; wakes every waiter whose condition now holds."""
        if mask < 0:
            raise RTOSError("mask must be non-negative")
        yield from ctx.service_overhead()
        self.flags |= mask
        still_waiting = []
        for wanted, wait_all, event in self._waiters:
            if self._satisfied(wanted, wait_all):
                event.set(self.flags)
            else:
                still_waiting.append((wanted, wait_all, event))
        self._waiters = still_waiting

    def clear(self, ctx: TaskContext, mask: int) -> Generator:
        yield from ctx.service_overhead()
        self.flags &= ~mask

    def wait(self, ctx: TaskContext, mask: int,
             wait_all: bool = False) -> Generator:
        """Block until the masked bits are set (any or all)."""
        if mask == 0:
            raise RTOSError("cannot wait on an empty mask")
        yield from ctx.service_overhead()
        if self._satisfied(mask, wait_all):
            return self.flags
        event = self.kernel.engine.event(name=f"flags.{self.name}")
        self._waiters.append((mask, wait_all, event))
        flags = yield from self.kernel.block_on(ctx.task, event)
        return flags

    def _satisfied(self, mask: int, wait_all: bool) -> bool:
        if wait_all:
            return (self.flags & mask) == mask
        return bool(self.flags & mask)
