"""Task control blocks.

A task is a generator function ``fn(ctx)`` plus scheduling metadata.
Priorities follow the RTOS convention: *smaller number = higher
priority* (the paper's "p1 highest" ordering is priority 1..4).

``priority`` is the *effective* priority — raised by priority
inheritance or the immediate priority ceiling protocol — while
``base_priority`` is the assigned one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import RTOSError


class TaskState(enum.Enum):
    """Lifecycle states of a task."""

    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    SUSPENDED = "suspended"
    FINISHED = "finished"
    FAILED = "failed"


@dataclass
class TaskStats:
    """Per-task measurements consumed by the experiment harnesses."""

    activation_time: Optional[float] = None
    first_run_time: Optional[float] = None
    finish_time: Optional[float] = None
    blocked_cycles: float = 0.0
    lock_wait_cycles: float = 0.0
    preemptions: int = 0
    context_switches: int = 0

    @property
    def response_time(self) -> Optional[float]:
        if self.activation_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.activation_time


class Task:
    """One schedulable task."""

    def __init__(self, name: str, fn: Callable, priority: int,
                 pe_name: str, start_time: float = 0.0) -> None:
        if priority < 0:
            raise RTOSError("priority must be non-negative")
        if start_time < 0:
            raise RTOSError("start_time must be non-negative")
        self.name = name
        self.fn = fn
        self.base_priority = priority
        self.priority = priority
        self.pe_name = pe_name
        self.start_time = start_time
        self.state = TaskState.NEW
        self.stats = TaskStats()
        #: Set when a higher-priority task wants this task's PE.
        self.preempt_pending = False
        #: Set when the task should park itself at its next safe point.
        self.suspend_pending = False
        #: Scheduler grant event while waiting for the CPU.
        self._grant = None
        #: True right after a dispatch that switched tasks (charge a CS).
        self._needs_context_switch = False
        #: Inbox of resource-manager notifications (grants, give-ups).
        self.notifications: list = []
        self._notify_event = None
        #: Resources currently held (kept in sync by the resource layer).
        self.held_resources: list[str] = []
        #: Priority-inheritance bookkeeping: stack of inherited values.
        self._priority_stack: list[int] = []

    # -- effective-priority manipulation (PI / IPCP) ---------------------------

    def push_priority(self, new_priority: int) -> None:
        """Raise (never lower) the effective priority, remembering the old."""
        self._priority_stack.append(self.priority)
        self.priority = min(self.priority, new_priority)

    def pop_priority(self) -> None:
        if not self._priority_stack:
            raise RTOSError(f"{self.name}: priority stack underflow")
        self.priority = self._priority_stack.pop()

    @property
    def is_boosted(self) -> bool:
        return self.priority != self.base_priority

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Task {self.name} prio={self.priority} "
                f"state={self.state.value} pe={self.pe_name}>")
