"""System-state reporting: a 'ps' for the simulated RTOS/MPSoC.

Call :func:`system_report` on a built system after (or during) a run to
get a text snapshot a developer would actually read: per-PE utilization
and bus statistics, the task table with states/priorities/response
times, lock statistics, heap statistics and the deadlock service's
counters.
"""

from __future__ import annotations

from typing import Optional

from repro.textutils import render_table
from repro.rtos.kernel import Kernel


def task_table(kernel: Kernel) -> str:
    rows = []
    for task in kernel.tasks.values():
        stats = task.stats
        rows.append((
            task.name, task.pe_name, task.state.value,
            task.priority, task.base_priority,
            stats.response_time if stats.response_time is not None else "-",
            round(stats.blocked_cycles),
            stats.preemptions, stats.context_switches,
            ",".join(task.held_resources) or "-"))
    return render_table(
        ["task", "pe", "state", "prio", "base", "response",
         "blocked", "preempt", "cs", "holding"],
        rows, title="Task table")


def pe_table(kernel: Kernel) -> str:
    rows = []
    for pe in kernel.soc.pes:
        scheduler = kernel.schedulers[pe.name]
        rows.append((
            pe.name, round(pe.busy_cycles),
            f"{100 * pe.utilization:.1f}%",
            pe.bus_accesses,
            scheduler.dispatch_count,
            scheduler.running.name if scheduler.running else "-",
            len(scheduler.ready)))
    return render_table(
        ["pe", "busy", "util", "bus ops", "dispatches", "running",
         "ready"],
        rows, title="Processing elements")


def bus_summary(kernel: Kernel) -> str:
    bus = kernel.soc.bus
    return (f"bus: {bus.total_transactions} transaction(s), "
            f"{bus.busy_cycles} busy cycle(s), "
            f"utilization {100 * bus.utilization:.1f}%, "
            f"contention {bus.contention_cycles:.0f} cycle(s)")


def service_summary(system) -> Optional[str]:
    service = system.resource_service
    if service is None:
        return None
    stats = service.stats
    line = (f"deadlock service ({system.config.deadlock}): "
            f"{stats.invocations} invocation(s), mean "
            f"{stats.mean_algorithm_cycles:.1f} cycle(s)")
    if stats.deadlock_found_at is not None:
        line += f", deadlock detected at t={stats.deadlock_found_at:.0f}"
    core = getattr(service, "core", None)
    if core is not None:
        line += (f", R-dl {core.stats.rdl_events}, "
                 f"G-dl {core.stats.gdl_events}, "
                 f"livelock {core.stats.livelock_events}")
    return line


def lock_summary(system) -> Optional[str]:
    manager = system.lock_manager
    stats = getattr(manager, "stats", None)
    if stats is None or stats.acquisitions == 0:
        return None
    return (f"locks: {stats.acquisitions} acquisition(s), "
            f"{stats.contended_acquisitions} contended, mean latency "
            f"{stats.mean_latency:.0f}, mean delay {stats.mean_delay:.0f}")


def heap_summary(system) -> Optional[str]:
    heap = system.heap
    stats = getattr(heap, "stats", None)
    if stats is None or stats.calls == 0:
        return None
    return (f"heap: {stats.malloc_calls} malloc / {stats.free_calls} "
            f"free, {stats.mm_cycles:.0f} management cycle(s), "
            f"{stats.failed_allocations} failure(s)")


def system_report(system) -> str:
    """Full snapshot of a built system."""
    kernel = system.kernel
    sections = [
        f"=== {system.name} at t={kernel.engine.now:g} ===",
        pe_table(kernel),
        "",
        task_table(kernel),
        "",
        bus_summary(kernel),
    ]
    for extra in (service_summary(system), lock_summary(system),
                  heap_summary(system)):
        if extra is not None:
            sections.append(extra)
    if kernel.leaks:
        sections.append(f"RESOURCE LEAKS: {kernel.leaks}")
    if kernel.task_failures:
        names = [name for name, _exc in kernel.task_failures]
        sections.append(f"FAILED TASKS: {names}")
    return "\n".join(sections)
