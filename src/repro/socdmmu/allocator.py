"""Block-level global memory allocation (the SoCDMMU's datapath).

The SoCDMMU divides global (L2) memory into equal blocks and keeps a
per-block owner table plus a per-PE virtual-to-physical mapping — the
"PE address to physical address" conversion of Section 2.3.2.  All
operations are O(1)-ish table updates in hardware; this class is the
functional model the :class:`repro.socdmmu.dmmu.SoCDMMU` front-end
charges deterministic cycles for.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import AllocationError, ConfigurationError


class BlockAllocator:
    """Fixed-census block allocator with per-PE virtual mapping."""

    def __init__(self, num_blocks: int = 256,
                 block_bytes: int = 64 * 1024) -> None:
        if num_blocks < 1:
            raise ConfigurationError("need at least one block")
        if block_bytes < 1:
            raise ConfigurationError("block size must be positive")
        self.num_blocks = num_blocks
        self.block_bytes = block_bytes
        #: physical block -> owner id (None = free)
        self._owner: list[Optional[str]] = [None] * num_blocks
        #: owner id -> {virtual block -> physical block}
        self._mappings: dict[str, dict[int, int]] = {}
        #: owner id -> next virtual block number to hand out
        self._next_virtual: dict[str, int] = {}

    # -- queries -----------------------------------------------------------

    @property
    def free_blocks(self) -> int:
        return sum(1 for owner in self._owner if owner is None)

    @property
    def used_blocks(self) -> int:
        return self.num_blocks - self.free_blocks

    def blocks_for(self, size_bytes: int) -> int:
        if size_bytes <= 0:
            raise AllocationError("allocation size must be positive")
        return -(-size_bytes // self.block_bytes)

    def owner_of(self, physical_block: int) -> Optional[str]:
        if not 0 <= physical_block < self.num_blocks:
            raise AllocationError(f"bad block index {physical_block}")
        return self._owner[physical_block]

    def holdings(self, owner: str) -> list[int]:
        """Physical blocks currently owned by ``owner``."""
        return [b for b, who in enumerate(self._owner) if who == owner]

    def translate(self, owner: str, virtual_block: int) -> int:
        """PE (virtual) block number -> physical block number."""
        try:
            return self._mappings[owner][virtual_block]
        except KeyError:
            raise AllocationError(
                f"{owner}: virtual block {virtual_block} not mapped"
            ) from None

    # -- fault backdoor / audit ---------------------------------------------------

    def corrupt(self, physical_block: int, owner: Optional[str]) -> None:
        """Flip one owner-table entry (fault injection backdoor)."""
        if not 0 <= physical_block < self.num_blocks:
            raise AllocationError(f"bad block index {physical_block}")
        self._owner[physical_block] = owner

    def audit(self) -> int:
        """Rebuild the owner table from the mapping RAM; returns repairs.

        The per-owner virtual-to-physical mapping is the authoritative
        copy (it is what translation reads); the flat owner table is
        the derived bitmap that upsets corrupt.  An audit sweep makes
        the table agree with the mappings again.
        """
        owned: dict[int, str] = {}
        for owner, mapping in self._mappings.items():
            for physical in mapping.values():
                owned[physical] = owner
        repairs = 0
        for block in range(self.num_blocks):
            want = owned.get(block)
            if self._owner[block] != want:
                self._owner[block] = want
                repairs += 1
        return repairs

    # -- checkpoint plumbing -------------------------------------------------------

    def snapshot_payload(self) -> dict:
        """JSON-safe owner table + mapping RAM (no envelope; the
        :class:`~repro.socdmmu.dmmu.SoCDMMU` wraps it)."""
        return {
            "num_blocks": self.num_blocks,
            "block_bytes": self.block_bytes,
            "owner": list(self._owner),
            "mappings": sorted(
                [owner, sorted([virtual, physical]
                               for virtual, physical in mapping.items())]
                for owner, mapping in self._mappings.items()),
            "next_virtual": sorted(
                [owner, nxt] for owner, nxt in self._next_virtual.items()),
        }

    @classmethod
    def from_payload(cls, data: dict) -> "BlockAllocator":
        allocator = cls(data["num_blocks"], data["block_bytes"])
        allocator._owner = list(data["owner"])
        allocator._mappings = {
            owner: {virtual: physical for virtual, physical in pairs}
            for owner, pairs in data["mappings"]}
        allocator._next_virtual = dict(map(tuple, data["next_virtual"]))
        return allocator

    # -- commands (G_alloc / G_dealloc) ------------------------------------------

    def allocate(self, owner: str, num_blocks: int) -> list[int]:
        """G_alloc: claim ``num_blocks`` blocks; returns virtual numbers.

        Allocation is all-or-nothing, as in the real unit.
        """
        if num_blocks < 1:
            raise AllocationError("must allocate at least one block")
        free = [b for b, who in enumerate(self._owner) if who is None]
        if len(free) < num_blocks:
            raise AllocationError(
                f"only {len(free)} of {num_blocks} requested blocks free")
        mapping = self._mappings.setdefault(owner, {})
        virtuals = []
        for physical in free[:num_blocks]:
            self._owner[physical] = owner
            virtual = self._next_virtual.get(owner, 0)
            self._next_virtual[owner] = virtual + 1
            mapping[virtual] = physical
            virtuals.append(virtual)
        return virtuals

    def deallocate(self, owner: str, virtual_block: int) -> None:
        """G_dealloc: return one block."""
        physical = self.translate(owner, virtual_block)
        self._owner[physical] = None
        del self._mappings[owner][virtual_block]

    def deallocate_all(self, owner: str) -> int:
        """Release everything an owner holds; returns the block count."""
        mapping = self._mappings.get(owner, {})
        count = 0
        for virtual in list(mapping):
            self.deallocate(owner, virtual)
            count += 1
        return count
