"""Block-level global memory allocation (the SoCDMMU's datapath).

The SoCDMMU divides global (L2) memory into equal blocks and keeps a
per-block owner table plus a per-PE virtual-to-physical mapping — the
"PE address to physical address" conversion of Section 2.3.2.  All
operations are O(1)-ish table updates in hardware; this class is the
functional model the :class:`repro.socdmmu.dmmu.SoCDMMU` front-end
charges deterministic cycles for.

Copy-on-write sharing (the G_alloc_ex/G_alloc_rw side of the command
set): :meth:`share` maps one physical block into a second owner's
virtual space and bumps the per-block refcount table;
:meth:`write_fault` gives a writer its private copy once a block is
shared.  The mapping RAM stays the single authoritative copy — the
owner table *and* the refcount table are derived state that fault
injection can corrupt and an :meth:`audit` sweep rebuilds.  The owner
table names the lexicographically smallest owner referencing a block,
a deterministic rule the audit can recompute from the mappings alone.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import AllocationError, ConfigurationError


class BlockAllocator:
    """Fixed-census block allocator with per-PE virtual mapping."""

    def __init__(self, num_blocks: int = 256,
                 block_bytes: int = 64 * 1024) -> None:
        if num_blocks < 1:
            raise ConfigurationError("need at least one block")
        if block_bytes < 1:
            raise ConfigurationError("block size must be positive")
        self.num_blocks = num_blocks
        self.block_bytes = block_bytes
        #: physical block -> owner id (None = free); derived state.
        self._owner: list[Optional[str]] = [None] * num_blocks
        #: physical block -> reference count; derived state (absent = 0).
        self._refcount: dict[int, int] = {}
        #: owner id -> {virtual block -> physical block} (authoritative).
        self._mappings: dict[str, dict[int, int]] = {}
        #: owner id -> next virtual block number to hand out
        self._next_virtual: dict[str, int] = {}

    # -- queries -----------------------------------------------------------

    @property
    def free_blocks(self) -> int:
        return sum(1 for owner in self._owner if owner is None)

    @property
    def used_blocks(self) -> int:
        return self.num_blocks - self.free_blocks

    @property
    def shared_blocks(self) -> int:
        """Physical blocks currently referenced more than once."""
        return sum(1 for count in self._refcount.values() if count > 1)

    def blocks_for(self, size_bytes: int) -> int:
        if size_bytes <= 0:
            raise AllocationError("allocation size must be positive")
        return -(-size_bytes // self.block_bytes)

    def owner_of(self, physical_block: int) -> Optional[str]:
        if not 0 <= physical_block < self.num_blocks:
            raise AllocationError(f"bad block index {physical_block}")
        return self._owner[physical_block]

    def refcount_of(self, physical_block: int) -> int:
        if not 0 <= physical_block < self.num_blocks:
            raise AllocationError(f"bad block index {physical_block}")
        return self._refcount.get(physical_block, 0)

    def holdings(self, owner: str) -> list[int]:
        """Physical blocks currently owned by ``owner``."""
        return [b for b, who in enumerate(self._owner) if who == owner]

    def translate(self, owner: str, virtual_block: int) -> int:
        """PE (virtual) block number -> physical block number."""
        try:
            return self._mappings[owner][virtual_block]
        except KeyError:
            raise AllocationError(
                f"{owner}: virtual block {virtual_block} not mapped"
            ) from None

    def _references(self, physical: int) -> list[str]:
        """Owners whose mapping RAM references ``physical`` (sorted,
        with multiplicity collapsed)."""
        return sorted({owner for owner, mapping in self._mappings.items()
                       if physical in mapping.values()})

    # -- fault backdoor / audit ---------------------------------------------------

    def corrupt(self, physical_block: int, owner: Optional[str]) -> None:
        """Flip one owner-table entry (fault injection backdoor)."""
        if not 0 <= physical_block < self.num_blocks:
            raise AllocationError(f"bad block index {physical_block}")
        self._owner[physical_block] = owner

    def corrupt_refcount(self, physical_block: int, count: int) -> None:
        """Skew one refcount-table entry (fault injection backdoor)."""
        if not 0 <= physical_block < self.num_blocks:
            raise AllocationError(f"bad block index {physical_block}")
        if count <= 0:
            self._refcount.pop(physical_block, None)
        else:
            self._refcount[physical_block] = count

    def _derive_tables(self) -> tuple[dict, dict]:
        """Recompute owner + refcount tables from the mapping RAM."""
        owned: dict[int, str] = {}
        counts: dict[int, int] = {}
        for owner, mapping in self._mappings.items():
            for physical in mapping.values():
                counts[physical] = counts.get(physical, 0) + 1
                holder = owned.get(physical)
                if holder is None or owner < holder:
                    owned[physical] = owner
        return owned, counts

    def audit(self) -> int:
        """Rebuild owner + refcount tables from the mapping RAM.

        The per-owner virtual-to-physical mapping is the authoritative
        copy (it is what translation reads); the flat owner table and
        the refcount table are the derived state that upsets corrupt.
        An audit sweep makes both agree with the mappings again; the
        return value counts the entries repaired.
        """
        owned, counts = self._derive_tables()
        repairs = 0
        for block in range(self.num_blocks):
            want = owned.get(block)
            if self._owner[block] != want:
                self._owner[block] = want
                repairs += 1
        if self._refcount != counts:
            skewed = set(self._refcount) ^ set(counts)
            skewed.update(block for block in set(self._refcount) & set(counts)
                          if self._refcount[block] != counts[block])
            repairs += len(skewed)
            self._refcount = counts
        return repairs

    def verify(self) -> list[str]:
        """Derived-table violations (empty right after an audit)."""
        owned, counts = self._derive_tables()
        violations = []
        for block in range(self.num_blocks):
            want = owned.get(block)
            if self._owner[block] != want:
                violations.append(
                    f"owner[{block}] is {self._owner[block]!r}, "
                    f"mappings say {want!r}")
        for block in sorted(set(self._refcount) | set(counts)):
            have = self._refcount.get(block, 0)
            want = counts.get(block, 0)
            if have != want:
                violations.append(
                    f"refcount[{block}] is {have}, mappings say {want}")
        return violations

    # -- checkpoint plumbing -------------------------------------------------------

    def snapshot_payload(self) -> dict:
        """JSON-safe owner table + mapping RAM (no envelope; the
        :class:`~repro.socdmmu.dmmu.SoCDMMU` wraps it)."""
        return {
            "num_blocks": self.num_blocks,
            "block_bytes": self.block_bytes,
            "owner": list(self._owner),
            "refcounts": sorted(
                [physical, count]
                for physical, count in self._refcount.items()),
            "mappings": sorted(
                [owner, sorted([virtual, physical]
                               for virtual, physical in mapping.items())]
                for owner, mapping in self._mappings.items()),
            "next_virtual": sorted(
                [owner, nxt] for owner, nxt in self._next_virtual.items()),
        }

    @classmethod
    def from_payload(cls, data: dict) -> "BlockAllocator":
        allocator = cls(data["num_blocks"], data["block_bytes"])
        allocator._owner = list(data["owner"])
        allocator._mappings = {
            owner: {virtual: physical for virtual, physical in pairs}
            for owner, pairs in data["mappings"]}
        allocator._next_virtual = dict(map(tuple, data["next_virtual"]))
        if "refcounts" in data:
            allocator._refcount = {physical: count
                                   for physical, count in data["refcounts"]}
        else:
            # Pre-CoW payload (SoCDMMU payload_version 1): every mapped
            # block was private, so the refcounts derive exactly.
            _owned, counts = allocator._derive_tables()
            allocator._refcount = counts
        return allocator

    # -- commands (G_alloc / G_dealloc / G_share / write fault) --------------------

    def allocate(self, owner: str, num_blocks: int) -> list[int]:
        """G_alloc: claim ``num_blocks`` blocks; returns virtual numbers.

        Allocation is all-or-nothing, as in the real unit.
        """
        if num_blocks < 1:
            raise AllocationError("must allocate at least one block")
        free = [b for b, who in enumerate(self._owner) if who is None]
        if len(free) < num_blocks:
            raise AllocationError(
                f"only {len(free)} of {num_blocks} requested blocks free")
        mapping = self._mappings.setdefault(owner, {})
        virtuals = []
        for physical in free[:num_blocks]:
            self._owner[physical] = owner
            self._refcount[physical] = 1
            virtual = self._next_virtual.get(owner, 0)
            self._next_virtual[owner] = virtual + 1
            mapping[virtual] = physical
            virtuals.append(virtual)
        return virtuals

    def share(self, owner: str, virtual_block: int, new_owner: str) -> int:
        """Map ``owner``'s block into ``new_owner``'s space (refcount++).

        Returns ``new_owner``'s virtual number for the shared physical
        block.  No data moves; a later :meth:`write_fault` splits the
        sharing.
        """
        physical = self.translate(owner, virtual_block)
        mapping = self._mappings.setdefault(new_owner, {})
        virtual = self._next_virtual.get(new_owner, 0)
        self._next_virtual[new_owner] = virtual + 1
        mapping[virtual] = physical
        self._refcount[physical] = self._refcount.get(physical, 0) + 1
        if new_owner < (self._owner[physical] or new_owner):
            self._owner[physical] = new_owner
        elif self._owner[physical] is None:
            self._owner[physical] = new_owner
        return virtual

    def write_fault(self, owner: str, virtual_block: int) -> bool:
        """First write to a shared block: give ``owner`` a private copy.

        Returns True when a copy was made (the block was shared), False
        when the block was already private.  The copy needs one free
        block; exhaustion raises :class:`AllocationError` — the
        front-end's OOM ladder handles that.
        """
        physical = self.translate(owner, virtual_block)
        if self._refcount.get(physical, 1) <= 1:
            return False
        target = next((b for b, who in enumerate(self._owner)
                       if who is None), None)
        if target is None:
            raise AllocationError(
                f"no free block for a CoW copy of physical {physical}")
        self._refcount[physical] -= 1
        self._mappings[owner][virtual_block] = target
        self._owner[target] = owner
        self._refcount[target] = 1
        remaining = self._references(physical)
        self._owner[physical] = remaining[0] if remaining else None
        if not remaining:
            self._refcount.pop(physical, None)
        return True

    def deallocate(self, owner: str, virtual_block: int) -> None:
        """G_dealloc: drop one reference; the block frees at refcount 0."""
        physical = self.translate(owner, virtual_block)
        del self._mappings[owner][virtual_block]
        count = self._refcount.get(physical, 1) - 1
        if count <= 0:
            self._owner[physical] = None
            self._refcount.pop(physical, None)
        else:
            self._refcount[physical] = count
            remaining = self._references(physical)
            self._owner[physical] = remaining[0] if remaining else None

    def deallocate_all(self, owner: str) -> int:
        """Release everything an owner maps; returns the references
        dropped (a shared block only frees when its last sharer goes)."""
        mapping = self._mappings.get(owner, {})
        count = 0
        for virtual in list(mapping):
            self.deallocate(owner, virtual)
            count += 1
        return count
