"""The SoC Dynamic Memory Management Unit (Section 2.3.2).

A hardware unit that allocates/deallocates the global L2 memory in
fixed-size blocks with deterministic latency, replacing the software
heap's malloc()/free() (the RTOS7 configuration, Tables 11-12).  The
DX-Gt-style parameterized generator is in :mod:`repro.socdmmu.generator`.
"""

from repro.socdmmu.allocator import BlockAllocator
from repro.socdmmu.dmmu import SoCDMMU
from repro.socdmmu.generator import SoCDMMUConfig, generate_socdmmu

__all__ = ["BlockAllocator", "SoCDMMU", "SoCDMMUConfig", "generate_socdmmu"]
