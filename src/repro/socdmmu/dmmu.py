"""The SoCDMMU front-end: deterministic-latency malloc/free (RTOS7).

Implements the kernel's heap-service interface so the framework can
swap it for :class:`repro.rtos.memory.SoftwareHeap`.  A PE sends a
command by writing the unit's port and reads back the result; the unit
itself takes a handful of cycles regardless of heap state — that
determinism (versus the software allocator's free-list walk) is what
Tables 11-12 measure.

Byte-sized requests are rounded up to whole blocks; the standard
software API mapping ("porting SoCDMMU functionality to an RTOS so the
user can access it using standard memory management APIs", Section
2.3.2) is exactly this adapter.

Beyond the paper's four-PE snapshot, the front-end carries the
memory-pressure machinery (see ``docs/memory_pressure.md``):

* **Copy-on-write sharing** — :meth:`fork_handle` CoW-duplicates a
  handle for another task (refcounted G_blocks, no data movement),
  :meth:`malloc_shared` allocates and forks in one call, and
  :meth:`write_fault` splits sharing with a private copy on first
  write.
* **A recoverable OOM ladder** — with resilience enabled, a refused
  G_alloc retries with backpressure (the command port is released
  while the requester backs off), audits the tables (reclaiming
  fault-ghosted blocks), reclaims handles of dead tasks, and — on
  persistent exhaustion — degrades RTOS7 -> RTOS5 style to an internal
  :class:`SoftwareHeap`, failing back once scrub probes show the unit
  can allocate again (the PR-4 health-FSM discipline).
* **Task-teardown reclamation** — :meth:`reclaim_task` releases every
  handle a killed/failed task still holds (the kernel calls it from
  its fault-isolation path), so dead tasks no longer leak G_blocks.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro import calibration
from repro.errors import AllocationError
from repro.rtos.kernel import Kernel, TaskContext, TaskState
from repro.rtos.memory import HeapStats, SoftwareHeap
from repro.socdmmu.allocator import BlockAllocator
from repro.sim.process import SimResource


class SoCDMMU:
    """Hardware dynamic memory manager with a command port."""

    def __init__(self, kernel: Kernel, num_blocks: int = 256,
                 block_bytes: int = 64 * 1024,
                 alloc_cycles: int = calibration.SOCDMMU_ALLOC_CYCLES,
                 dealloc_cycles: int = calibration.SOCDMMU_DEALLOC_CYCLES,
                 ) -> None:
        self.kernel = kernel
        self.allocator = BlockAllocator(num_blocks, block_bytes)
        self.alloc_cycles = alloc_cycles
        self.dealloc_cycles = dealloc_cycles
        self._port = SimResource(kernel.engine, "socdmmu.port")
        self.stats = HeapStats()
        #: Fault injector hook (:mod:`repro.faults`).
        self.faults = None
        self.resilience = None
        self.health = None
        self.audits = 0
        self.audit_repairs = 0
        # -- CoW accounting ----------------------------------------------
        self.cow_shares = 0
        self.cow_write_faults = 0
        self.cow_copies = 0
        # -- OOM ladder / degradation state -------------------------------
        #: "hardware" (the unit serves) or "software" (degraded to the
        #: fallback heap after persistent exhaustion).
        self.mode = "hardware"
        self.oom_events = 0
        self.oom_retries = 0
        self.oom_recoveries = 0
        self.failovers = 0
        self.failbacks = 0
        self.scrubs = 0
        self.software_served = 0
        self.reclaimed_blocks = 0
        self._software_since_scrub = 0
        #: (engine time, event kind) breadcrumbs, resilient-wrapper style.
        self.event_log: list[tuple[float, str]] = []
        self._fallback: Optional[SoftwareHeap] = None
        #: handle -> (owner, virtual block numbers)
        self._handles: dict[int, tuple[str, list[int]]] = {}
        self._next_handle = 0x2000_0000
        metrics = kernel.obs.metrics
        self._m_mallocs = metrics.counter(
            "socdmmu.mallocs", "G_alloc commands served")
        self._m_frees = metrics.counter(
            "socdmmu.frees", "G_dealloc commands served")
        self._m_failed = metrics.counter(
            "socdmmu.failed", "allocations refused (unit full)")
        self._m_blocks = metrics.histogram(
            "socdmmu.alloc_blocks", "blocks per allocation",
            bounds=(1, 2, 4, 8, 16, 32, 64, 128, 256))
        self._m_in_use = metrics.gauge(
            "socdmmu.in_use_bytes", "bytes currently allocated")
        self._m_shares = metrics.counter(
            "socdmmu.cow.shares", "blocks shared (refcount bumps)")
        self._m_write_faults = metrics.counter(
            "socdmmu.cow.write_faults", "CoW write faults taken")
        self._m_copies = metrics.counter(
            "socdmmu.cow.copies", "private copies made on write faults")
        self._m_shared = metrics.gauge(
            "socdmmu.cow.shared_blocks", "blocks referenced more than once")
        self._m_oom = metrics.counter(
            "socdmmu.oom.events", "allocations that hit an empty pool")
        self._m_oom_recoveries = metrics.counter(
            "socdmmu.oom.recoveries", "OOMs recovered by reclaim-and-retry")
        self._m_failovers = metrics.counter(
            "socdmmu.oom.failovers", "degradations to the software heap")
        self._m_failbacks = metrics.counter(
            "socdmmu.oom.failbacks", "returns to hardware after scrub")
        self._m_reclaimed = metrics.counter(
            "socdmmu.reclaimed_blocks", "block references reclaimed from "
            "dead tasks")

    # -- resilience ---------------------------------------------------------------

    def enable_resilience(self, policy=None) -> None:
        """Arm audits, the OOM ladder, and the health FSM."""
        from repro.faults.health import ResiliencePolicy, UnitHealth
        self.resilience = policy if policy is not None else ResiliencePolicy()
        if self.health is None:
            self.health = UnitHealth(
                "socdmmu", clock=lambda: self.kernel.engine.now,
                fail_threshold=self.resilience.fail_threshold,
                recover_after=self.resilience.recover_after,
                obs=self.kernel.obs)

    def _note(self, event: str) -> None:
        self.event_log.append((self.kernel.engine.now, event))

    def _audit_due(self, calls: int) -> bool:
        """Cadence check *as if* the call were already counted — the
        Nth command audits, not the first (historical off-by-one)."""
        if self.resilience is None:
            return False
        return (calls + 1) % max(1, self.resilience.audit_every) == 0

    def _apply_table_faults(self) -> None:
        num_blocks = self.allocator.num_blocks
        for spec in self.faults.fire("socdmmu.table"):
            start = int(spec.params.get("block", 0)) % num_blocks
            if spec.kind == "leak":
                # An owned entry flips to free: the mapping RAM still
                # references the block, so without an audit a later
                # G_alloc can hand it out a second time.
                wanted, ghost = (lambda who: who is not None), None
            else:  # steal
                # A free entry flips to owned-by-nobody: the pool
                # silently shrinks until an audit reclaims it.
                wanted, ghost = (lambda who: who is None), "<ghost>"
            for offset in range(num_blocks):
                block = (start + offset) % num_blocks
                if wanted(self.allocator.owner_of(block)):
                    self.allocator.corrupt(block, ghost)
                    break

    def _apply_refcount_faults(self) -> None:
        """Skew the refcount table (``socdmmu.refcount`` site)."""
        num_blocks = self.allocator.num_blocks
        for spec in self.faults.fire("socdmmu.refcount"):
            start = int(spec.params.get("block", 0)) % num_blocks
            delta = max(1, int(spec.params.get("delta", 1)))
            for offset in range(num_blocks):
                block = (start + offset) % num_blocks
                count = self.allocator.refcount_of(block)
                if count > 0:
                    if spec.kind == "inflate":
                        self.allocator.corrupt_refcount(block, count + delta)
                    else:  # deflate
                        self.allocator.corrupt_refcount(
                            block, max(0, count - delta))
                    break

    def _apply_exhaust_faults(self) -> None:
        """Ghost-grab free blocks (``socdmmu.exhaust`` site).

        Fires *after* the command audit so the grab actually starves
        the allocation — the OOM ladder's reclaim audit then repairs
        it, which is the reclaim-then-retry path under test.
        """
        num_blocks = self.allocator.num_blocks
        for spec in self.faults.fire("socdmmu.exhaust"):
            want = int(spec.params.get("blocks", num_blocks))
            ghosted = 0
            for block in range(num_blocks):
                if self.allocator.owner_of(block) is None:
                    self.allocator.corrupt(block, "<ghost>")
                    ghosted += 1
                    if ghosted >= want:
                        break

    def _fire_faults(self) -> None:
        self._apply_table_faults()
        self._apply_refcount_faults()

    def _audit(self) -> Generator:
        self.audits += 1
        yield calibration.SOCDMMU_AUDIT_CYCLES
        self.stats.mm_cycles += calibration.SOCDMMU_AUDIT_CYCLES
        repairs = self.allocator.audit()
        if repairs:
            self.audit_repairs += repairs
            self.kernel.trace.record(self.kernel.engine.now, "socdmmu",
                                     "table_repaired", repairs=repairs)
            self._refresh_gauges()

    def _refresh_gauges(self) -> None:
        """Re-derive the usage gauges (audits can reclaim ghost blocks,
        failed allocations must still read correctly)."""
        in_use = self.allocator.used_blocks * self.allocator.block_bytes
        self.stats.peak_in_use = max(self.stats.peak_in_use, in_use)
        if self.kernel.obs.enabled:
            self._m_in_use.set(in_use)
            self._m_shared.set(self.allocator.shared_blocks)

    # -- task teardown / reclamation ------------------------------------------------

    def reclaim_task(self, name: str) -> int:
        """Release every handle a dead task still holds.

        The kernel calls this when a task is killed or fails under
        fault isolation; the OOM ladder also sweeps terminated owners
        lazily.  Models one G_dealloc_all command: a table sweep, not a
        per-handle walk.  Returns the block references released.
        """
        handles = [handle for handle, (owner, _virtuals)
                   in self._handles.items() if owner == name]
        if not handles:
            return 0
        for handle in handles:
            del self._handles[handle]
        blocks = self.allocator.deallocate_all(name)
        self.reclaimed_blocks += blocks
        self.stats.mm_cycles += self.dealloc_cycles
        self.kernel.trace.record(self.kernel.engine.now, "socdmmu",
                                 "handles_reclaimed", task=name,
                                 handles=len(handles), blocks=blocks)
        if self.kernel.obs.enabled:
            self._m_reclaimed.inc(blocks)
        self._refresh_gauges()
        return blocks

    def _reclaim_terminated(self) -> int:
        """Sweep handles whose owning task already finished or failed."""
        dead = {owner for _handle, (owner, _virtuals) in self._handles.items()
                if (task := self.kernel.tasks.get(owner)) is not None
                and task.state in (TaskState.FINISHED, TaskState.FAILED)}
        return sum(self.reclaim_task(owner) for owner in sorted(dead))

    # -- the OOM ladder ---------------------------------------------------------------

    def _record_oom(self, owner: str, blocks: int) -> None:
        self.stats.failed_allocations += 1
        self.oom_events += 1
        self._note("oom")
        if self.kernel.obs.enabled:
            self._m_failed.inc()
            self._m_oom.inc()
        self._refresh_gauges()
        if self.kernel.obs.flight.enabled:
            self.kernel.obs.flight.mark(
                "socdmmu_oom", actor="socdmmu", owner=owner, blocks=blocks,
                free_blocks=self.allocator.free_blocks)

    def _recover_allocation(self, owner: str, blocks: int):
        """Refused G_alloc: backoff + reclaim + retry, then degrade.

        Enters holding the command port and returns holding it.
        Returns the allocated virtual numbers, or ``None`` when the
        request must be served by the software fallback.  Without a
        resilience policy the refusal propagates unchanged.
        """
        self._record_oom(owner, blocks)
        policy = self.resilience
        if policy is None:
            self._port.release(owner)
            raise AllocationError(
                f"SoCDMMU pool exhausted: {blocks} blocks requested, "
                f"{self.allocator.free_blocks} free")
        for attempt in range(1, policy.max_retries + 1):
            # Backpressure: release the port so other PEs can free or
            # tear down while this requester backs off.
            self._port.release(owner)
            yield policy.retry_backoff_cycles * attempt
            self.oom_retries += 1
            self._note("oom-retry")
            yield from self._port.acquire(owner)
            yield from self._audit()          # reclaims ghosted blocks
            self._reclaim_terminated()
            try:
                virtuals = self.allocator.allocate(owner, blocks)
            except AllocationError:
                continue
            self.oom_recoveries += 1
            self._note("oom-recovered")
            if self.kernel.obs.enabled:
                self._m_oom_recoveries.inc()
            return virtuals
        # Persistent exhaustion: an anomaly for the health FSM; once it
        # trips FAILED the unit degrades and later requests skip the
        # hardware path entirely until a scrub probe brings it back.
        self.health.anomaly("oom")
        if self.health.failed and self.mode == "hardware":
            self._fail_over()
        return None

    def _fail_over(self) -> None:
        self.mode = "software"
        self.failovers += 1
        self._software_since_scrub = 0
        self._note("failover")
        self.kernel.trace.record(self.kernel.engine.now, "socdmmu",
                                 "degraded", mode="software")
        if self.kernel.obs.enabled:
            self._m_failovers.inc()
        if self.kernel.obs.flight.enabled:
            self.kernel.obs.flight.mark("socdmmu_degrade", actor="socdmmu",
                                        reason="persistent-oom")

    def _fail_back(self) -> None:
        self.mode = "hardware"
        self.failbacks += 1
        self._note("failback")
        self.kernel.trace.record(self.kernel.engine.now, "socdmmu",
                                 "failed_back", mode="hardware")
        if self.kernel.obs.enabled:
            self._m_failbacks.inc()
        if self.kernel.obs.flight.enabled:
            self.kernel.obs.flight.mark("socdmmu_failback", actor="socdmmu")

    def _ensure_fallback(self) -> SoftwareHeap:
        if self._fallback is None:
            self._fallback = SoftwareHeap(self.kernel)
        return self._fallback

    def _software_malloc(self, ctx: TaskContext,
                         size_bytes: int) -> Generator:
        """Serve one allocation from the degraded-mode software heap."""
        policy = self.resilience
        if (self.mode == "software" and policy is not None
                and self.health is not None):
            self._software_since_scrub += 1
            if self._software_since_scrub >= max(1, policy.scrub_after):
                self._software_since_scrub = 0
                yield from self._scrub()
        self.software_served += 1
        address = yield from self._ensure_fallback().malloc(ctx, size_bytes)
        return address

    def _scrub(self) -> Generator:
        """Audit + reclaim, then probe whether the unit can allocate."""
        self.scrubs += 1
        self._note("scrub")
        yield calibration.FAULT_SCRUB_OVERHEAD_CYCLES
        self.stats.mm_cycles += calibration.FAULT_SCRUB_OVERHEAD_CYCLES
        yield from self._audit()
        self._reclaim_terminated()
        self.health.begin_recovery("scrub")
        try:
            probe = self.allocator.allocate("<probe>", 1)
        except AllocationError:
            self.health.anomaly("probe-oom")
            return
        for virtual in probe:
            self.allocator.deallocate("<probe>", virtual)
        from repro.faults.health import HealthState
        if self.health.clean("probe") is HealthState.HEALTHY:
            self._fail_back()

    # -- the heap-service interface ------------------------------------------------

    def malloc(self, ctx: TaskContext, size_bytes: int) -> Generator:
        """G_alloc via the command port; returns an opaque handle."""
        blocks = self.allocator.blocks_for(size_bytes)
        owner = ctx.task.name
        if self.mode == "software":
            address = yield from self._software_malloc(ctx, size_bytes)
            return address
        yield from self._port.acquire(owner)
        if self.faults is not None:
            self._fire_faults()
            if self._audit_due(self.stats.malloc_calls):
                yield from self._audit()
        # Command write, deterministic unit time, result read.
        yield from ctx.pe.bus_write()
        yield self.alloc_cycles
        yield from ctx.pe.bus_read()
        cost = (self.alloc_cycles
                + 2 * self.kernel.soc.bus.timing.transaction_cycles(1))
        self.stats.mm_cycles += cost
        self.stats.malloc_calls += 1
        if self.faults is not None:
            self._apply_exhaust_faults()
        try:
            virtuals = self.allocator.allocate(owner, blocks)
        except AllocationError:
            virtuals = yield from self._recover_allocation(owner, blocks)
        if virtuals is None:
            # Degrade this request (and, if the FSM tripped, the unit).
            self._port.release(owner)
            self._note("oom-fallback")
            address = yield from self._software_malloc(ctx, size_bytes)
            return address
        if self.health is not None:
            self.health.clean("alloc")
        self._port.release(owner)
        handle = self._next_handle
        self._next_handle += blocks * self.allocator.block_bytes
        self._handles[handle] = (owner, virtuals)
        in_use = self.allocator.used_blocks * self.allocator.block_bytes
        self.stats.peak_in_use = max(self.stats.peak_in_use, in_use)
        if self.kernel.obs.enabled:
            self._m_mallocs.inc()
            self._m_blocks.observe(blocks)
            self._m_in_use.set(in_use)
        return handle

    def free(self, ctx: TaskContext, handle: int) -> Generator:
        """G_dealloc via the command port."""
        if handle not in self._handles:
            if self._fallback is not None:
                yield from self._fallback.free(ctx, handle)
                return
            raise AllocationError(f"free of unknown handle {handle:#x}")
        owner, virtuals = self._handles[handle]
        if owner != ctx.task.name:
            raise AllocationError(
                f"{ctx.task.name} freed a handle owned by {owner}")
        yield from self._port.acquire(owner)
        if self.faults is not None:
            self._fire_faults()
            if self._audit_due(self.stats.free_calls):
                yield from self._audit()
        yield from ctx.pe.bus_write()
        yield self.dealloc_cycles
        yield from ctx.pe.bus_read()
        cost = (self.dealloc_cycles
                + 2 * self.kernel.soc.bus.timing.transaction_cycles(1))
        self.stats.mm_cycles += cost
        self.stats.free_calls += 1
        for virtual in virtuals:
            self.allocator.deallocate(owner, virtual)
        del self._handles[handle]
        self._port.release(owner)
        if self.kernel.obs.enabled:
            self._m_frees.inc()
            self._m_in_use.set(
                self.allocator.used_blocks * self.allocator.block_bytes)
            self._m_shared.set(self.allocator.shared_blocks)

    # -- CoW commands ----------------------------------------------------------------

    def fork_handle(self, ctx: TaskContext, handle: int,
                    new_owner: Optional[str] = None) -> Generator:
        """CoW-duplicate a handle: share every block into ``new_owner``.

        Only the handle's owner may fork it (the fork parent hands the
        duplicate to the child).  Costs one command round-trip plus a
        per-block table update — no data moves.
        """
        if handle not in self._handles:
            raise AllocationError(f"fork of unknown handle {handle:#x}")
        owner, virtuals = self._handles[handle]
        if owner != ctx.task.name:
            raise AllocationError(
                f"{ctx.task.name} forked a handle owned by {owner}")
        target = new_owner if new_owner is not None else owner
        yield from self._port.acquire(owner)
        if self.faults is not None:
            self._fire_faults()
            if self._audit_due(self.cow_shares + self.cow_write_faults):
                yield from self._audit()
        yield from ctx.pe.bus_write()
        unit_cycles = len(virtuals) * calibration.SOCDMMU_SHARE_CYCLES
        yield unit_cycles
        yield from ctx.pe.bus_read()
        cost = (unit_cycles
                + 2 * self.kernel.soc.bus.timing.transaction_cycles(1))
        self.stats.mm_cycles += cost
        new_virtuals = [self.allocator.share(owner, virtual, target)
                        for virtual in virtuals]
        self.cow_shares += len(virtuals)
        new_handle = self._next_handle
        self._next_handle += len(virtuals) * self.allocator.block_bytes
        self._handles[new_handle] = (target, new_virtuals)
        self._port.release(owner)
        if self.kernel.obs.enabled:
            self._m_shares.inc(len(virtuals))
            self._m_shared.set(self.allocator.shared_blocks)
        return new_handle

    def malloc_shared(self, ctx: TaskContext, size_bytes: int,
                      peers: tuple = ()) -> Generator:
        """G_alloc once, then fork the handle to each named peer.

        Returns ``{owner: handle, peer: handle, ...}``.  When the OOM
        ladder degraded the allocation to the software heap, sharing is
        unavailable and each peer gets a private software allocation
        (an eager copy — the graceful-degradation semantics).
        """
        owner = ctx.task.name
        handle = yield from self.malloc(ctx, size_bytes)
        handles = {owner: handle}
        if handle in self._handles:
            for peer in peers:
                handles[peer] = yield from self.fork_handle(
                    ctx, handle, peer)
        else:
            self._note("cow-degraded")
            for peer in peers:
                handles[peer] = yield from self._software_malloc(
                    ctx, size_bytes)
        return handles

    def write_fault(self, ctx: TaskContext, handle: int,
                    block_index: int = 0) -> Generator:
        """First write to a shared block: split it with a private copy.

        ``block_index`` selects the block within the handle.  Returns
        True when a copy was made, False when the block was already
        private.  A copy needs one free block; exhaustion runs the same
        reclaim-and-retry ladder as G_alloc (a copy cannot be served by
        the software fallback — the shared data lives in the unit).
        """
        if handle not in self._handles:
            raise AllocationError(f"write fault on unknown handle "
                                  f"{handle:#x}")
        owner, virtuals = self._handles[handle]
        if owner != ctx.task.name:
            raise AllocationError(
                f"{ctx.task.name} wrote a handle owned by {owner}")
        if not 0 <= block_index < len(virtuals):
            raise AllocationError(
                f"handle {handle:#x} has {len(virtuals)} blocks, "
                f"not {block_index + 1}")
        virtual = virtuals[block_index]
        yield from self._port.acquire(owner)
        if self.faults is not None:
            self._fire_faults()
            if self._audit_due(self.cow_shares + self.cow_write_faults):
                yield from self._audit()
        yield from ctx.pe.bus_write()
        policy = self.resilience
        attempt = 0
        while True:
            try:
                copied = self.allocator.write_fault(owner, virtual)
                break
            except AllocationError:
                self._record_oom(owner, 1)
                if policy is None or attempt >= policy.max_retries:
                    self._port.release(owner)
                    raise
                attempt += 1
                self._port.release(owner)
                yield policy.retry_backoff_cycles * attempt
                self.oom_retries += 1
                yield from self._port.acquire(owner)
                yield from self._audit()
                self._reclaim_terminated()
        unit_cycles = (calibration.SOCDMMU_COW_COPY_CYCLES if copied
                       else calibration.SOCDMMU_SHARE_CYCLES)
        yield unit_cycles
        yield from ctx.pe.bus_read()
        cost = (unit_cycles
                + 2 * self.kernel.soc.bus.timing.transaction_cycles(1))
        self.stats.mm_cycles += cost
        self.cow_write_faults += 1
        if copied:
            self.cow_copies += 1
            if attempt:
                self.oom_recoveries += 1
                self._note("oom-recovered")
                if self.kernel.obs.enabled:
                    self._m_oom_recoveries.inc()
        self._port.release(owner)
        if self.kernel.obs.enabled:
            self._m_write_faults.inc()
            if copied:
                self._m_copies.inc()
            self._m_shared.set(self.allocator.shared_blocks)
        self._refresh_gauges()
        return copied

    # -- checkpoint protocol -------------------------------------------------------

    SNAPSHOT_KIND = "socdmmu"
    #: Payload shape version: 2 added the CoW state (refcount table,
    #: share counters) and the OOM/degradation ladder.  Version-1
    #: payloads (pre-CoW) still restore, with the refcounts derived
    #: from the mapping RAM.
    PAYLOAD_VERSION = 2

    def snapshot_state(self) -> dict:
        """Versioned, hashed snapshot of the allocation tables + stats."""
        from repro.checkpoint.protocol import snapshot_envelope
        return snapshot_envelope(self.SNAPSHOT_KIND, {
            "payload_version": self.PAYLOAD_VERSION,
            "alloc_cycles": self.alloc_cycles,
            "dealloc_cycles": self.dealloc_cycles,
            "allocator": self.allocator.snapshot_payload(),
            "handles": sorted(
                [handle, owner, list(virtuals)]
                for handle, (owner, virtuals) in self._handles.items()),
            "next_handle": self._next_handle,
            "stats": {
                "malloc_calls": self.stats.malloc_calls,
                "free_calls": self.stats.free_calls,
                "mm_cycles": self.stats.mm_cycles,
                "peak_in_use": self.stats.peak_in_use,
                "failed_allocations": self.stats.failed_allocations,
                "walk_lengths": list(self.stats.walk_lengths),
            },
            "audits": self.audits,
            "audit_repairs": self.audit_repairs,
            "cow": {
                "shares": self.cow_shares,
                "write_faults": self.cow_write_faults,
                "copies": self.cow_copies,
            },
            "oom": {
                "mode": self.mode,
                "events": self.oom_events,
                "retries": self.oom_retries,
                "recoveries": self.oom_recoveries,
                "failovers": self.failovers,
                "failbacks": self.failbacks,
                "scrubs": self.scrubs,
                "software_served": self.software_served,
                "reclaimed_blocks": self.reclaimed_blocks,
                "software_since_scrub": self._software_since_scrub,
            },
            "health": (self.health.snapshot_state()
                       if self.health is not None else None),
            "fallback": (self._fallback.snapshot_payload()
                         if self._fallback is not None else None),
            "events": [[at, kind] for at, kind in self.event_log],
        })

    @classmethod
    def restore_state(cls, envelope: dict, kernel: Kernel) -> "SoCDMMU":
        """Rebuild the unit against a (restored) kernel.

        Accepts payload versions 1 (pre-CoW) and 2.  The resilience
        policy and fault injector are re-attached by the caller (as for
        every other unit); the health FSM, degradation mode, and the
        fallback heap's contents are restored from the snapshot.
        """
        from repro.checkpoint.protocol import open_envelope
        from repro.errors import CheckpointError
        state = open_envelope(envelope, kind=cls.SNAPSHOT_KIND)
        version = state.get("payload_version", 1)
        if version > cls.PAYLOAD_VERSION:
            raise CheckpointError(
                f"socdmmu payload_version {version} is newer than this "
                f"library's {cls.PAYLOAD_VERSION}; upgrade before restoring")
        allocator_state = state["allocator"]
        unit = cls(kernel,
                   num_blocks=allocator_state["num_blocks"],
                   block_bytes=allocator_state["block_bytes"],
                   alloc_cycles=state["alloc_cycles"],
                   dealloc_cycles=state["dealloc_cycles"])
        unit.allocator = BlockAllocator.from_payload(allocator_state)
        unit._handles = {
            handle: (owner, list(virtuals))
            for handle, owner, virtuals in state["handles"]}
        unit._next_handle = state["next_handle"]
        stats = state["stats"]
        unit.stats.malloc_calls = stats["malloc_calls"]
        unit.stats.free_calls = stats["free_calls"]
        unit.stats.mm_cycles = stats["mm_cycles"]
        unit.stats.peak_in_use = stats["peak_in_use"]
        unit.stats.failed_allocations = stats["failed_allocations"]
        unit.stats.walk_lengths = list(stats["walk_lengths"])
        unit.audits = state["audits"]
        unit.audit_repairs = state["audit_repairs"]
        if version >= 2:
            cow = state["cow"]
            unit.cow_shares = cow["shares"]
            unit.cow_write_faults = cow["write_faults"]
            unit.cow_copies = cow["copies"]
            oom = state["oom"]
            unit.mode = oom["mode"]
            unit.oom_events = oom["events"]
            unit.oom_retries = oom["retries"]
            unit.oom_recoveries = oom["recoveries"]
            unit.failovers = oom["failovers"]
            unit.failbacks = oom["failbacks"]
            unit.scrubs = oom["scrubs"]
            unit.software_served = oom["software_served"]
            unit.reclaimed_blocks = oom["reclaimed_blocks"]
            unit._software_since_scrub = oom["software_since_scrub"]
            if state["health"] is not None:
                from repro.faults.health import UnitHealth
                unit.health = UnitHealth.restore_state(
                    state["health"], clock=lambda: kernel.engine.now,
                    obs=kernel.obs)
            if state["fallback"] is not None:
                unit._fallback = SoftwareHeap.from_payload(
                    kernel, state["fallback"])
            unit.event_log = [(at, kind) for at, kind in state["events"]]
        return unit

    # -- introspection ------------------------------------------------------------

    @property
    def free_bytes(self) -> int:
        return self.allocator.free_blocks * self.allocator.block_bytes

    @property
    def in_use_bytes(self) -> int:
        return self.allocator.used_blocks * self.allocator.block_bytes
