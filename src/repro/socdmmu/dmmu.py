"""The SoCDMMU front-end: deterministic-latency malloc/free (RTOS7).

Implements the kernel's heap-service interface so the framework can
swap it for :class:`repro.rtos.memory.SoftwareHeap`.  A PE sends a
command by writing the unit's port and reads back the result; the unit
itself takes a handful of cycles regardless of heap state — that
determinism (versus the software allocator's free-list walk) is what
Tables 11-12 measure.

Byte-sized requests are rounded up to whole blocks; the standard
software API mapping ("porting SoCDMMU functionality to an RTOS so the
user can access it using standard memory management APIs", Section
2.3.2) is exactly this adapter.
"""

from __future__ import annotations

from typing import Generator

from repro import calibration
from repro.errors import AllocationError
from repro.rtos.kernel import Kernel, TaskContext
from repro.rtos.memory import HeapStats
from repro.socdmmu.allocator import BlockAllocator
from repro.sim.process import SimResource


class SoCDMMU:
    """Hardware dynamic memory manager with a command port."""

    def __init__(self, kernel: Kernel, num_blocks: int = 256,
                 block_bytes: int = 64 * 1024,
                 alloc_cycles: int = calibration.SOCDMMU_ALLOC_CYCLES,
                 dealloc_cycles: int = calibration.SOCDMMU_DEALLOC_CYCLES,
                 ) -> None:
        self.kernel = kernel
        self.allocator = BlockAllocator(num_blocks, block_bytes)
        self.alloc_cycles = alloc_cycles
        self.dealloc_cycles = dealloc_cycles
        self._port = SimResource(kernel.engine, "socdmmu.port")
        self.stats = HeapStats()
        #: Fault injector hook (:mod:`repro.faults`).
        self.faults = None
        self.resilience = None
        self.audits = 0
        self.audit_repairs = 0
        #: handle -> (owner, virtual block numbers)
        self._handles: dict[int, tuple[str, list[int]]] = {}
        self._next_handle = 0x2000_0000
        metrics = kernel.obs.metrics
        self._m_mallocs = metrics.counter(
            "socdmmu.mallocs", "G_alloc commands served")
        self._m_frees = metrics.counter(
            "socdmmu.frees", "G_dealloc commands served")
        self._m_failed = metrics.counter(
            "socdmmu.failed", "allocations refused (unit full)")
        self._m_blocks = metrics.histogram(
            "socdmmu.alloc_blocks", "blocks per allocation",
            bounds=(1, 2, 4, 8, 16, 32, 64, 128, 256))
        self._m_in_use = metrics.gauge(
            "socdmmu.in_use_bytes", "bytes currently allocated")

    # -- resilience ---------------------------------------------------------------

    def enable_resilience(self, policy=None) -> None:
        """Audit the owner table against the mapping RAM on commands."""
        from repro.faults.health import ResiliencePolicy
        self.resilience = policy if policy is not None else ResiliencePolicy()

    def _apply_table_faults(self) -> None:
        num_blocks = self.allocator.num_blocks
        for spec in self.faults.fire("socdmmu.table"):
            start = int(spec.params.get("block", 0)) % num_blocks
            if spec.kind == "leak":
                # An owned entry flips to free: the mapping RAM still
                # references the block, so without an audit a later
                # G_alloc can hand it out a second time.
                wanted, ghost = (lambda who: who is not None), None
            else:  # steal
                # A free entry flips to owned-by-nobody: the pool
                # silently shrinks until an audit reclaims it.
                wanted, ghost = (lambda who: who is None), "<ghost>"
            for offset in range(num_blocks):
                block = (start + offset) % num_blocks
                if wanted(self.allocator.owner_of(block)):
                    self.allocator.corrupt(block, ghost)
                    break

    def _audit(self) -> Generator:
        self.audits += 1
        yield calibration.SOCDMMU_AUDIT_CYCLES
        self.stats.mm_cycles += calibration.SOCDMMU_AUDIT_CYCLES
        repairs = self.allocator.audit()
        if repairs:
            self.audit_repairs += repairs
            self.kernel.trace.record(self.kernel.engine.now, "socdmmu",
                                     "table_repaired", repairs=repairs)

    # -- the heap-service interface ------------------------------------------------

    def malloc(self, ctx: TaskContext, size_bytes: int) -> Generator:
        """G_alloc via the command port; returns an opaque handle."""
        blocks = self.allocator.blocks_for(size_bytes)
        owner = ctx.task.name
        yield from self._port.acquire(owner)
        if self.faults is not None:
            self._apply_table_faults()
            if self.resilience is not None:
                yield from self._audit()
        # Command write, deterministic unit time, result read.
        yield from ctx.pe.bus_write()
        yield self.alloc_cycles
        yield from ctx.pe.bus_read()
        cost = (self.alloc_cycles
                + 2 * self.kernel.soc.bus.timing.transaction_cycles(1))
        self.stats.mm_cycles += cost
        self.stats.malloc_calls += 1
        try:
            virtuals = self.allocator.allocate(owner, blocks)
        except AllocationError:
            self.stats.failed_allocations += 1
            if self.kernel.obs.enabled:
                self._m_failed.inc()
            self._port.release(owner)
            raise
        self._port.release(owner)
        handle = self._next_handle
        self._next_handle += blocks * self.allocator.block_bytes
        self._handles[handle] = (owner, virtuals)
        in_use = self.allocator.used_blocks * self.allocator.block_bytes
        self.stats.peak_in_use = max(self.stats.peak_in_use, in_use)
        if self.kernel.obs.enabled:
            self._m_mallocs.inc()
            self._m_blocks.observe(blocks)
            self._m_in_use.set(in_use)
        return handle

    def free(self, ctx: TaskContext, handle: int) -> Generator:
        """G_dealloc via the command port."""
        if handle not in self._handles:
            raise AllocationError(f"free of unknown handle {handle:#x}")
        owner, virtuals = self._handles[handle]
        if owner != ctx.task.name:
            raise AllocationError(
                f"{ctx.task.name} freed a handle owned by {owner}")
        yield from self._port.acquire(owner)
        if self.faults is not None:
            self._apply_table_faults()
            if (self.resilience is not None
                    and self.stats.free_calls
                    % max(1, self.resilience.audit_every) == 0):
                yield from self._audit()
        yield from ctx.pe.bus_write()
        yield self.dealloc_cycles
        yield from ctx.pe.bus_read()
        cost = (self.dealloc_cycles
                + 2 * self.kernel.soc.bus.timing.transaction_cycles(1))
        self.stats.mm_cycles += cost
        self.stats.free_calls += 1
        for virtual in virtuals:
            self.allocator.deallocate(owner, virtual)
        del self._handles[handle]
        self._port.release(owner)
        if self.kernel.obs.enabled:
            self._m_frees.inc()
            self._m_in_use.set(
                self.allocator.used_blocks * self.allocator.block_bytes)

    # -- checkpoint protocol -------------------------------------------------------

    SNAPSHOT_KIND = "socdmmu"

    def snapshot_state(self) -> dict:
        """Versioned, hashed snapshot of the allocation tables + stats."""
        from repro.checkpoint.protocol import snapshot_envelope
        return snapshot_envelope(self.SNAPSHOT_KIND, {
            "alloc_cycles": self.alloc_cycles,
            "dealloc_cycles": self.dealloc_cycles,
            "allocator": self.allocator.snapshot_payload(),
            "handles": sorted(
                [handle, owner, list(virtuals)]
                for handle, (owner, virtuals) in self._handles.items()),
            "next_handle": self._next_handle,
            "stats": {
                "malloc_calls": self.stats.malloc_calls,
                "free_calls": self.stats.free_calls,
                "mm_cycles": self.stats.mm_cycles,
                "peak_in_use": self.stats.peak_in_use,
                "failed_allocations": self.stats.failed_allocations,
                "walk_lengths": list(self.stats.walk_lengths),
            },
            "audits": self.audits,
            "audit_repairs": self.audit_repairs,
        })

    @classmethod
    def restore_state(cls, envelope: dict, kernel: Kernel) -> "SoCDMMU":
        """Rebuild the unit against a (restored) kernel."""
        from repro.checkpoint.protocol import open_envelope
        state = open_envelope(envelope, kind=cls.SNAPSHOT_KIND)
        allocator_state = state["allocator"]
        unit = cls(kernel,
                   num_blocks=allocator_state["num_blocks"],
                   block_bytes=allocator_state["block_bytes"],
                   alloc_cycles=state["alloc_cycles"],
                   dealloc_cycles=state["dealloc_cycles"])
        unit.allocator = BlockAllocator.from_payload(allocator_state)
        unit._handles = {
            handle: (owner, list(virtuals))
            for handle, owner, virtuals in state["handles"]}
        unit._next_handle = state["next_handle"]
        stats = state["stats"]
        unit.stats.malloc_calls = stats["malloc_calls"]
        unit.stats.free_calls = stats["free_calls"]
        unit.stats.mm_cycles = stats["mm_cycles"]
        unit.stats.peak_in_use = stats["peak_in_use"]
        unit.stats.failed_allocations = stats["failed_allocations"]
        unit.stats.walk_lengths = list(stats["walk_lengths"])
        unit.audits = state["audits"]
        unit.audit_repairs = state["audit_repairs"]
        return unit

    # -- introspection ------------------------------------------------------------

    @property
    def free_bytes(self) -> int:
        return self.allocator.free_blocks * self.allocator.block_bytes

    @property
    def in_use_bytes(self) -> int:
        return self.allocator.used_blocks * self.allocator.block_bytes
