"""Unified observability: metrics registry + span tracing + exporters.

One :class:`Observability` instance rides along with each
:class:`~repro.mpsoc.soc.MPSoC` (``soc.obs``); the kernel, the buses and
the four hardware units register their metrics into it at construction
and update them — and open spans around kernel service calls — only
when it is *enabled*.  Disabled (the default) the whole layer costs one
attribute load and branch per instrumentation site, which the
``benchmarks/test_bench_obs_overhead.py`` guard holds under 5% of a
Table 5 run.

Enable per system::

    system = build_system("RTOS2")
    system.soc.obs.enabled = True
    ...
    print(summary_table(system.soc.obs))

or process-wide for a CLI run (``python -m repro.experiments table5
--metrics --trace-out /tmp/t.json``), which flips
:func:`set_default_enabled` so every system built afterwards is born
instrumented and registered with :func:`live_systems` for collection.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramState,
    MetricsRegistry,
    Snapshot,
)
from repro.obs.spans import Span, SpanTracer, wrap_generator
from repro.obs.export import (
    chrome_trace_document,
    chrome_trace_events,
    metrics_to_jsonl,
    spans_to_jsonl,
    summary_table,
    write_chrome_trace,
)
from repro.obs.flight import (
    DEFAULT_CAPACITY,
    FlightRecorder,
    blackbox_to_perfetto,
    events_to_perfetto,
    read_blackbox,
)
from repro.obs.profile import (
    ProfileDiff,
    ProfileReport,
    build_profile,
    merge_profiles,
    read_profile,
    write_profile,
)
from repro.sim.trace import Trace

__all__ = [
    "Observability",
    "NULL_OBS",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramState",
    "Snapshot",
    "DEFAULT_BUCKETS",
    "Span",
    "SpanTracer",
    "FlightRecorder",
    "DEFAULT_CAPACITY",
    "events_to_perfetto",
    "read_blackbox",
    "blackbox_to_perfetto",
    "ProfileReport",
    "ProfileDiff",
    "build_profile",
    "merge_profiles",
    "read_profile",
    "write_profile",
    "chrome_trace_document",
    "chrome_trace_events",
    "write_chrome_trace",
    "spans_to_jsonl",
    "metrics_to_jsonl",
    "summary_table",
    "set_default_enabled",
    "default_enabled",
    "live_systems",
    "clear_live_systems",
]

#: When True, every Observability constructed without an explicit
#: ``enabled`` argument starts enabled and is registered for
#: :func:`live_systems` collection (the CLI capture mode).
_default_enabled = False
_live: list = []


def set_default_enabled(flag: bool) -> None:
    """Process-wide capture mode for systems built from here on."""
    global _default_enabled
    _default_enabled = bool(flag)


def default_enabled() -> bool:
    """Is the process-wide capture mode currently on?"""
    return _default_enabled


def live_systems() -> tuple:
    """Every instance captured while the default-enabled mode was on."""
    return tuple(_live)


def clear_live_systems() -> None:
    """Forget previously captured instances (start of a CLI run)."""
    _live.clear()


class Observability:
    """Metrics + spans + exporters for one simulated system."""

    def __init__(self, engine: Optional[Any] = None,
                 label: str = "system", trace: Optional[Trace] = None,
                 enabled: Optional[bool] = None) -> None:
        self.engine = engine
        self.label = label
        if enabled is None:
            enabled = _default_enabled
            if enabled:
                _live.append(self)
        self.enabled = bool(enabled)
        self._frozen = False
        self.metrics = MetricsRegistry()
        self.tracer = SpanTracer(self.now, trace=trace)
        self.flight = FlightRecorder(clock=self.now)
        if self.enabled:
            self.flight.enabled = True
        if engine is not None and getattr(engine, "obs", None) is None:
            engine.obs = self

    # -- clock -------------------------------------------------------------

    def now(self) -> float:
        """The system clock (simulated cycles); 0 with no engine."""
        engine = self.engine
        return engine.now if engine is not None else 0.0

    # -- enable / disable --------------------------------------------------

    def enable(self) -> None:
        if self._frozen:
            raise SimulationError(
                "the shared NULL_OBS sentinel cannot be enabled; give "
                "the component its own Observability instance")
        self.enabled = True
        self.flight.enable()

    def disable(self) -> None:
        self.enabled = False
        self.flight.disable()

    # -- spans -------------------------------------------------------------

    def begin(self, actor: str, name: str, **attrs: Any) -> Optional[Span]:
        """Open a span; returns None when disabled (guard end() on it)."""
        if not self.enabled:
            return None
        return self.tracer.begin(actor, name, attrs or None)

    def end(self, span: Optional[Span]) -> None:
        if span is not None:
            self.tracer.end(span)

    def wrap(self, actor: str, name: str, gen: Any, **attrs: Any):
        """Run a service-call generator inside a span.

        When disabled this returns ``gen`` untouched — the only cost on
        the disabled path is this call itself.
        """
        if not self.enabled:
            return gen
        return wrap_generator(self.tracer, actor, name, gen,
                              attrs or None)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> Snapshot:
        return self.metrics.snapshot(time=self.now())

    # -- profiles ----------------------------------------------------------

    def profile_report(self, label: Optional[str] = None) -> ProfileReport:
        """Attribute this system's cycles to components (see profile.py)."""
        return build_profile(self, label=label)

    # -- exports -----------------------------------------------------------

    def summary(self, title: Optional[str] = None) -> str:
        return summary_table(self, title=title
                             if title is not None else self.label)

    def chrome_trace(self) -> dict:
        return chrome_trace_document(self)

    def spans_jsonl(self) -> str:
        return spans_to_jsonl(self)

    def metrics_jsonl(self) -> str:
        return metrics_to_jsonl(self.metrics)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "enabled" if self.enabled else "disabled"
        return (f"<Observability {self.label!r} {state} "
                f"metrics={len(self.metrics)} "
                f"spans={len(self.tracer.all_spans())}>")


def _make_null() -> Observability:
    obs = Observability(enabled=False, label="null")
    obs._frozen = True
    obs.flight._frozen = True
    return obs


#: Shared disabled sentinel for components constructed without a system
#: (a bare DDU in a unit test, a standalone HierarchicalBus).  Metrics
#: registered on it are inert: the sentinel can never be enabled.
NULL_OBS = _make_null()
