"""Exporters: Chrome/Perfetto ``trace_event`` JSON, JSONL, summaries.

The Chrome trace format (the ``traceEvents`` JSON consumed by
``chrome://tracing`` and https://ui.perfetto.dev) maps cleanly onto
this stack: each instrumented system becomes a *process*, each actor
(task, service) becomes a *thread*, and each span becomes a complete
(``"ph": "X"``) event with its begin cycle as ``ts`` and its length as
``dur`` — one simulated cycle is exported as one microsecond, so the
viewer's time axis reads directly in cycles.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable, Optional, Union

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability


# -- Chrome / Perfetto trace_event JSON -----------------------------------

def chrome_trace_events(systems: Iterable["Observability"]) -> list:
    """Flatten one or more instrumented systems into trace events.

    Open spans (a deadlocked task's pending request, for example) are
    exported up to the system's current time and tagged
    ``"unfinished": true`` so they remain visible in the viewer.
    """
    events: list = []
    for pid, obs in enumerate(systems, start=1):
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "ts": 0,
            "args": {"name": obs.label},
        })
        tids: dict = {}
        for actor in obs.tracer.actors():
            tids[actor] = len(tids) + 1
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid,
                "tid": tids[actor], "ts": 0, "args": {"name": actor},
            })
        now = obs.now()
        for span in obs.tracer.all_spans():
            args = dict(span.attrs)
            end = span.end
            if end is None:
                end = max(now, span.begin)
                args["unfinished"] = True
            events.append({
                "ph": "X", "name": span.name, "cat": "service",
                "ts": span.begin, "dur": end - span.begin,
                "pid": pid, "tid": tids.get(span.actor, 0),
                "args": args,
            })
    return events


def chrome_trace_document(
        systems: Union["Observability", Iterable["Observability"]]) -> dict:
    """The complete JSON-object form of the trace_event format."""
    from repro.obs import Observability
    if isinstance(systems, Observability):
        systems = [systems]
    return {
        "traceEvents": chrome_trace_events(systems),
        "displayTimeUnit": "ns",
        "otherData": {"producer": "repro.obs",
                      "time_unit": "1 ts = 1 simulated cycle"},
    }


def write_chrome_trace(
        path: str,
        systems: Union["Observability", Iterable["Observability"]]) -> str:
    """Write a Perfetto-loadable trace JSON to ``path``."""
    with open(path, "w") as handle:
        json.dump(chrome_trace_document(systems), handle, indent=1)
        handle.write("\n")
    return path


# -- JSONL ----------------------------------------------------------------

def spans_to_jsonl(obs: "Observability") -> str:
    """One JSON object per span, begin-time ordered."""
    lines = []
    for span in sorted(obs.tracer.all_spans(),
                       key=lambda s: (s.begin, s.depth)):
        lines.append(json.dumps({
            "actor": span.actor, "name": span.name,
            "begin": span.begin, "end": span.end, "depth": span.depth,
            "attrs": span.attrs,
        }, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_to_jsonl(registry: MetricsRegistry) -> str:
    """One JSON object per metric, registration-ordered."""
    lines = []
    for metric in registry:
        if isinstance(metric, Counter):
            payload = {"kind": "counter", "value": metric.value}
        elif isinstance(metric, Gauge):
            payload = {"kind": "gauge", "value": metric.value,
                       "min": metric.min_value, "max": metric.max_value}
        else:
            payload = {"kind": "histogram", "count": metric.count,
                       "total": metric.total, "mean": metric.mean,
                       "min": metric.min_value, "max": metric.max_value,
                       "bounds": list(metric.bounds),
                       "counts": list(metric.counts)}
        payload["name"] = metric.name
        lines.append(json.dumps(payload, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


# -- plain-text summary ---------------------------------------------------

def _render_rows(header: list, rows: list) -> list:
    widths = [max(len(str(cell)) for cell in column)
              for column in zip(header, *rows)]
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*header), fmt.format(*("-" * w for w in widths))]
    lines.extend(fmt.format(*(str(cell) for cell in row)) for row in rows)
    return lines


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and value != int(value):
        return f"{value:.1f}"
    return f"{int(value)}"


def summary_table(obs_or_registry, title: Optional[str] = None) -> str:
    """Human-readable metric summary (the ``--metrics`` CLI output)."""
    registry = getattr(obs_or_registry, "metrics", obs_or_registry)
    lines: list = []
    if title:
        lines.extend([title, "=" * len(title)])
    counters = [m for m in registry if isinstance(m, Counter)]
    gauges = [m for m in registry if isinstance(m, Gauge)]
    histograms = [m for m in registry if isinstance(m, Histogram)]
    if counters:
        lines.extend(_render_rows(
            ["counter", "value"],
            [[m.name, _fmt(m.value)] for m in counters]))
        lines.append("")
    if gauges:
        lines.extend(_render_rows(
            ["gauge", "value", "min", "max"],
            [[m.name, _fmt(m.value), _fmt(m.min_value),
              _fmt(m.max_value)] for m in gauges]))
        lines.append("")
    if histograms:
        lines.extend(_render_rows(
            ["histogram", "count", "mean", "p50", "p95", "min", "max"],
            [[m.name, m.count, f"{m.mean:.1f}",
              _fmt(m.percentile(50)) if m.count else "-",
              _fmt(m.percentile(95)) if m.count else "-",
              _fmt(m.min_value), _fmt(m.max_value)]
             for m in histograms]))
    if not (counters or gauges or histograms):
        lines.append("(no metrics registered)")
    return "\n".join(lines).rstrip()
