"""Counters, gauges and fixed-bucket histograms behind one registry.

Every quantity the paper tabulates is a count or a latency, so the
registry speaks exactly three metric kinds:

* :class:`Counter` — a monotonically increasing total (bus
  transactions, context switches, DDU invocations);
* :class:`Gauge` — a sampled level with min/max tracking (ready-queue
  depth, heap bytes in use, free-list length);
* :class:`Histogram` — fixed upper-bound buckets with sum/count/min/max
  (lock acquire latency, DDU iterations, allocation sizes).

Components *register* their metrics once at construction (cheap, even
when observability is disabled) and *update* them only behind the
``Observability.enabled`` guard, so the disabled hot path costs a single
attribute load and branch.  :meth:`MetricsRegistry.snapshot` freezes the
whole registry; :meth:`Snapshot.delta` subtracts an earlier snapshot so
experiments can report per-phase numbers.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Union

from repro.errors import ConfigurationError

#: Default histogram upper bounds, sized for cycle-count distributions
#: (sub-cycle up to a million cycles); the final overflow bucket is
#: implicit.
DEFAULT_BUCKETS: tuple = (
    1, 2, 5, 10, 25, 50, 100, 250, 500,
    1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
    100_000, 250_000, 500_000, 1_000_000,
)

#: Default cap on distinct label values per metric base name.
DEFAULT_MAX_LABELS = 64

#: Counter recording label values rejected by the cardinality cap.
DROPPED_LABELS = "metrics.dropped_labels"

#: The shared bucket updates for dropped label values land in.
OVERFLOW_LABEL = "other"


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "help", "value", "updates")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0.0
        self.updates = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount
        self.updates += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value:g}>"


class Gauge:
    """A sampled level; remembers the extremes it visited."""

    __slots__ = ("name", "help", "value", "min_value", "max_value",
                 "updates")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0.0
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        self.updates += 1

    def inc(self, amount: float = 1) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1) -> None:
        self.set(self.value - amount)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name}={self.value:g}>"


class Histogram:
    """Fixed-bucket histogram: counts per upper bound plus an overflow.

    ``bounds`` are inclusive upper bounds in increasing order; a sample
    lands in the first bucket whose bound is >= the sample, or in the
    overflow bucket past the last bound.
    """

    __slots__ = ("name", "help", "bounds", "counts", "count", "total",
                 "min_value", "max_value", "updates")

    def __init__(self, name: str, help: str = "",
                 bounds: Sequence = DEFAULT_BUCKETS) -> None:
        bounds = tuple(bounds)
        if not bounds or any(b <= a for b, a in zip(bounds[1:], bounds)):
            raise ConfigurationError(
                f"histogram {name!r} bounds must increase: {bounds}")
        self.name = name
        self.help = help
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)   # +1 overflow bucket
        self.count = 0
        self.total = 0.0
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None
        self.updates = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        self.updates += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Interpolated percentile (0 < q <= 100).

        Linearly interpolates within the bucket containing the q-th
        sample — between the previous bound (or the observed minimum
        for the first bucket) and the bucket's upper bound — then
        clamps to the observed [min, max].  The overflow bucket reports
        the observed maximum.  At small sample counts this keeps a
        lone 7 in a (1, 10] bucket from reporting as "10".
        """
        if not 0 < q <= 100:
            raise ValueError(f"percentile {q} out of (0, 100]")
        if self.count == 0:
            return 0.0
        rank = q / 100.0 * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if seen + bucket_count >= rank:
                if index >= len(self.bounds):
                    return float(self.max_value)
                hi = float(self.bounds[index])
                lo = (float(self.bounds[index - 1]) if index
                      else float(self.min_value))
                lo = min(lo, hi)
                position = (rank - seen) / bucket_count
                value = lo + position * (hi - lo)
                return max(float(self.min_value),
                           min(value, float(self.max_value)))
            seen += bucket_count
        return float(self.max_value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Histogram {self.name} n={self.count} "
                f"mean={self.mean:.1f}>")


Metric = Union[Counter, Gauge, Histogram]


@dataclass(frozen=True)
class HistogramState:
    """Frozen histogram contents inside a :class:`Snapshot`."""

    bounds: tuple
    counts: tuple
    count: int
    total: float
    min_value: Optional[float]
    max_value: Optional[float]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass(frozen=True)
class Snapshot:
    """An immutable copy of a registry at one instant."""

    time: float
    counters: dict
    gauges: dict
    histograms: dict

    def delta(self, earlier: "Snapshot") -> "Snapshot":
        """Per-phase difference: this snapshot minus an ``earlier`` one.

        Counters and histogram contents are subtracted; gauges keep this
        snapshot's (later) value — a level has no meaningful delta.
        """
        counters = {name: value - earlier.counters.get(name, 0.0)
                    for name, value in self.counters.items()}
        histograms = {}
        for name, state in self.histograms.items():
            base = earlier.histograms.get(name)
            if base is None or base.bounds != state.bounds:
                histograms[name] = state
                continue
            histograms[name] = HistogramState(
                bounds=state.bounds,
                counts=tuple(now - then for now, then
                             in zip(state.counts, base.counts)),
                count=state.count - base.count,
                total=state.total - base.total,
                min_value=state.min_value,
                max_value=state.max_value,
            )
        return Snapshot(time=self.time, counters=counters,
                        gauges=dict(self.gauges), histograms=histograms)


class MetricsRegistry:
    """Named metrics, get-or-create, insertion-ordered.

    Metrics may carry one label value (``counter("rpc.calls",
    label="tenant-a")`` registers ``rpc.calls[tenant-a]``).  Distinct
    label values per base name are capped at ``max_labels``; past the
    cap, new values collapse into a shared ``[other]`` bucket and the
    ``metrics.dropped_labels`` counter increments — a runaway
    per-tenant label set degrades, it cannot blow memory.
    """

    def __init__(self, max_labels: int = DEFAULT_MAX_LABELS) -> None:
        self._metrics: dict = {}
        self.max_labels = max_labels
        self._label_values: dict = {}

    def _labeled(self, name: str, label: Optional[str]) -> str:
        if label is None:
            return name
        values = self._label_values.setdefault(name, set())
        if label not in values:
            if len(values) >= self.max_labels:
                self._get_or_create(
                    DROPPED_LABELS, Counter,
                    help="label values rejected by the cardinality cap",
                ).inc()
                return f"{name}[{OVERFLOW_LABEL}]"
            values.add(label)
        return f"{name}[{label}]"

    def _get_or_create(self, name: str, kind: type, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, **kwargs)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, kind):
            raise ConfigurationError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}")
        return metric

    def counter(self, name: str, help: str = "",
                label: Optional[str] = None) -> Counter:
        return self._get_or_create(self._labeled(name, label), Counter,
                                   help=help)

    def gauge(self, name: str, help: str = "",
              label: Optional[str] = None) -> Gauge:
        return self._get_or_create(self._labeled(name, label), Gauge,
                                   help=help)

    def histogram(self, name: str, help: str = "",
                  bounds: Sequence = DEFAULT_BUCKETS,
                  label: Optional[str] = None) -> Histogram:
        return self._get_or_create(self._labeled(name, label), Histogram,
                                   help=help, bounds=bounds)

    def get(self, name: str) -> Metric:
        try:
            return self._metrics[name]
        except KeyError:
            raise KeyError(f"no metric {name!r} registered") from None

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list:
        return list(self._metrics)

    @property
    def total_updates(self) -> int:
        """Update events since construction (benchmark bookkeeping)."""
        return sum(metric.updates for metric in self)

    def snapshot(self, time: float = 0.0) -> Snapshot:
        counters = {m.name: m.value for m in self
                    if isinstance(m, Counter)}
        gauges = {m.name: m.value for m in self if isinstance(m, Gauge)}
        histograms = {
            m.name: HistogramState(
                bounds=m.bounds, counts=tuple(m.counts), count=m.count,
                total=m.total, min_value=m.min_value,
                max_value=m.max_value)
            for m in self if isinstance(m, Histogram)}
        return Snapshot(time=time, counters=counters, gauges=gauges,
                        histograms=histograms)
