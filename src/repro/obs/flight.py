"""The always-on flight recorder: a bounded black box of recent events.

A :class:`FlightRecorder` keeps the last ``capacity`` noteworthy events
(fault trips, health-FSM transitions, checkpoint writes, scenario
lifecycle) in a ring buffer.  It costs nothing when idle — the ring is
allocated once, and every hook site guards with a single
``if flight.enabled:`` branch, the same zero-overhead idiom as the
metrics layer (held under 5% by ``benchmarks/test_bench_flight_overhead``).

Two persistence modes:

* **dump on trip** — :meth:`mark` records an event and, when an
  auto-dump path is armed, immediately writes the whole ring as a
  Perfetto-compatible trace: the "black box" for fault-plan trips,
  health transitions and checkpoint writes;
* **streaming sink** — :meth:`arm_sink` appends every event as one
  JSONL line, flushed per line but *not* fsync'd.  A campaign worker
  armed this way survives ``SIGKILL``: everything flushed before the
  kill is in the page cache and readable afterwards via
  :func:`read_blackbox`, which tolerates the torn final line.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Any, Callable, Iterable, Optional, Union

from repro.errors import SimulationError

#: Default ring capacity ("the final N events" after a crash).
DEFAULT_CAPACITY = 256

#: Event kinds that trigger an auto-dump when a dump path is armed.
TRIP_KINDS = frozenset((
    "fault_trip", "health_transition", "checkpoint_write",
    "worker_crash", "worker_lost",
    "tenant_admission_rejected", "shard_rebalance", "tenant_migration",
    "circuit_open", "circuit_close", "request_retried",
    "socdmmu_oom", "socdmmu_degrade", "socdmmu_failback",
))


class FlightRecorder:
    """Bounded ring of ``{time, actor, kind, data}`` events."""

    __slots__ = ("enabled", "capacity", "recorded", "_clock", "_ring",
                 "_sink", "_sink_path", "_autodump_path", "_frozen")

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if capacity < 1:
            raise SimulationError("flight recorder needs capacity >= 1")
        self.enabled = False
        self.capacity = capacity
        #: Events ever recorded (ring may have evicted older ones).
        self.recorded = 0
        self._clock = clock
        self._ring: deque = deque(maxlen=capacity)
        self._sink = None
        self._sink_path: Optional[Path] = None
        self._autodump_path: Optional[Path] = None
        self._frozen = False

    # -- switches ----------------------------------------------------------

    def enable(self) -> None:
        if self._frozen:
            raise SimulationError(
                "the shared NULL_OBS flight recorder cannot be enabled; "
                "give the component its own Observability instance")
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # -- recording ---------------------------------------------------------

    def record(self, kind: str, /, actor: str = "", **data: Any) -> None:
        """Append one event (call sites guard on ``enabled`` first).

        ``kind`` is positional-only so the payload may carry its own
        ``kind`` key (a fault spec's kind, say) without colliding.
        """
        event = {
            "time": self._clock() if self._clock is not None else 0.0,
            "actor": actor,
            "kind": kind,
            "data": data,
        }
        self._ring.append(event)
        self.recorded += 1
        if self._sink is not None:
            self._sink.write(json.dumps(event, sort_keys=True) + "\n")
            self._sink.flush()

    def mark(self, kind: str, /, actor: str = "", **data: Any) -> None:
        """Record an event and auto-dump the black box if armed."""
        self.record(kind, actor=actor, **data)
        if self._autodump_path is not None and kind in TRIP_KINDS:
            self.dump(self._autodump_path)

    # -- queries -----------------------------------------------------------

    def events(self) -> list:
        return list(self._ring)

    def tail(self, n: int = 10) -> list:
        """The most recent ``n`` events, oldest first."""
        events = list(self._ring)
        return events[-n:] if n < len(events) else events

    def __len__(self) -> int:
        return len(self._ring)

    def render_tail(self, n: int = 10) -> str:
        """Plain-text tail (the dashboard / post-mortem view)."""
        lines = []
        for event in self.tail(n):
            extras = " ".join(f"{k}={v}" for k, v
                              in sorted(event["data"].items()))
            actor = f" {event['actor']}" if event["actor"] else ""
            suffix = f" [{extras}]" if extras else ""
            lines.append(f"t={event['time']:>10g} {event['kind']}"
                         f"{actor}{suffix}")
        return "\n".join(lines) if lines else "(flight recorder empty)"

    # -- persistence -------------------------------------------------------

    def arm_sink(self, path: Union[str, Path]) -> Path:
        """Stream every future event to ``path`` as JSONL (black box)."""
        self.close_sink()
        self._sink_path = Path(path)
        self._sink_path.parent.mkdir(parents=True, exist_ok=True)
        self._sink = open(self._sink_path, "w", encoding="utf-8")
        return self._sink_path

    def close_sink(self) -> None:
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def autodump_to(self, path: Union[str, Path]) -> None:
        """Arm a Perfetto dump at ``path`` for every TRIP_KINDS event."""
        self._autodump_path = Path(path)

    def to_perfetto(self) -> dict:
        """The ring as a Chrome/Perfetto trace document."""
        return events_to_perfetto(self.events())

    def dump(self, path: Union[str, Path]) -> str:
        """Write the ring as a Perfetto-loadable black-box trace."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(self.to_perfetto(), handle, indent=1)
            handle.write("\n")
        return str(target)


def events_to_perfetto(events: Iterable[dict]) -> dict:
    """Flight events as Chrome/Perfetto instant events.

    Every actor becomes a thread of one "flight" process; each event is
    an instant (``"ph": "i"``) with its payload in ``args`` — loadable
    at https://ui.perfetto.dev next to the span traces.
    """
    trace_events: list = [{
        "ph": "M", "name": "process_name", "pid": 1, "ts": 0,
        "args": {"name": "flight-recorder"},
    }]
    tids: dict = {}
    for event in events:
        actor = event.get("actor") or "(system)"
        if actor not in tids:
            tids[actor] = len(tids) + 1
            trace_events.append({
                "ph": "M", "name": "thread_name", "pid": 1,
                "tid": tids[actor], "ts": 0, "args": {"name": actor},
            })
        trace_events.append({
            "ph": "i", "s": "t", "name": event["kind"],
            "cat": "flight", "ts": event.get("time", 0.0),
            "pid": 1, "tid": tids[actor],
            "args": dict(event.get("data", {})),
        })
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": {"producer": "repro.obs.flight",
                      "time_unit": "1 ts = 1 simulated cycle"},
    }


def read_blackbox(path: Union[str, Path]) -> list:
    """Read a streamed black-box JSONL back into an event list.

    A torn final line — the write a ``SIGKILL`` interrupted — is
    dropped; a torn line earlier in the file means real corruption and
    raises :class:`~repro.errors.SimulationError`.
    """
    text = Path(path).read_text(encoding="utf-8")
    events: list = []
    lines = text.splitlines()
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if number == len(lines):
                break              # torn final line: the crash point
            raise SimulationError(
                f"{path}:{number} is corrupt mid-blackbox: {exc}") from exc
    return events


def blackbox_to_perfetto(path: Union[str, Path],
                         out_path: Union[str, Path]) -> str:
    """Convert a streamed black-box JSONL into a Perfetto trace file."""
    document = events_to_perfetto(read_blackbox(path))
    target = Path(out_path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return str(target)
