"""Cross-run performance trends: BENCH_* history and regression gating.

Every benchmark guard in ``benchmarks/`` writes a ``BENCH_*.json``
record, but each guard only checks a one-shot bound (a minimum speedup,
a maximum overhead fraction).  This module gives the records a
*trajectory*: :func:`collect_bench_entries` flattens the BENCH_* family
(plus profile reports) into metric entries, :func:`append_history`
appends them as one run-line of ``BENCH_HISTORY.jsonl``, and
:func:`check_trends` compares the latest run against a rolling baseline
(the median of the preceding window) — flagging *unexplained* slowdowns
long before they cross a hard guard.

Metric direction is inferred from the name: wall-clock and overhead
metrics are lower-is-better, speedups higher-is-better; everything else
is informational and never gates.  The tolerance is deliberately loose
(default 75% worse than baseline) because the benchmarks run on shared
CI machines — the gate exists to catch 2x-and-worse cliffs, not noise.
"""

from __future__ import annotations

import json
import time as time_module
from pathlib import Path
from typing import Iterable, Mapping, Optional, Union

from repro.errors import ConfigurationError

HISTORY_NAME = "BENCH_HISTORY.jsonl"

#: Name fragments marking a lower-is-better metric.  ``retry`` covers
#: the resilient client's retry rate under a reference chaos plan;
#: ``chaos`` covers wire-chaos recovery metrics — for both, creeping
#: upward means the wire (or the retry loop) got worse.
_LOWER_IS_BETTER = (
    "seconds", "_ms", "_us", "_ns", "overhead", "cost", "cycles",
    "duration", "latency", "retry", "chaos",
)

#: Name fragments marking a higher-is-better metric.  ``savings``
#: covers the SoCDMMU memory-pressure record's CoW cycle savings
#: (``BENCH_socdmmu_pressure.cow_savings_ratio``) — sharing getting
#: cheaper relative to eager copies is the direction we want.
_HIGHER_IS_BETTER = ("speedup", "throughput", "per_second", "fraction_ok",
                     "ratio", "savings")

#: Name fragments that are configuration, not measurements.
_IGNORED = ("bound", "min_speedup", "min_batch_ratio", "cadence",
            "iterations", "passes", "visits", "events", "count", "size",
            "state", "workload", "benchmark", "tenants")


def metric_direction(name: str) -> Optional[str]:
    """``"lower"``, ``"higher"``, or ``None`` (ungated) for a metric."""
    base = name.rsplit(".", 1)[-1]
    if any(fragment in base for fragment in _IGNORED):
        return None
    if any(fragment in base for fragment in _HIGHER_IS_BETTER):
        return "higher"
    if any(fragment in base for fragment in _LOWER_IS_BETTER):
        return "lower"
    return None


def collect_bench_entries(root: Union[str, Path]) -> dict:
    """Flatten every ``BENCH_*.json`` under ``root`` into metric entries.

    Returns ``{"<file-stem>.<key>": value}`` for every numeric key, e.g.
    ``BENCH_matrix_kernels.speedup`` — the series names the trend
    checker tracks.
    """
    entries: dict = {}
    for path in sorted(Path(root).glob("BENCH_*.json")):
        if path.name == HISTORY_NAME:
            continue
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{path} is not a JSON benchmark record: {exc}") from exc
        if not isinstance(payload, Mapping):
            continue
        stem = path.stem
        for key, value in payload.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                entries[f"{stem}.{key}"] = value
    return entries


def profile_entries(profiles: Iterable, prefix: str = "profile") -> dict:
    """Trend entries from :class:`~repro.obs.profile.ProfileReport`s.

    Simulated cycle totals are deterministic, so even a tight tolerance
    on them is meaningful — a cycle regression is a model change, not
    machine noise.
    """
    entries: dict = {}
    for profile in profiles:
        label = profile.label.replace(" ", "_")
        entries[f"{prefix}.{label}.total_cycles"] = profile.total_cycles
        entries[f"{prefix}.{label}.wall_seconds"] = profile.wall_seconds
    return entries


def append_history(history_path: Union[str, Path], entries: Mapping,
                   run_id: Optional[str] = None,
                   timestamp: Optional[float] = None) -> dict:
    """Append one run-line to the history; returns the written record."""
    record = {
        "run": run_id if run_id is not None else "local",
        "time": timestamp if timestamp is not None else time_module.time(),
        "entries": dict(entries),
    }
    path = Path(history_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def load_history(history_path: Union[str, Path]) -> list:
    """All run-lines, oldest first; torn final line tolerated."""
    try:
        text = Path(history_path).read_text(encoding="utf-8")
    except FileNotFoundError:
        return []
    records: list = []
    lines = text.splitlines()
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if number == len(lines):
                break
            raise ConfigurationError(
                f"{history_path}:{number} is corrupt mid-history: "
                f"{exc}") from exc
    return records


def _median(values: list) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


class TrendReport:
    """Latest run vs the rolling baseline, per tracked metric."""

    def __init__(self, window: int, tolerance: float) -> None:
        self.window = window
        self.tolerance = tolerance
        #: [(metric, baseline, latest, ratio)] — worse than tolerated.
        self.regressions: list = []
        #: [(metric, baseline, latest, ratio)] — improved past tolerance.
        self.improvements: list = []
        #: Metrics tracked and within band.
        self.steady: list = []
        #: Metrics without enough history to gate.
        self.unbaselined: list = []

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    def render(self) -> str:
        checked = (len(self.regressions) + len(self.improvements)
                   + len(self.steady))
        lines = [f"trend check: {checked} metric(s) against a "
                 f"window-{self.window} baseline "
                 f"(tolerance {self.tolerance * 100:.0f}%)"]
        for metric, baseline, latest, ratio in self.regressions:
            lines.append(f"  REGRESSION  {metric}: {baseline:g} -> "
                         f"{latest:g} ({ratio:.2f}x worse)")
        for metric, baseline, latest, ratio in self.improvements:
            lines.append(f"  improved    {metric}: {baseline:g} -> "
                         f"{latest:g} ({ratio:.2f}x better)")
        if not self.regressions:
            lines.append(f"  no regressions; {len(self.steady)} steady, "
                         f"{len(self.unbaselined)} without baseline")
        return "\n".join(lines)


def check_trends(history: list, window: int = 5,
                 tolerance: float = 0.75) -> TrendReport:
    """Gate the newest history run against the preceding runs.

    For each metric with a direction, the baseline is the median of up
    to ``window`` preceding observations.  Lower-is-better metrics
    regress when ``latest > baseline * (1 + tolerance)``;
    higher-is-better when ``latest < baseline / (1 + tolerance)``.
    """
    report = TrendReport(window=window, tolerance=tolerance)
    if len(history) < 2:
        return report
    latest = history[-1].get("entries", {})
    previous = history[:-1]
    for metric, value in sorted(latest.items()):
        direction = metric_direction(metric)
        if direction is None:
            continue
        series = [run["entries"][metric] for run in previous[-window:]
                  if metric in run.get("entries", {})]
        if not series:
            report.unbaselined.append(metric)
            continue
        baseline = _median(series)
        if baseline <= 0:
            report.unbaselined.append(metric)
            continue
        ratio = value / baseline
        if direction == "lower":
            if ratio > 1 + tolerance:
                report.regressions.append((metric, baseline, value, ratio))
            elif ratio < 1 / (1 + tolerance):
                report.improvements.append(
                    (metric, baseline, value, 1 / ratio))
            else:
                report.steady.append(metric)
        else:
            if ratio < 1 / (1 + tolerance):
                report.regressions.append(
                    (metric, baseline, value, 1 / ratio))
            elif ratio > 1 + tolerance:
                report.improvements.append((metric, baseline, value, ratio))
            else:
                report.steady.append(metric)
    return report
