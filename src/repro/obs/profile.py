"""Cycle-attribution profiling: where did the simulated cycles go?

The paper's whole partitioning argument is a cycle ledger — Tables 5,
7, 9 and 11/12 all compare *per-component* cycle costs across
hardware/software splits.  :class:`ProfileReport` turns one
instrumented run into that ledger: it folds the
:class:`~repro.obs.spans.SpanTracer` span tree and the unit metric
counters into per-component, per-operation cycle totals, so a
profile-guided partitioner (ROADMAP item 2) can consume workload
profiles as first-class, machine-readable artifacts.

Attribution model
-----------------

Two complementary views are folded into one report:

* **Timeline attribution** (``components[*].cycles``): every span's
  *self time* — its duration minus its children's — is charged to the
  component that serves the span's operation (``malloc`` to the
  SoCDMMU or the software heap, ``detect`` to the DDU or the software
  PDDA, ``use_peripheral`` to the peripheral, and so on).  Self times
  are summed over actors, so concurrent activity can legitimately
  attribute more than ``total_cycles`` actor-cycles in total.
* **Unit meters** (``components[*].operations``): the cycle-valued
  histograms the hardware models keep (``ddu.cycles``,
  ``dau.decision_cycles``, ``deadlock.algorithm_cycles``,
  ``lock.acquire_latency``, bus busy/stall counters) appear as named
  operations with their own counts and metered cycle totals — the
  exact quantities the paper tabulates.

``attributed_fraction`` is the *coverage* of the run: the union of all
span intervals, over all actors, divided by ``total_cycles``.  A run
whose tasks spend their lives inside instrumented service calls (the
Table 5 scenario, say) attributes >95% of its cycles; uninstrumented
stretches show up honestly as ``unattributed_cycles``.

Serialisation is canonical JSON (sorted keys, no whitespace — the
same convention as the checkpoint envelopes), so profiles are
byte-comparable and digest-stable.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable, Mapping, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability

#: Schema tag embedded in every serialised profile.
PROFILE_SCHEMA = "repro.profile/1"

#: Span names charged to the deadlock/avoidance *unit* (hardware or
#: software, resolved per system from the unit invocation counters).
_DETECTION_SPANS = ("detect",)
_AVOIDANCE_PREFIX = "avoid."

#: Span name -> component for everything that does not need resolution.
_SPAN_COMPONENTS = {
    "request": "kernel",
    "release": "kernel",
    "wait_grant": "blocked",
    "acquire": "kernel",
    "withdraw": "kernel",
    "lock": "locks",
    "unlock": "locks",
    "use_peripheral": "peripheral",
    "post": "ipc",
    "pend": "ipc",
    "send": "ipc",
    "receive": "ipc",
}

#: Counter/histogram prefixes surfaced verbatim in ``counters`` (the
#: fast-path and fault annotations ROADMAP item 2 wants alongside the
#: cycle ledger).
_ANNOTATION_PREFIXES = ("matrix.fastpath.", "matrix.batch.", "faults.",
                        "checkpoint.")


def _component_for_span(name: str, detection: str, memory: str) -> str:
    """Resolve one span name to its serving component."""
    if name in _DETECTION_SPANS or name.startswith(_AVOIDANCE_PREFIX):
        return detection
    if name in ("malloc", "free"):
        return memory
    return _SPAN_COMPONENTS.get(name, "app")


def _resolve_detection(counters: Mapping[str, float]) -> str:
    """Which component ran the detection/avoidance algorithm?"""
    if counters.get("dau.decisions", 0):
        return "dau"
    if counters.get("ddu.invocations", 0):
        return "ddu"
    if counters.get("deadlock.invocations", 0):
        return "software.pdda"
    return "detection"


def _resolve_memory(counters: Mapping[str, float]) -> str:
    """Which component served malloc/free?"""
    if counters.get("socdmmu.mallocs", 0) or counters.get("socdmmu.frees", 0):
        return "socdmmu"
    if counters.get("heap.mallocs", 0) or counters.get("heap.frees", 0):
        return "software.heap"
    return "memory"


def _interval_union(intervals: list) -> float:
    """Total length of the union of ``(begin, end)`` intervals."""
    if not intervals:
        return 0.0
    intervals.sort()
    covered = 0.0
    cur_begin, cur_end = intervals[0]
    for begin, end in intervals[1:]:
        if begin > cur_end:
            covered += cur_end - cur_begin
            cur_begin, cur_end = begin, end
        else:
            cur_end = max(cur_end, end)
    return covered + (cur_end - cur_begin)


class ProfileReport:
    """A per-component, per-operation cycle ledger for one run."""

    def __init__(self, label: str, total_cycles: float,
                 components: Optional[dict] = None,
                 counters: Optional[dict] = None,
                 covered_cycles: float = 0.0,
                 wall_seconds: float = 0.0,
                 events_processed: int = 0,
                 meta: Optional[dict] = None) -> None:
        self.label = label
        self.total_cycles = float(total_cycles)
        #: {component: {"cycles": float,
        #:              "operations": {op: {"count": n, "cycles": c}}}}
        self.components: dict = components if components is not None else {}
        #: Fast-path / fault / checkpoint counters, verbatim.
        self.counters: dict = counters if counters is not None else {}
        self.covered_cycles = float(covered_cycles)
        self.wall_seconds = float(wall_seconds)
        self.events_processed = int(events_processed)
        self.meta: dict = meta if meta is not None else {}

    # -- derived -----------------------------------------------------------

    @property
    def attributed_fraction(self) -> float:
        """Span-coverage of the run's timeline (0..1)."""
        if not self.total_cycles:
            return 0.0
        return min(1.0, self.covered_cycles / self.total_cycles)

    @property
    def unattributed_cycles(self) -> float:
        return max(0.0, self.total_cycles - self.covered_cycles)

    @property
    def attributed_cycles(self) -> float:
        """Sum of per-component self-time cycles (actor-cycles)."""
        return sum(entry["cycles"] for entry in self.components.values())

    def component_cycles(self, name: str) -> float:
        entry = self.components.get(name)
        return entry["cycles"] if entry else 0.0

    # -- ledger assembly ---------------------------------------------------

    def charge(self, component: str, cycles: float, operation: str,
               count: int = 1, metered: bool = False) -> None:
        """Add ``cycles`` of ``operation`` to ``component``'s ledger.

        ``metered`` entries carry unit-histogram totals that already
        live inside some span's timeline; they extend the operations
        table without inflating the component's timeline cycles.
        """
        entry = self.components.setdefault(
            component, {"cycles": 0.0, "operations": {}})
        if not metered:
            entry["cycles"] += cycles
        op = entry["operations"].setdefault(
            operation, {"count": 0, "cycles": 0.0})
        op["count"] += count
        op["cycles"] += cycles

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": PROFILE_SCHEMA,
            "label": self.label,
            "total_cycles": self.total_cycles,
            "covered_cycles": self.covered_cycles,
            "attributed_fraction": self.attributed_fraction,
            "unattributed_cycles": self.unattributed_cycles,
            "wall_seconds": self.wall_seconds,
            "events_processed": self.events_processed,
            "components": self.components,
            "counters": self.counters,
            "meta": self.meta,
        }

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ProfileReport":
        if payload.get("schema") != PROFILE_SCHEMA:
            raise ConfigurationError(
                f"not a {PROFILE_SCHEMA} profile: "
                f"schema={payload.get('schema')!r}")
        report = cls(
            label=payload["label"],
            total_cycles=payload["total_cycles"],
            components={name: {"cycles": entry["cycles"],
                               "operations": {
                                   op: dict(stats) for op, stats
                                   in entry["operations"].items()}}
                        for name, entry in payload["components"].items()},
            counters=dict(payload.get("counters", {})),
            covered_cycles=payload.get("covered_cycles", 0.0),
            wall_seconds=payload.get("wall_seconds", 0.0),
            events_processed=payload.get("events_processed", 0),
            meta=dict(payload.get("meta", {})),
        )
        return report

    @classmethod
    def from_json(cls, text: str) -> "ProfileReport":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"profile is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    # -- views -------------------------------------------------------------

    def render(self) -> str:
        """Human-readable per-component cycle table."""
        title = (f"profile {self.label!r}: {self.total_cycles:g} cycles, "
                 f"{self.attributed_fraction * 100:.1f}% attributed")
        lines = [title, "=" * len(title)]
        width = max([len(name) for name in self.components] + [9])
        lines.append(f"{'component':<{width}s}  {'cycles':>12s}  "
                     f"{'share':>6s}  operations")
        for name in sorted(self.components,
                           key=lambda n: -self.components[n]["cycles"]):
            entry = self.components[name]
            share = (entry["cycles"] / self.total_cycles * 100
                     if self.total_cycles else 0.0)
            ops = ", ".join(
                f"{op}x{stats['count']}"
                + (f" ({stats['cycles']:g}cy)" if stats["cycles"] else "")
                for op, stats in sorted(entry["operations"].items()))
            lines.append(f"{name:<{width}s}  {entry['cycles']:>12g}  "
                         f"{share:>5.1f}%  {ops}")
        if self.unattributed_cycles:
            lines.append(f"{'(unattributed)':<{width}s}  "
                         f"{self.unattributed_cycles:>12g}")
        return "\n".join(lines)

    def diff(self, baseline: "ProfileReport") -> "ProfileDiff":
        """Per-component delta against an earlier profile."""
        return ProfileDiff(baseline, self)


class ProfileDiff:
    """The ``profile diff`` view: what moved between two profiles."""

    def __init__(self, baseline: ProfileReport,
                 candidate: ProfileReport) -> None:
        self.baseline = baseline
        self.candidate = candidate
        names = sorted(set(baseline.components) | set(candidate.components))
        #: [(component, base cycles, new cycles, delta, ratio)]
        self.rows = []
        for name in names:
            base = baseline.component_cycles(name)
            new = candidate.component_cycles(name)
            ratio = (new / base) if base else (float("inf") if new else 1.0)
            self.rows.append((name, base, new, new - base, ratio))

    @property
    def total_delta(self) -> float:
        return self.candidate.total_cycles - self.baseline.total_cycles

    def regressions(self, threshold: float = 1.25) -> list:
        """Components whose cycles grew by more than ``threshold``x."""
        return [row for row in self.rows
                if row[1] and row[4] > threshold]

    def render(self) -> str:
        title = (f"profile diff: {self.baseline.label!r} -> "
                 f"{self.candidate.label!r} "
                 f"({self.total_delta:+g} total cycles)")
        lines = [title, "=" * len(title)]
        width = max([len(row[0]) for row in self.rows] + [9])
        lines.append(f"{'component':<{width}s}  {'before':>12s}  "
                     f"{'after':>12s}  {'delta':>12s}  ratio")
        for name, base, new, delta, ratio in self.rows:
            if not base and not new:
                continue
            shown = "new" if ratio == float("inf") else f"{ratio:.2f}x"
            lines.append(f"{name:<{width}s}  {base:>12g}  {new:>12g}  "
                         f"{delta:>+12g}  {shown}")
        return "\n".join(lines)


def build_profile(obs: "Observability", label: Optional[str] = None,
                  total_cycles: Optional[float] = None) -> ProfileReport:
    """Fold one instrumented system into a :class:`ProfileReport`.

    Works on any :class:`~repro.obs.Observability` — a live system's
    hub, or the campaign runner's merged-span hub.  ``total_cycles``
    defaults to the hub's clock (the engine's ``now``).
    """
    now = obs.now()
    if total_cycles is None:
        total_cycles = now
    snapshot = obs.snapshot()
    counters = snapshot.counters
    histograms = snapshot.histograms

    detection = _resolve_detection(counters)
    memory = _resolve_memory(counters)

    report = ProfileReport(
        label=label if label is not None else obs.label,
        total_cycles=total_cycles)

    engine = obs.engine
    if engine is not None:
        report.wall_seconds = getattr(engine, "wall_seconds", 0.0)
        report.events_processed = getattr(engine, "events_processed", 0)

    # -- timeline attribution: span self-times ---------------------------
    spans = obs.tracer.all_spans()
    by_actor: dict = {}
    for span in spans:
        by_actor.setdefault(span.actor, []).append(span)
    intervals = []
    for actor_spans in by_actor.values():
        # Children are one level deeper and nested inside the parent's
        # interval; subtracting their time gives the parent's self time.
        resolved = [(s, s.end if s.end is not None else max(now, s.begin))
                    for s in actor_spans]
        for span, end in resolved:
            child_time = sum(
                child_end - child.begin
                for child, child_end in resolved
                if child.depth == span.depth + 1
                and child.begin >= span.begin and child_end <= end)
            self_time = max(0.0, (end - span.begin) - child_time)
            component = _component_for_span(span.name, detection, memory)
            report.charge(component, self_time, span.name)
            if span.depth == 0:
                intervals.append((span.begin, end))
    report.covered_cycles = min(total_cycles, _interval_union(intervals)) \
        if total_cycles else _interval_union(intervals)

    # -- unit meters: the histograms the hardware models keep ------------
    def metered(component: str, operation: str, count: float,
                cycles: float) -> None:
        if count or cycles:
            report.charge(component, cycles, operation,
                          count=int(count), metered=True)

    ddu_cycles = histograms.get("ddu.cycles")
    if ddu_cycles is not None:
        metered("ddu", "algorithm", counters.get("ddu.invocations", 0),
                ddu_cycles.total)
    dau_cycles = histograms.get("dau.decision_cycles")
    if dau_cycles is not None:
        metered("dau", "decision", counters.get("dau.decisions", 0),
                dau_cycles.total)
    sw_cycles = histograms.get("deadlock.algorithm_cycles")
    if sw_cycles is not None:
        metered("software.pdda" if detection != "software.pdda"
                else detection, "algorithm",
                counters.get("deadlock.invocations", 0), sw_cycles.total)
    lock_latency = histograms.get("lock.acquire_latency")
    if lock_latency is not None:
        metered("locks", "acquire",
                counters.get("lock.acquisitions", 0), lock_latency.total)
    metered("bus", "transaction", counters.get("bus.transactions", 0),
            counters.get("bus.busy_cycles", 0))
    metered("bus", "stall", counters.get("bus.stalled_transactions", 0),
            counters.get("bus.stall_cycles", 0))
    metered("kernel", "context_switch",
            counters.get("kernel.context_switches", 0), 0.0)
    metered("kernel", "preemption",
            counters.get("kernel.preemptions", 0), 0.0)
    metered("sched", "dispatch", counters.get("sched.dispatches", 0), 0.0)
    metered(memory, "malloc",
            counters.get("socdmmu.mallocs", 0)
            + counters.get("heap.mallocs", 0), 0.0)
    metered(memory, "free",
            counters.get("socdmmu.frees", 0)
            + counters.get("heap.frees", 0), 0.0)

    # -- annotations ------------------------------------------------------
    for name, value in counters.items():
        if value and name.startswith(_ANNOTATION_PREFIXES):
            report.counters[name] = value
    return report


def merge_profiles(profiles: Iterable[ProfileReport],
                   label: str = "merged") -> ProfileReport:
    """Sum several profiles into one (a scenario that built N systems)."""
    merged = ProfileReport(label=label, total_cycles=0.0)
    labels = []
    for profile in profiles:
        labels.append(profile.label)
        merged.total_cycles += profile.total_cycles
        merged.covered_cycles += profile.covered_cycles
        merged.wall_seconds += profile.wall_seconds
        merged.events_processed += profile.events_processed
        for component, entry in profile.components.items():
            target = merged.components.setdefault(
                component, {"cycles": 0.0, "operations": {}})
            target["cycles"] += entry["cycles"]
            for op, stats in entry["operations"].items():
                slot = target["operations"].setdefault(
                    op, {"count": 0, "cycles": 0.0})
                slot["count"] += stats["count"]
                slot["cycles"] += stats["cycles"]
        for name, value in profile.counters.items():
            merged.counters[name] = merged.counters.get(name, 0) + value
    merged.meta["merged_from"] = labels
    return merged


def write_profile(path, profile: ProfileReport) -> str:
    """Write one profile as canonical JSON (plus a trailing newline)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(profile.to_json())
        handle.write("\n")
    return str(path)


def read_profile(path) -> ProfileReport:
    """Read a profile written by :func:`write_profile` (or a campaign)."""
    with open(path, "r", encoding="utf-8") as handle:
        return ProfileReport.from_json(handle.read())
