"""Span tracing: nested begin/end intervals per actor.

A *span* covers one service episode — a lock acquire, a resource
request, a malloc — from entry to return, including every cycle the
task spent blocked inside it.  Spans nest per actor (each task keeps
its own stack), so a whole deadlock-resolution episode — an
``acquire`` wrapping a ``request`` wrapping a ``detect`` — reads as
one tree, which is exactly how the Chrome/Perfetto exporter renders it.

The tracer can mirror begin/end pairs into the system's
:class:`repro.sim.trace.Trace` as ``span_begin``/``span_end`` records,
so span boundaries are visible in the flat timeline renderers too.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.errors import SimulationError
from repro.sim.trace import Trace


class Span:
    """One open or completed interval."""

    __slots__ = ("actor", "name", "begin", "end", "depth", "attrs")

    def __init__(self, actor: str, name: str, begin: float, depth: int,
                 attrs: Optional[dict] = None) -> None:
        self.actor = actor
        self.name = name
        self.begin = begin
        self.end: Optional[float] = None
        self.depth = depth
        self.attrs: dict = attrs if attrs is not None else {}

    @property
    def is_open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.begin

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        end = "open" if self.end is None else f"{self.end:g}"
        return (f"<Span {self.actor}/{self.name} "
                f"[{self.begin:g}..{end}] depth={self.depth}>")


class SpanTracer:
    """Per-actor span stacks over a shared clock."""

    def __init__(self, clock: Callable[[], float],
                 trace: Optional[Trace] = None) -> None:
        self._clock = clock
        self._trace = trace
        self._stacks: dict = {}       # actor -> [open spans]
        self.completed: list = []     # in end-time order

    def begin(self, actor: str, name: str,
              attrs: Optional[dict] = None) -> Span:
        stack = self._stacks.setdefault(actor, [])
        span = Span(actor, name, self._clock(), len(stack), attrs)
        stack.append(span)
        if self._trace is not None:
            self._trace.record(span.begin, actor, "span_begin",
                               span=name, depth=span.depth)
        return span

    def end(self, span: Span) -> Span:
        """Close a span.  Closing is lenient: still-open children are
        closed first (a deadlocked task's abandoned generators unwind
        outermost-first at garbage collection), and ending an
        already-closed span is a no-op."""
        if span.end is not None:
            return span
        stack = self._stacks.get(span.actor)
        if stack is None or span not in stack:
            raise SimulationError(
                f"span {span.name!r} of {span.actor!r} was never begun "
                "on this tracer")
        while stack:
            top = stack.pop()
            top.end = self._clock()
            self.completed.append(top)
            if self._trace is not None:
                self._trace.record(top.end, top.actor, "span_end",
                                   span=top.name, depth=top.depth)
            if top is span:
                break
        return span

    # -- queries -----------------------------------------------------------

    def open_spans(self) -> list:
        """Every span still open, across all actors, outermost first."""
        return [span for stack in self._stacks.values()
                for span in stack]

    def all_spans(self) -> list:
        """Completed then open spans (export order)."""
        return self.completed + self.open_spans()

    def actors(self) -> list:
        seen: dict = {}
        for span in self.all_spans():
            seen.setdefault(span.actor, None)
        return list(seen)

    def spans_of(self, actor: str, name: Optional[str] = None) -> list:
        return [span for span in self.all_spans()
                if span.actor == actor
                and (name is None or span.name == name)]

    # -- rendering ---------------------------------------------------------

    def render_tree(self, actors: Optional[Iterable[str]] = None) -> str:
        """Indented per-actor span tree, in begin-time order."""
        chosen = list(actors) if actors is not None else self.actors()
        lines = []
        spans = sorted(self.all_spans(),
                       key=lambda span: (span.begin, span.depth))
        for actor in chosen:
            lines.append(f"{actor}:")
            for span in spans:
                if span.actor != actor:
                    continue
                end = "..." if span.end is None else f"{span.end:g}"
                extras = " ".join(f"{k}={v}" for k, v
                                  in sorted(span.attrs.items()))
                suffix = f" [{extras}]" if extras else ""
                lines.append(f"  {'  ' * span.depth}{span.name} "
                             f"{span.begin:g}..{end}{suffix}")
        return "\n".join(lines) if lines else "(no spans)"


def wrap_generator(tracer: SpanTracer, actor: str, name: str,
                   gen: Any, attrs: Optional[dict] = None):
    """Drive ``gen`` inside a span (service-call instrumentation).

    Returns a generator delegating to ``gen``; the span closes when the
    inner generator returns, raises, or is garbage-collected — so a
    forever-blocked service call shows up as an *open* span rather than
    a lost one only while it is genuinely still pending.
    """
    span = tracer.begin(actor, name, attrs)
    try:
        result = yield from gen
    finally:
        tracer.end(span)
    return result
