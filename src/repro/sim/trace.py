"""Timestamped trace recording.

Every experiment in the paper reports either cycle counts or an event
timeline (Tables 4, 6, 8; Figure 20).  :class:`Trace` collects
``(time, actor, kind, details)`` records during a simulation and offers
filtering plus a plain-text timeline renderer used by the experiment
scripts.
"""

from __future__ import annotations

import json

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One timeline entry."""

    time: float
    actor: str
    kind: str
    details: dict = field(default_factory=dict)

    def describe(self, actor_width: int = 10) -> str:
        """One-line rendering; the actor column is at least
        ``actor_width`` wide and widens for longer names so the kind
        column never collides (``Trace.render`` passes the widest actor
        of the whole selection for global alignment)."""
        width = max(actor_width, len(self.actor))
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        text = f"t={self.time:>8g}  {self.actor:<{width}s} {self.kind}"
        return f"{text} [{extras}]" if extras else text


class Trace:
    """An append-only, queryable event timeline."""

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []

    def record(self, time: float, actor: str, kind: str, **details: Any) -> None:
        self._records.append(TraceRecord(time, actor, kind, dict(details)))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._records[index]

    # -- queries -----------------------------------------------------------

    def filter(self, actor: Optional[str] = None, kind: Optional[str] = None,
               predicate: Optional[Callable[[TraceRecord], bool]] = None,
               ) -> list[TraceRecord]:
        """Records matching every given criterion, in time order."""
        out = []
        for rec in self._records:
            if actor is not None and rec.actor != actor:
                continue
            if kind is not None and rec.kind != kind:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def first(self, kind: str) -> Optional[TraceRecord]:
        for rec in self._records:
            if rec.kind == kind:
                return rec
        return None

    def last(self, kind: str) -> Optional[TraceRecord]:
        for rec in reversed(self._records):
            if rec.kind == kind:
                return rec
        return None

    def count(self, kind: str) -> int:
        return sum(1 for rec in self._records if rec.kind == kind)

    def actors(self) -> list[str]:
        seen: dict[str, None] = {}
        for rec in self._records:
            seen.setdefault(rec.actor, None)
        return list(seen)

    def span(self, kind_start: str, kind_end: str) -> float:
        """Cycles between the first ``kind_start`` and last ``kind_end``."""
        start = self.first(kind_start)
        end = self.last(kind_end)
        if start is None or end is None:
            raise ValueError(
                f"trace lacks {kind_start!r}...{kind_end!r} records")
        return end.time - start.time

    # -- rendering -----------------------------------------------------------

    def render(self, kinds: Optional[Iterable[str]] = None) -> str:
        """Plain-text timeline (one record per line)."""
        wanted = set(kinds) if kinds is not None else None
        chosen = [rec for rec in self._records
                  if wanted is None or rec.kind in wanted]
        width = max((len(rec.actor) for rec in chosen), default=10)
        lines = [rec.describe(actor_width=width) for rec in chosen]
        return "\n".join(lines)

    def gantt(self, actors: Optional[Iterable[str]] = None,
              width: int = 72) -> str:
        """ASCII Gantt chart of ``run``/``block`` intervals per actor.

        Used to render Figure 20-style execution traces.  Expects records
        of kind ``run_start``/``run_end`` and ``block_start``/``block_end``.
        """
        chosen = list(actors) if actors is not None else self.actors()
        if not self._records:
            return "(empty trace)"
        t_end = max(rec.time for rec in self._records)
        t_end = max(t_end, 1)
        scale = width / t_end
        lines = []
        for actor in chosen:
            row = [" "] * width
            self._paint(row, actor, "run_start", "run_end", "#", scale, width)
            self._paint(row, actor, "block_start", "block_end", ".",
                        scale, width)
            lines.append(f"{actor:<10s}|{''.join(row)}|")
        lines.append(f"{'':<10s}0{' ' * (width - len(str(int(t_end))) - 1)}"
                     f"{int(t_end)}")
        return "\n".join(lines)

    def to_csv(self, kinds: Optional[Iterable[str]] = None) -> str:
        """CSV export: time, actor, kind, then sorted detail columns.

        The detail columns are the union across the exported records;
        records lacking a column leave it empty.
        """
        wanted = set(kinds) if kinds is not None else None
        records = [rec for rec in self._records
                   if wanted is None or rec.kind in wanted]
        detail_keys: list[str] = []
        for rec in records:
            for key in sorted(rec.details):
                if key not in detail_keys:
                    detail_keys.append(key)
        header = ["time", "actor", "kind"] + detail_keys
        lines = [",".join(header)]
        for rec in records:
            row = [f"{rec.time:g}", rec.actor, rec.kind]
            row.extend(str(rec.details.get(key, "")) for key in detail_keys)
            lines.append(",".join(cell.replace(",", ";") for cell in row))
        return "\n".join(lines)

    def to_jsonl(self, kinds: Optional[Iterable[str]] = None) -> str:
        """JSONL export: one ``{time, actor, kind, details}`` per line."""
        wanted = set(kinds) if kinds is not None else None
        lines = [json.dumps({"time": rec.time, "actor": rec.actor,
                             "kind": rec.kind, "details": rec.details},
                            sort_keys=True)
                 for rec in self._records
                 if wanted is None or rec.kind in wanted]
        return "\n".join(lines) + ("\n" if lines else "")

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        """Rebuild a trace from :meth:`to_jsonl` output (round-trip)."""
        trace = cls()
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            trace.record(payload["time"], payload["actor"],
                         payload["kind"], **payload.get("details", {}))
        return trace

    def _paint(self, row: list[str], actor: str, start_kind: str,
               end_kind: str, char: str, scale: float, width: int) -> None:
        open_at: Optional[float] = None
        for rec in self._records:
            if rec.actor != actor:
                continue
            if rec.kind == start_kind:
                open_at = rec.time
            elif rec.kind == end_kind and open_at is not None:
                lo = int(open_at * scale)
                hi = max(lo + 1, int(rec.time * scale))
                for i in range(lo, min(hi, width)):
                    row[i] = char
                open_at = None
