"""VCD (Value Change Dump) export of execution traces.

The paper's team watched these executions in an HDL simulator's
waveform viewer; this module renders the same view for ours: each
task/actor becomes a pair of 1-bit signals (``<actor>_run`` and
``<actor>_blocked``) driven from the trace's ``run_start``/``run_end``
and ``block_start``/``block_end`` records, producing a file GTKWave (or
any VCD reader) opens directly.

VCD timescale is derived from the bus clock
(:data:`repro.calibration.BUS_CLOCK_NS` nanoseconds per cycle).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro import calibration
from repro.errors import SimulationError
from repro.sim.trace import Trace

#: VCD identifier characters (printable ASCII, as the spec allows).
_ID_CHARS = ("!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
             "[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~")


def _identifier(index: int) -> str:
    """Short unique VCD identifier for signal number ``index``."""
    chars = []
    index += 1
    while index:
        index, digit = divmod(index - 1, len(_ID_CHARS))
        chars.append(_ID_CHARS[digit])
    return "".join(reversed(chars))


#: (trace kind) -> (signal suffix, value).
_EDGE_MAP = {
    "run_start": ("run", 1),
    "run_end": ("run", 0),
    "block_start": ("blocked", 1),
    "block_end": ("blocked", 0),
}


def trace_to_vcd(trace: Trace, actors: Optional[Iterable[str]] = None,
                 module: str = "mpsoc") -> str:
    """Render run/block activity as a VCD document."""
    chosen = list(actors) if actors is not None else trace.actors()
    if not chosen:
        raise SimulationError("no actors to export")
    signals: dict = {}
    order: list = []
    for actor in chosen:
        for suffix in ("run", "blocked"):
            key = (actor, suffix)
            signals[key] = _identifier(len(order))
            order.append(key)

    lines = [
        "$date repro trace export $end",
        "$version repro.sim.vcd $end",
        f"$timescale {calibration.BUS_CLOCK_NS}ns $end",
        f"$scope module {module} $end",
    ]
    for (actor, suffix), ident in signals.items():
        safe = actor.replace(" ", "_")
        lines.append(f"$var wire 1 {ident} {safe}_{suffix} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")
    lines.append("$dumpvars")
    for ident in signals.values():
        lines.append(f"0{ident}")
    lines.append("$end")

    # Group value changes by timestamp, preserving record order.
    current_time: Optional[float] = None
    for record in trace:
        if record.actor not in chosen or record.kind not in _EDGE_MAP:
            continue
        suffix, value = _EDGE_MAP[record.kind]
        timestamp = int(record.time)
        if timestamp != current_time:
            lines.append(f"#{timestamp}")
            current_time = timestamp
        lines.append(f"{value}{signals[(record.actor, suffix)]}")
    return "\n".join(lines) + "\n"


def write_vcd(trace: Trace, path: str,
              actors: Optional[Iterable[str]] = None) -> str:
    """Write the VCD document to ``path``; returns the path."""
    document = trace_to_vcd(trace, actors=actors)
    with open(path, "w") as handle:
        handle.write(document)
    return path
