"""Discrete-event simulation kernel.

This is the substrate every hardware/RTOS model in the package runs on.
It provides a cycle-granular event queue (:class:`~repro.sim.engine.Engine`),
generator-coroutine processes (:class:`~repro.sim.engine.SimProcess`),
one-shot events, counting resources with pluggable arbitration
(:mod:`repro.sim.process`) and timestamped tracing
(:mod:`repro.sim.trace`).

Processes are plain generator functions.  A process may yield:

* an ``int``/``float`` — advance simulated time by that many cycles;
* a :class:`~repro.sim.engine.SimEvent` — suspend until the event is set
  (the ``yield`` evaluates to the event payload);
* another :class:`~repro.sim.engine.SimProcess` — join it;
* ``None`` — yield the current time slot (resume after pending events).
"""

from repro.sim.engine import Engine, SimEvent, SimProcess
from repro.sim.process import Arbiter, FifoArbiter, PriorityArbiter, SimResource
from repro.sim.trace import Trace, TraceRecord
from repro.sim.vcd import trace_to_vcd, write_vcd

__all__ = [
    "Engine",
    "SimEvent",
    "SimProcess",
    "SimResource",
    "Arbiter",
    "FifoArbiter",
    "PriorityArbiter",
    "Trace",
    "TraceRecord",
    "trace_to_vcd",
    "write_vcd",
]
