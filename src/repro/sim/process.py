"""Shared-resource primitives built on the event engine.

:class:`SimResource` models anything with finite concurrent capacity —
the system bus, a hardware unit's command port, a peripheral.  Waiting
requesters are ordered by a pluggable :class:`Arbiter`, mirroring the
bus-arbiter choice in the paper's MPSoC (Section 5.1).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from repro.errors import SimulationError
from repro.sim.engine import Engine


class Arbiter:
    """Ordering policy for waiting requesters."""

    def push(self, entry: tuple) -> None:
        raise NotImplementedError

    def pop(self) -> tuple:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class FifoArbiter(Arbiter):
    """First-come first-served arbitration."""

    def __init__(self) -> None:
        self._queue: deque[tuple] = deque()

    def push(self, entry: tuple) -> None:
        self._queue.append(entry)

    def pop(self) -> tuple:
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


class PriorityArbiter(Arbiter):
    """Lowest numeric priority value wins; FIFO among equals."""

    def __init__(self) -> None:
        self._queue: list[tuple] = []
        self._counter = 0

    def push(self, entry: tuple) -> None:
        # entry = (priority, requester, event); stable-sort by arrival.
        self._queue.append((entry[0], self._counter) + entry[1:])
        self._counter += 1
        self._queue.sort(key=lambda item: (item[0], item[1]))

    def pop(self) -> tuple:
        prio, _arrival, *rest = self._queue.pop(0)
        return (prio, *rest)

    def __len__(self) -> int:
        return len(self._queue)


class SimResource:
    """A counting resource with arbitration.

    Usage inside a process generator::

        grant = yield from bus.acquire(owner="PE1")
        yield transfer_cycles
        bus.release(owner="PE1")
    """

    def __init__(self, engine: Engine, name: str, capacity: int = 1,
                 arbiter: Optional[Arbiter] = None) -> None:
        if capacity < 1:
            raise SimulationError(f"resource {name!r}: capacity must be >= 1")
        self.engine = engine
        self.name = name
        self.capacity = capacity
        self._arbiter = arbiter if arbiter is not None else FifoArbiter()
        self._holders: list[Any] = []

    @property
    def holders(self) -> tuple:
        return tuple(self._holders)

    @property
    def queue_length(self) -> int:
        return len(self._arbiter)

    def acquire(self, owner: Any, priority: int = 0,
                ) -> Generator[Any, Any, Any]:
        """Generator sub-protocol: suspend until the resource is granted."""
        if len(self._holders) < self.capacity and len(self._arbiter) == 0:
            self._holders.append(owner)
            return owner
        grant = self.engine.event(name=f"{self.name}.grant")
        self._arbiter.push((priority, owner, grant))
        yield grant
        return owner

    def release(self, owner: Any) -> None:
        """Release one unit held by ``owner``; hand off to the arbiter."""
        try:
            self._holders.remove(owner)
        except ValueError:
            raise SimulationError(
                f"{owner!r} released {self.name!r} without holding it"
            ) from None
        if len(self._arbiter) and len(self._holders) < self.capacity:
            _prio, next_owner, grant = self._arbiter.pop()
            self._holders.append(next_owner)
            grant.set(next_owner)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<SimResource {self.name!r} holders={self._holders} "
                f"waiting={len(self._arbiter)}>")
