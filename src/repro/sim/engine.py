"""Event queue, one-shot events and generator-coroutine processes."""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

#: Type of the generators that implement simulation processes.
ProcessGenerator = Generator[Any, Any, Any]


class SimEvent:
    """A one-shot event processes can wait on.

    ``set(payload)`` wakes every waiter; late waiters resume immediately
    with the same payload.  Setting an event twice is an error — reuse
    requires a fresh event, which keeps causality easy to reason about.
    """

    __slots__ = ("engine", "name", "_payload", "_is_set", "_waiters")

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._payload: Any = None
        self._is_set = False
        self._waiters: list[SimProcess] = []

    @property
    def is_set(self) -> bool:
        return self._is_set

    @property
    def payload(self) -> Any:
        return self._payload

    def set(self, payload: Any = None) -> None:
        """Fire the event, waking all waiting processes this cycle."""
        if self._is_set:
            raise SimulationError(f"event {self.name!r} set twice")
        self._is_set = True
        self._payload = payload
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.engine.schedule(0, proc._resume, payload)

    def _add_waiter(self, proc: "SimProcess") -> None:
        if self._is_set:
            self.engine.schedule(0, proc._resume, self._payload)
        else:
            self._waiters.append(proc)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "set" if self._is_set else "pending"
        return f"<SimEvent {self.name!r} {state}>"


class SimProcess:
    """Drives one generator coroutine inside an :class:`Engine`."""

    __slots__ = ("engine", "name", "_gen", "_done", "_result", "_failure")

    def __init__(self, engine: "Engine", gen: ProcessGenerator, name: str) -> None:
        self.engine = engine
        self.name = name
        self._gen = gen
        self._done = SimEvent(engine, name=f"{name}.done")
        self._result: Any = None
        self._failure: Optional[BaseException] = None

    @property
    def is_alive(self) -> bool:
        return not self._done.is_set

    @property
    def result(self) -> Any:
        """Return value of the generator; raises if it failed."""
        if self.is_alive:
            raise SimulationError(f"process {self.name!r} still running")
        if self._failure is not None:
            raise self._failure
        return self._result

    @property
    def done_event(self) -> SimEvent:
        return self._done

    def _resume(self, value: Any = None) -> None:
        if not self.is_alive:
            return
        try:
            command = self._gen.send(value)
        except StopIteration as stop:
            self._result = stop.value
            self._done.set(stop.value)
            return
        except BaseException as exc:  # propagate at Engine.run()
            self._failure = exc
            self._done.set(None)
            self.engine._report_failure(self, exc)
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if command is None:
            self.engine.schedule(0, self._resume, None)
        elif isinstance(command, (int, float)):
            if command < 0:
                self._fail(SimulationError(
                    f"process {self.name!r} yielded negative delay {command}"))
                return
            self.engine.schedule(command, self._resume, None)
        elif isinstance(command, SimEvent):
            command._add_waiter(self)
        elif isinstance(command, SimProcess):
            command._done._add_waiter(self)
        else:
            self._fail(SimulationError(
                f"process {self.name!r} yielded unsupported command "
                f"{command!r}"))

    def _fail(self, exc: BaseException) -> None:
        self._failure = exc
        self._done.set(None)
        self.engine._report_failure(self, exc)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.is_alive else "done"
        return f"<SimProcess {self.name!r} {state}>"


class Engine:
    """Cycle-granular discrete-event scheduler.

    Time is an integer or float cycle count starting at zero.  Events at
    the same timestamp run in scheduling order (FIFO), which makes
    same-cycle hardware sequencing deterministic.
    """

    def __init__(self) -> None:
        self.now: float = 0
        self._queue: list[tuple[float, int, Callable[..., None], tuple]] = []
        self._sequence = itertools.count()
        self._processes: list[SimProcess] = []
        self._failures: list[tuple[SimProcess, BaseException]] = []
        #: Events dispatched over the engine's lifetime (always on; the
        #: count is accumulated per run() call, not per event).
        self.events_processed = 0
        #: When True, run() also accrues host wall-clock time so
        #: profile_stats() can report wall time per simulated cycle.
        self.profiling = False
        self.wall_seconds = 0.0
        #: Back-reference set by the first Observability built on this
        #: engine; profile_report() folds its spans and counters.
        self.obs: Optional[Any] = None

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` cycles."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        heapq.heappush(
            self._queue, (self.now + delay, next(self._sequence), fn, args))

    def event(self, name: str = "") -> SimEvent:
        return SimEvent(self, name=name)

    def spawn(self, gen: ProcessGenerator, name: str = "proc") -> SimProcess:
        """Register a generator as a process; it starts on the next tick."""
        proc = SimProcess(self, gen, name)
        self._processes.append(proc)
        self.schedule(0, proc._resume, None)
        return proc

    # -- execution ---------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: int = 10_000_000) -> float:
        """Drain the event queue; return the final simulated time.

        ``until`` bounds simulated time; ``max_events`` bounds work so a
        livelocked model fails loudly instead of spinning forever.
        """
        events_run = 0
        started_wall = time.perf_counter() if self.profiling else None
        try:
            while self._queue:
                when, _seq, fn, args = self._queue[0]
                if until is not None and when > until:
                    self.now = until
                    break
                heapq.heappop(self._queue)
                self.now = when
                fn(*args)
                self._raise_failures()
                events_run += 1
                if events_run > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events at t={self.now}; "
                        "model is probably livelocked")
        finally:
            self.events_processed += events_run
            if started_wall is not None:
                self.wall_seconds += time.perf_counter() - started_wall
        return self.now

    def profile_stats(self) -> dict:
        """Profiling summary: event and wall-time accounting.

        ``wall_seconds`` (and the derived per-cycle/per-event rates) are
        only meaningful when :attr:`profiling` was on during run().
        """
        cycles = self.now
        return {
            "events_processed": self.events_processed,
            "sim_cycles": cycles,
            "wall_seconds": self.wall_seconds,
            "events_per_cycle": (self.events_processed / cycles
                                 if cycles else 0.0),
            "wall_us_per_cycle": (self.wall_seconds * 1e6 / cycles
                                  if cycles else 0.0),
        }

    def profile_report(self, label: Optional[str] = None):
        """Cycle-attribution profile for this engine's observability.

        Requires an :class:`~repro.obs.Observability` to have been
        built on this engine (``MPSoC`` does this automatically); the
        returned :class:`~repro.obs.profile.ProfileReport` attributes
        ``self.now`` simulated cycles to named components.
        """
        if self.obs is None:
            raise SimulationError(
                "engine has no Observability attached; build one with "
                "Observability(engine=engine) before profiling")
        from repro.obs.profile import build_profile
        return build_profile(self.obs, label=label)

    def run_until_complete(self, procs: Iterable[SimProcess],
                           until: Optional[float] = None) -> float:
        """Run until every process in ``procs`` has finished."""
        procs = list(procs)
        final = self.run(until=until)
        still_running = [p.name for p in procs if p.is_alive]
        if still_running:
            raise SimulationError(
                f"processes never finished: {still_running} (t={final})")
        return final

    # -- checkpoint protocol -------------------------------------------------

    SNAPSHOT_KIND = "sim.engine"

    def is_quiescent(self) -> bool:
        """True when nothing is pending: empty queue, no live process.

        Generator coroutines cannot be serialised, so the engine is
        snapshottable only between runs — at a *yield point* where every
        process has either finished or not yet been spawned.  All the
        experiment drivers and campaign checkers reach this state at the
        end of every run()/run_until_complete() call.
        """
        return not self._queue and not any(p.is_alive for p in self._processes)

    def snapshot_state(self) -> dict:
        """Versioned, hashed snapshot of the engine clock and counters.

        Raises :class:`~repro.errors.CheckpointError` when the engine is
        not quiescent (see :meth:`is_quiescent`): in-flight coroutines
        are replayed — not serialised — by the layers above (the
        campaign journal plus deterministic seed derivation).
        """
        from repro.checkpoint.protocol import snapshot_envelope
        from repro.errors import CheckpointError
        if not self.is_quiescent():
            alive = [p.name for p in self._processes if p.is_alive]
            raise CheckpointError(
                f"engine not quiescent: {len(self._queue)} queued event(s), "
                f"live processes {alive}; snapshot at a yield point "
                "(after run() drains)")
        return snapshot_envelope(self.SNAPSHOT_KIND, {
            "now": self.now,
            "events_processed": self.events_processed,
            "completed_processes": sorted(p.name for p in self._processes),
        })

    @classmethod
    def restore_state(cls, envelope: dict) -> "Engine":
        """A fresh engine resumed at the snapshot's clock and counters.

        The completed-process census is restored as bookkeeping only;
        new work is spawned onto the restored engine as usual.
        """
        engine = cls()
        engine.apply_snapshot(envelope)
        return engine

    def apply_snapshot(self, envelope: dict) -> None:
        """Apply a snapshot onto this (fresh, quiescent) engine in place.

        Used when the engine is owned by a larger object — the kernel
        restores its MPSoC's engine without replacing the instance every
        other component already holds a reference to.
        """
        from repro.checkpoint.protocol import open_envelope
        from repro.errors import CheckpointError
        state = open_envelope(envelope, kind=self.SNAPSHOT_KIND)
        if not self.is_quiescent():
            raise CheckpointError(
                "cannot apply a snapshot onto a non-quiescent engine")
        self.now = state["now"]
        self.events_processed = state["events_processed"]
        for name in state["completed_processes"]:
            proc = SimProcess(self, iter(()), name)
            proc._done._is_set = True
            self._processes.append(proc)

    # -- failure propagation ------------------------------------------------

    def _report_failure(self, proc: SimProcess, exc: BaseException) -> None:
        self._failures.append((proc, exc))

    def _raise_failures(self) -> None:
        if not self._failures:
            return
        proc, exc = self._failures[0]
        self._failures.clear()
        raise SimulationError(
            f"process {proc.name!r} failed at t={self.now}") from exc
