"""The shared system bus with arbitration (Section 5.1).

One transaction holds the bus for ``first-word + (words - 1) * burst``
cycles: 3 cycles including arbitration for the first word, then 1 cycle
per successive burst word (Section 5.5).  Masters contend through a
pluggable arbiter (FIFO by default, as in the base system).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro import calibration
from repro.errors import BusError, ConfigurationError
from repro.obs import NULL_OBS, Observability
from repro.sim.engine import Engine
from repro.sim.process import Arbiter, SimResource


@dataclass(frozen=True)
class BusTiming:
    """Cycle cost parameters of one bus."""

    first_word_cycles: int = calibration.MEM_FIRST_WORD_CYCLES
    burst_word_cycles: int = calibration.MEM_BURST_WORD_CYCLES

    def transaction_cycles(self, words: int) -> int:
        if words < 1:
            raise ConfigurationError("a transaction moves at least one word")
        return (self.first_word_cycles
                + (words - 1) * self.burst_word_cycles)


class SystemBus:
    """A single shared bus: masters acquire, transfer, release.

    Statistics (``total_transactions``, ``busy_cycles``,
    ``contention_cycles``) feed the experiment reports.
    """

    def __init__(self, engine: Engine, name: str = "bus",
                 timing: Optional[BusTiming] = None,
                 arbiter: Optional[Arbiter] = None,
                 obs: Optional[Observability] = None) -> None:
        self.engine = engine
        self.name = name
        self.timing = timing if timing is not None else BusTiming()
        self._port = SimResource(engine, f"{name}.port", capacity=1,
                                 arbiter=arbiter)
        self.total_transactions = 0
        self.busy_cycles = 0
        self.contention_cycles = 0.0
        #: Fault injector hook (:mod:`repro.faults`); the site is the
        #: bus name under the ``bus.`` prefix.
        self.faults = None
        self.fault_site = (name if name.startswith("bus.")
                           else f"bus.{name}")
        self.error_transactions = 0
        self.obs = obs if obs is not None else NULL_OBS
        metrics = self.obs.metrics
        self._m_transactions = metrics.counter(
            f"{name}.transactions", "completed bus transactions")
        self._m_busy = metrics.counter(
            f"{name}.busy_cycles", "cycles the bus spent transferring")
        self._m_stall_cycles = metrics.counter(
            f"{name}.stall_cycles", "cycles masters waited at the arbiter")
        self._m_stalled = metrics.counter(
            f"{name}.stalled_transactions",
            "transactions that waited for the bus")

    def transaction(self, master: str, words: int = 1,
                    priority: int = 0) -> Generator:
        """Perform one bus transaction; suspends for its full duration."""
        cost = self.timing.transaction_cycles(words)
        error = False
        if self.faults is not None:
            for spec in self.faults.fire(self.fault_site, key=master):
                if spec.kind == "timeout":
                    # The slave answers late: the bus is held for the
                    # extra wait states, then the transfer completes.
                    cost += int(spec.params.get("extra_cycles", 16))
                elif spec.kind == "error":
                    error = True
        requested_at = self.engine.now
        yield from self._port.acquire(master, priority=priority)
        waited = self.engine.now - requested_at
        self.contention_cycles += waited
        yield cost
        self._port.release(master)
        self.total_transactions += 1
        self.busy_cycles += cost
        if self.obs.enabled:
            self._m_transactions.inc()
            self._m_busy.inc(cost)
            if waited > 0:
                self._m_stall_cycles.inc(waited)
                self._m_stalled.inc()
        if error:
            # An ERROR response still occupied the bus for the full
            # transfer; the master decides whether to retry.
            self.error_transactions += 1
            raise BusError(f"{self.name}: error response to {master}")

    def read_word(self, master: str, priority: int = 0) -> Generator:
        """Single-word read (e.g. polling a unit's status register)."""
        yield from self.transaction(master, words=1, priority=priority)

    def write_word(self, master: str, priority: int = 0) -> Generator:
        """Single-word write (e.g. a command to a hardware unit)."""
        yield from self.transaction(master, words=1, priority=priority)

    def burst(self, master: str,
              words: int = calibration.DEFAULT_BURST_WORDS,
              priority: int = 0) -> Generator:
        """Cache-line sized burst transaction."""
        yield from self.transaction(master, words=words, priority=priority)

    @property
    def utilization(self) -> float:
        """Fraction of elapsed simulated time the bus was transferring."""
        if self.engine.now == 0:
            return 0.0
        return self.busy_cycles / self.engine.now
