"""Processing-element model (MPC755-class, Section 5.1).

The paper's PEs are instruction-accurate MPC755 simulators; what the
experiments consume is *cycle counts*, so the model here is a cycle
accumulator: local compute burns PE-private cycles (L1-resident work),
and shared accesses go through the bus.  Each PE tracks busy/idle
statistics for the reports.
"""

from __future__ import annotations

from typing import Generator

from repro.errors import ConfigurationError
from repro.mpsoc.bus import SystemBus
from repro.mpsoc.cache import L1Cache
from repro.sim.engine import Engine


class ProcessingElement:
    """One PE: a named cycle sink with a bus port and L1 caches."""

    def __init__(self, engine: Engine, bus: SystemBus, name: str,
                 l1_icache_kb: int = 32, l1_dcache_kb: int = 32) -> None:
        if l1_icache_kb <= 0 or l1_dcache_kb <= 0:
            raise ConfigurationError("cache sizes must be positive")
        self.engine = engine
        self.bus = bus
        self.name = name
        self.l1_icache_kb = l1_icache_kb
        self.l1_dcache_kb = l1_dcache_kb
        self.dcache = L1Cache(bus, f"{name}.D", size_kb=l1_dcache_kb)
        self.icache = L1Cache(bus, f"{name}.I", size_kb=l1_icache_kb)
        self.busy_cycles = 0.0
        self.bus_accesses = 0

    def execute(self, cycles: float) -> Generator:
        """Local (L1-resident) computation: no bus traffic."""
        if cycles < 0:
            raise ConfigurationError("negative compute time")
        self.busy_cycles += cycles
        yield cycles

    def bus_read(self, priority: int = 0) -> Generator:
        """Single-word read on the shared bus."""
        self.bus_accesses += 1
        yield from self.bus.read_word(self.name, priority=priority)

    def bus_write(self, priority: int = 0) -> Generator:
        """Single-word write on the shared bus."""
        self.bus_accesses += 1
        yield from self.bus.write_word(self.name, priority=priority)

    def bus_burst(self, words: int = 8, priority: int = 0) -> Generator:
        """Cache-line burst on the shared bus."""
        self.bus_accesses += 1
        yield from self.bus.burst(self.name, words=words, priority=priority)

    def data_access(self, address: int, write: bool = False) -> Generator:
        """A load/store through the L1 data cache; returns True on hit."""
        hit = yield from self.dcache.access(address, write=write)
        if not hit:
            self.bus_accesses += 1
        return hit

    @property
    def utilization(self) -> float:
        if self.engine.now == 0:
            return 0.0
        return self.busy_cycles / self.engine.now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PE {self.name} busy={self.busy_cycles}>"
