"""DMA controller (the kind of IP core the paper's MPSoC integrates).

Section 3.1 names "direct memory access hardware" as one of the custom
resources embedded systems already share.  The controller owns a set of
channels; a PE programs a channel (source, destination, length) and
either polls or sleeps until the completion interrupt.  Transfers move
cache-line bursts over the shared bus, so DMA traffic genuinely
contends with the PEs — which is what makes the DMA a shareable,
deadlock-relevant resource.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.mpsoc.bus import SystemBus
from repro.mpsoc.interrupt import InterruptController
from repro.sim.engine import Engine, SimEvent


@dataclass
class DMATransfer:
    """One programmed transfer."""

    channel: int
    owner: str
    source: int
    destination: int
    words: int
    programmed_at: float
    completed_at: Optional[float] = None

    @property
    def done(self) -> bool:
        return self.completed_at is not None


class DMAChannel:
    __slots__ = ("index", "busy", "transfer", "_done_event")

    def __init__(self, index: int) -> None:
        self.index = index
        self.busy = False
        self.transfer: Optional[DMATransfer] = None
        self._done_event: Optional[SimEvent] = None


class DMAController:
    """Multi-channel DMA engine with burst-granular bus usage."""

    def __init__(self, engine: Engine, bus: SystemBus,
                 interrupts: Optional[InterruptController] = None,
                 num_channels: int = 2, burst_words: int = 8,
                 setup_cycles: int = 12,
                 irq_line: str = "irq.DMA") -> None:
        if num_channels < 1:
            raise ConfigurationError("need at least one DMA channel")
        if burst_words < 1:
            raise ConfigurationError("burst must move at least one word")
        self.engine = engine
        self.bus = bus
        self.interrupts = interrupts
        self.irq_line = irq_line
        if interrupts is not None and irq_line not in interrupts.lines:
            interrupts.add_line(irq_line)
        self.burst_words = burst_words
        self.setup_cycles = setup_cycles
        self.channels = [DMAChannel(i) for i in range(num_channels)]
        self.transfers: list = []

    # -- channel allocation -------------------------------------------------------

    def idle_channel(self) -> Optional[DMAChannel]:
        for channel in self.channels:
            if not channel.busy:
                return channel
        return None

    @property
    def busy_channels(self) -> int:
        return sum(1 for channel in self.channels if channel.busy)

    # -- programming ---------------------------------------------------------------

    def start(self, owner: str, source: int, destination: int,
              words: int) -> DMATransfer:
        """Program an idle channel; the transfer runs in the background.

        Returns the transfer record; wait on it with :meth:`wait`.
        """
        if words < 1:
            raise ConfigurationError("transfer must move at least a word")
        channel = self.idle_channel()
        if channel is None:
            raise SimulationError("all DMA channels busy")
        transfer = DMATransfer(channel=channel.index, owner=owner,
                               source=source, destination=destination,
                               words=words,
                               programmed_at=self.engine.now)
        channel.busy = True
        channel.transfer = transfer
        channel._done_event = self.engine.event(
            name=f"dma.ch{channel.index}.done")
        self.transfers.append(transfer)
        self.engine.spawn(self._run(channel), name=f"dma.ch{channel.index}")
        return transfer

    def _run(self, channel: DMAChannel) -> Generator:
        transfer = channel.transfer
        assert transfer is not None
        yield self.setup_cycles
        remaining = transfer.words
        while remaining > 0:
            chunk = min(remaining, self.burst_words)
            # Read burst + write burst per chunk.
            yield from self.bus.transaction(f"DMA{channel.index}",
                                            words=chunk)
            yield from self.bus.transaction(f"DMA{channel.index}",
                                            words=chunk)
            remaining -= chunk
        transfer.completed_at = self.engine.now
        channel.busy = False
        event, channel._done_event = channel._done_event, None
        channel.transfer = None
        if event is not None:
            event.set(transfer)
        if self.interrupts is not None:
            self.interrupts.raise_irq(self.irq_line, payload=transfer)

    # -- waiting --------------------------------------------------------------------

    def wait(self, transfer: DMATransfer) -> Generator:
        """Suspend until the given transfer completes."""
        if transfer.done:
            return transfer
        channel = self.channels[transfer.channel]
        if channel.transfer is not transfer or channel._done_event is None:
            # Completed between the check and now.
            return transfer
        result = yield channel._done_event
        return result
