"""Interrupt controller for the base MPSoC (Section 5.1).

Peripherals and hardware RTOS units raise interrupt lines; PEs (or the
kernel on their behalf) wait on a line.  Each ``raise_irq`` wakes every
waiter registered at that moment — a level-triggered simplification
sufficient for the lock-handoff and resource-grant notifications the
experiments need.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import ConfigurationError
from repro.sim.engine import Engine, SimEvent


class InterruptController:
    """Named interrupt lines with waitable delivery."""

    def __init__(self, engine: Engine, lines: tuple = ()) -> None:
        self.engine = engine
        self._waiters: dict[str, list[SimEvent]] = {
            line: [] for line in lines}
        self.raised_counts: dict[str, int] = {line: 0 for line in lines}

    def add_line(self, line: str) -> None:
        if line in self._waiters:
            raise ConfigurationError(f"interrupt line {line!r} exists")
        self._waiters[line] = []
        self.raised_counts[line] = 0

    @property
    def lines(self) -> tuple:
        return tuple(self._waiters)

    def raise_irq(self, line: str, payload: Any = None) -> None:
        """Fire a line; wakes everyone currently waiting on it."""
        if line not in self._waiters:
            raise ConfigurationError(f"unknown interrupt line {line!r}")
        self.raised_counts[line] += 1
        waiters, self._waiters[line] = self._waiters[line], []
        for event in waiters:
            event.set(payload)

    def wait_irq(self, line: str) -> Generator:
        """Suspend until the line fires; returns the payload."""
        if line not in self._waiters:
            raise ConfigurationError(f"unknown interrupt line {line!r}")
        event = self.engine.event(name=f"irq.{line}")
        self._waiters[line].append(event)
        payload = yield event
        return payload
