"""L1 cache model for the processing elements (Section 5.1).

Each MPC755-class PE has separate 32 KB instruction and data L1 caches.
The experiments only see cache behaviour through its cycle cost — a hit
stays on-PE, a miss burns a bus burst for the line fill — so the model
is a set-associative LRU tag store with a write-through, write-allocate
policy (stores also post a single-word bus write, the traffic the SoCLC
discussion cares about).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Generator

from repro.errors import ConfigurationError
from repro.mpsoc.bus import SystemBus


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    write_throughs: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class L1Cache:
    """Set-associative LRU cache with cycle-costed accesses."""

    def __init__(self, bus: SystemBus, owner: str, size_kb: int = 32,
                 line_bytes: int = 32, associativity: int = 4,
                 hit_cycles: int = 1) -> None:
        if size_kb <= 0 or line_bytes <= 0 or associativity <= 0:
            raise ConfigurationError("cache geometry must be positive")
        size_bytes = size_kb * 1024
        if size_bytes % (line_bytes * associativity):
            raise ConfigurationError(
                "cache size must divide into line_bytes * associativity")
        self.bus = bus
        self.owner = owner
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.num_sets = size_bytes // (line_bytes * associativity)
        self.hit_cycles = hit_cycles
        self.line_words = line_bytes // 4
        # One LRU-ordered tag store per set: OrderedDict tag -> None,
        # most recently used last.
        self._sets: list = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = CacheStats()

    # -- geometry --------------------------------------------------------------

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def contains(self, address: int) -> bool:
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    @property
    def resident_lines(self) -> int:
        return sum(len(tags) for tags in self._sets)

    # -- accesses ---------------------------------------------------------------

    def access(self, address: int, write: bool = False) -> Generator:
        """One load/store; returns True on hit.

        A miss fills the line over the bus (one burst of
        ``line_words``); a store additionally posts a write-through
        word regardless of hit/miss.
        """
        if address < 0:
            raise ConfigurationError("negative address")
        set_index, tag = self._locate(address)
        tags = self._sets[set_index]
        if tag in tags:
            tags.move_to_end(tag)
            self.stats.hits += 1
            hit = True
            yield self.hit_cycles
        else:
            self.stats.misses += 1
            hit = False
            yield from self.bus.transaction(self.owner,
                                            words=self.line_words)
            if len(tags) >= self.associativity:
                tags.popitem(last=False)       # evict LRU
                self.stats.evictions += 1
            tags[tag] = None
        if write:
            self.stats.write_throughs += 1
            yield from self.bus.write_word(self.owner)
        return hit

    def flush(self) -> None:
        """Invalidate every line (e.g. on a context's address-space
        change)."""
        for tags in self._sets:
            tags.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<L1Cache {self.owner} {self.num_sets}x"
                f"{self.associativity} lines={self.resident_lines}>")
