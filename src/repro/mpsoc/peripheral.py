"""Peripheral resources of the base MPSoC (Sections 3.2.2 and 5.1).

The four resources — a Video Interface (VI), an MPEG/IDCT unit, a DSP
and a Wireless Interface (WI) — are the ``q1..q4`` of the deadlock
experiments.  Each has a service-time model, a timer, and an interrupt
generator, matching the paper's description ("these four resources have
timers, interrupt generators and input/output ports").

Mutual exclusion on a peripheral is *not* enforced here: ownership is
the job of the deadlock-managed resource layer
(:mod:`repro.rtos.resources`); the peripheral checks that callers only
use it while they are the registered owner, which catches protocol bugs
in the layers above.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.errors import ResourceProtocolError
from repro.mpsoc.interrupt import InterruptController
from repro.sim.engine import Engine


class Peripheral:
    """One hardware resource with a service-time model."""

    def __init__(self, engine: Engine, name: str,
                 interrupt_controller: Optional[InterruptController] = None,
                 irq_line: Optional[str] = None) -> None:
        self.engine = engine
        self.name = name
        self.interrupts = interrupt_controller
        self.irq_line = irq_line
        if self.interrupts is not None and irq_line is not None:
            if irq_line not in self.interrupts.lines:
                self.interrupts.add_line(irq_line)
        self.owner: Optional[str] = None
        self.busy_cycles = 0.0
        self.service_count = 0

    # -- ownership (driven by the resource-management layer) -------------------

    def assign(self, owner: str) -> None:
        if self.owner is not None:
            raise ResourceProtocolError(
                f"{self.name} assigned to {owner} while owned by "
                f"{self.owner}")
        self.owner = owner

    def unassign(self, owner: str) -> None:
        if self.owner != owner:
            raise ResourceProtocolError(
                f"{owner} unassigned {self.name} owned by {self.owner}")
        self.owner = None

    # -- service ------------------------------------------------------------

    def serve(self, owner: str, cycles: float,
              raise_irq_when_done: bool = False) -> Generator:
        """Run the device for ``cycles`` on behalf of ``owner``."""
        if self.owner != owner:
            raise ResourceProtocolError(
                f"{owner} used {self.name} without owning it "
                f"(owner={self.owner})")
        if cycles < 0:
            raise ResourceProtocolError("negative service time")
        yield cycles
        self.busy_cycles += cycles
        self.service_count += 1
        if raise_irq_when_done and self.interrupts and self.irq_line:
            self.interrupts.raise_irq(self.irq_line, payload=self.name)

    @property
    def utilization(self) -> float:
        if self.engine.now == 0:
            return 0.0
        return self.busy_cycles / self.engine.now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Peripheral {self.name} owner={self.owner}>"
