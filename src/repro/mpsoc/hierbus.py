"""Runtime hierarchical bus (the bus-generation line of work, [7-9]).

:mod:`repro.framework.busgen` emits the HDL for a hierarchical bus; this
module is its *simulatable* counterpart: per-subsystem local buses plus
one global bus behind bridges.  A local transaction costs only local
cycles; a global transaction pays the local bus, the bridge forwarding
latency, and the global bus — so traffic that stays inside a subsystem
never contends with the other subsystems, which is the whole point of
the hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.errors import ConfigurationError
from repro.mpsoc.bus import BusTiming, SystemBus
from repro.obs import NULL_OBS, Observability
from repro.sim.engine import Engine


@dataclass
class BridgeStats:
    forwarded: int = 0
    forward_cycles: float = 0.0


class BusBridge:
    """Connects one local bus to the global bus."""

    def __init__(self, engine: Engine, name: str, local: SystemBus,
                 global_bus: SystemBus, forward_cycles: int = 2,
                 obs: Optional[Observability] = None) -> None:
        if forward_cycles < 0:
            raise ConfigurationError("negative bridge latency")
        self.engine = engine
        self.name = name
        self.local = local
        self.global_bus = global_bus
        self.forward_cycles = forward_cycles
        self.stats = BridgeStats()
        self.obs = obs if obs is not None else NULL_OBS
        self._m_forwarded = self.obs.metrics.counter(
            f"{name}.forwarded", "transactions crossing this bridge")

    def forward(self, master: str, words: int) -> Generator:
        """A local master's transaction to a global target."""
        # Occupy the local bus for the request phase, cross the bridge,
        # then perform the global transaction.
        yield from self.local.transaction(master, words=1)
        yield self.forward_cycles
        yield from self.global_bus.transaction(f"{self.name}:{master}",
                                               words=words)
        self.stats.forwarded += 1
        self.stats.forward_cycles += self.forward_cycles
        if self.obs.enabled:
            self._m_forwarded.inc()


class BridgedBusPort:
    """A master port on a local bus with bridged global access.

    Exposes the :class:`~repro.mpsoc.bus.SystemBus` surface the rest of
    the stack uses, so a :class:`~repro.mpsoc.processor.ProcessingElement`
    can be constructed over it unchanged.  Plain transactions (memory,
    memory-mapped units) are *global* — they pay local + bridge +
    global; :meth:`local_transaction` stays inside the subsystem.
    """

    def __init__(self, hier: "HierarchicalBus", subsystem: int) -> None:
        self.hier = hier
        self.subsystem = subsystem
        self.local = hier.subsystem(subsystem)
        self.timing = hier.global_bus.timing

    def transaction(self, master: str, words: int = 1,
                    priority: int = 0) -> Generator:
        yield from self.hier.global_transaction(self.subsystem, master,
                                                words=words)

    def read_word(self, master: str, priority: int = 0) -> Generator:
        yield from self.transaction(master, words=1)

    def write_word(self, master: str, priority: int = 0) -> Generator:
        yield from self.transaction(master, words=1)

    def burst(self, master: str, words: int = 8,
              priority: int = 0) -> Generator:
        yield from self.transaction(master, words=words)

    def local_transaction(self, master: str, words: int = 1) -> Generator:
        """Subsystem-local traffic: never touches the global bus."""
        yield from self.local.transaction(master, words=words)

    @property
    def total_transactions(self) -> int:
        return self.local.total_transactions

    @property
    def utilization(self) -> float:
        return self.local.utilization


class HierarchicalBus:
    """N local buses bridged onto one global bus."""

    def __init__(self, engine: Engine, num_subsystems: int = 2,
                 local_timing: BusTiming = None,
                 global_timing: BusTiming = None,
                 bridge_cycles: int = 2,
                 obs: Optional[Observability] = None) -> None:
        if num_subsystems < 1:
            raise ConfigurationError("need at least one subsystem")
        self.engine = engine
        self.obs = obs if obs is not None else NULL_OBS
        self.global_bus = SystemBus(engine, name="bus.global",
                                    timing=global_timing, obs=self.obs)
        self.locals: list = []
        self.bridges: list = []
        for index in range(num_subsystems):
            local = SystemBus(engine, name=f"bus.local{index + 1}",
                              timing=local_timing, obs=self.obs)
            self.locals.append(local)
            self.bridges.append(BusBridge(
                engine, f"bridge{index + 1}", local, self.global_bus,
                forward_cycles=bridge_cycles, obs=self.obs))

    def install_faults(self, injector) -> None:
        """Share one fault injector across the global and local buses."""
        self.global_bus.faults = injector
        for local in self.locals:
            local.faults = injector

    def subsystem(self, index: int) -> SystemBus:
        try:
            return self.locals[index]
        except IndexError:
            raise ConfigurationError(
                f"no subsystem {index} (have {len(self.locals)})") from None

    def local_transaction(self, subsystem: int, master: str,
                          words: int = 1) -> Generator:
        """Traffic that stays inside one subsystem."""
        yield from self.subsystem(subsystem).transaction(master,
                                                         words=words)

    def global_transaction(self, subsystem: int, master: str,
                           words: int = 1) -> Generator:
        """Traffic that crosses the bridge to a global target."""
        bridge = self.bridges[subsystem]
        yield from bridge.forward(master, words)

    @property
    def global_utilization(self) -> float:
        return self.global_bus.utilization
