"""Shared L2 memory and its controller (Section 2.1).

:class:`SharedMemory` is word-addressable storage with simple bounds
checking — enough to back the RTOS's shared kernel structures and the
SoCDMMU's block map.  :class:`MemoryController` pairs the storage with
the bus so accesses cost real cycles.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.mpsoc.bus import SystemBus

WORD_BYTES = 4


class SharedMemory:
    """Word-addressable shared memory (default 16 MB, Section 5.1)."""

    def __init__(self, size_bytes: int = 16 * 1024 * 1024) -> None:
        if size_bytes <= 0 or size_bytes % WORD_BYTES:
            raise ConfigurationError("memory size must be a positive "
                                     "multiple of the word size")
        self.size_bytes = size_bytes
        self.num_words = size_bytes // WORD_BYTES
        self._words: dict[int, int] = {}

    def _check(self, word_address: int) -> None:
        if not 0 <= word_address < self.num_words:
            raise SimulationError(
                f"address {word_address} outside memory "
                f"(0..{self.num_words - 1})")

    def peek(self, word_address: int) -> int:
        """Zero-time debug read (no bus cycles)."""
        self._check(word_address)
        return self._words.get(word_address, 0)

    def poke(self, word_address: int, value: int) -> None:
        """Zero-time debug write (no bus cycles)."""
        self._check(word_address)
        if value:
            self._words[word_address] = value
        else:
            self._words.pop(word_address, None)


class MemoryController:
    """Front-end that charges bus cycles for memory traffic."""

    def __init__(self, bus: SystemBus, memory: Optional[SharedMemory] = None
                 ) -> None:
        self.bus = bus
        self.memory = memory if memory is not None else SharedMemory()
        self.reads = 0
        self.writes = 0

    def read(self, master: str, word_address: int,
             priority: int = 0) -> Generator:
        """Read one word; the generator returns the value."""
        yield from self.bus.read_word(master, priority=priority)
        self.reads += 1
        return self.memory.peek(word_address)

    def write(self, master: str, word_address: int, value: int,
              priority: int = 0) -> Generator:
        """Write one word."""
        yield from self.bus.write_word(master, priority=priority)
        self.memory.poke(word_address, value)
        self.writes += 1

    def read_burst(self, master: str, word_address: int, words: int,
                   priority: int = 0) -> Generator:
        """Burst read; the generator returns the list of values."""
        yield from self.bus.transaction(master, words=words,
                                        priority=priority)
        self.reads += words
        return [self.memory.peek(word_address + i) for i in range(words)]

    def write_burst(self, master: str, word_address: int,
                    values: list, priority: int = 0) -> Generator:
        """Burst write."""
        yield from self.bus.transaction(master, words=len(values),
                                        priority=priority)
        for i, value in enumerate(values):
            self.memory.poke(word_address + i, value)
        self.writes += len(values)
