"""The MPSoC hardware substrate (Sections 2.1 and 5.1).

Models the paper's base system: four MPC755-class processing elements
with L1 caches, a shared bus with an arbiter running at 100 MHz, a
memory controller in front of 16 MB of shared L2 memory, four peripheral
resources (VI, IDCT, DSP, WI) with timers and interrupt generation, and
an interrupt controller.
"""

from repro.mpsoc.bus import BusTiming, SystemBus
from repro.mpsoc.cache import CacheStats, L1Cache
from repro.mpsoc.memory import MemoryController, SharedMemory
from repro.mpsoc.processor import ProcessingElement
from repro.mpsoc.peripheral import Peripheral
from repro.mpsoc.interrupt import InterruptController
from repro.mpsoc.soc import MPSoC, SoCConfig

__all__ = [
    "SystemBus",
    "BusTiming",
    "L1Cache",
    "CacheStats",
    "SharedMemory",
    "MemoryController",
    "ProcessingElement",
    "Peripheral",
    "InterruptController",
    "MPSoC",
    "SoCConfig",
]
