"""Assembly of the base MPSoC for experimentation (Section 5.1).

``MPSoC.base_system()`` builds the paper's testbed: four MPC755-class
PEs, a 100 MHz shared bus, a memory controller with 16 MB of shared
memory, an interrupt controller, and the four peripheral resources
VI / IDCT / DSP / WI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.mpsoc.bus import BusTiming, SystemBus
from repro.mpsoc.interrupt import InterruptController
from repro.mpsoc.memory import MemoryController, SharedMemory
from repro.mpsoc.peripheral import Peripheral
from repro.mpsoc.processor import ProcessingElement
from repro.obs import Observability
from repro.sim.engine import Engine
from repro.sim.trace import Trace

#: The base system's resource census (Example 2 / Section 5.1).
BASE_PERIPHERALS = ("VI", "IDCT", "DSP", "WI")


@dataclass
class SoCConfig:
    """Parameters of an MPSoC instance."""

    num_pes: int = 4
    pe_type: str = "MPC755"
    l1_icache_kb: int = 32
    l1_dcache_kb: int = 32
    memory_bytes: int = 16 * 1024 * 1024
    bus_timing: BusTiming = field(default_factory=BusTiming)
    peripherals: tuple = BASE_PERIPHERALS

    def validate(self) -> None:
        if self.num_pes < 1:
            raise ConfigurationError("need at least one PE")
        if len(set(self.peripherals)) != len(self.peripherals):
            raise ConfigurationError("duplicate peripheral names")


class MPSoC:
    """A simulatable MPSoC: engine + bus + memory + PEs + peripherals."""

    def __init__(self, config: Optional[SoCConfig] = None) -> None:
        self.config = config if config is not None else SoCConfig()
        self.config.validate()
        self.engine = Engine()
        self.trace = Trace()
        #: The system's observability hub (disabled by default; flip
        #: ``soc.obs.enabled`` to start collecting metrics and spans).
        self.obs = Observability(engine=self.engine, label="mpsoc",
                                 trace=self.trace)
        self.bus = SystemBus(self.engine, timing=self.config.bus_timing,
                             obs=self.obs)
        self.memory = SharedMemory(self.config.memory_bytes)
        self.memory_controller = MemoryController(self.bus, self.memory)
        self.interrupts = InterruptController(self.engine)
        self.pes: list[ProcessingElement] = [
            ProcessingElement(self.engine, self.bus, f"PE{i + 1}",
                              l1_icache_kb=self.config.l1_icache_kb,
                              l1_dcache_kb=self.config.l1_dcache_kb)
            for i in range(self.config.num_pes)]
        self.peripherals: dict[str, Peripheral] = {}
        for name in self.config.peripherals:
            self.peripherals[name] = Peripheral(
                self.engine, name,
                interrupt_controller=self.interrupts,
                irq_line=f"irq.{name}")

    @classmethod
    def base_system(cls) -> "MPSoC":
        """The paper's four-PE / four-resource testbed."""
        return cls(SoCConfig())

    def pe(self, name: str) -> ProcessingElement:
        for pe in self.pes:
            if pe.name == name:
                return pe
        raise ConfigurationError(f"unknown PE {name!r}")

    def peripheral(self, name: str) -> Peripheral:
        try:
            return self.peripherals[name]
        except KeyError:
            raise ConfigurationError(f"unknown peripheral {name!r}") from None

    @property
    def now(self) -> float:
        return self.engine.now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<MPSoC {len(self.pes)}x{self.config.pe_type} "
                f"peripherals={list(self.peripherals)}>")
