"""The Parallel Deadlock Detection Algorithm (Algorithms 1 and 2).

:func:`terminal_reduction` implements Algorithm 1 — the terminal
reduction sequence xi — and :func:`pdda_detect` implements Algorithm 2.
PDDA removes every edge that belongs to a terminal row (Definition 7) or
terminal column (Definition 8) each step; any edge that survives an
irreducible matrix lies on a cycle, i.e. deadlock.

The *software* cycle-cost model used for the RTOS1/RTOS3 experiments is
:func:`software_detection_cycles`: a sequential CPU must scan all
``m x n`` cells per reduction pass (this is what makes software PDDA
O(m*n) per iteration), so the cost is

    (passes) * m * n * SW_PDDA_CELL_CYCLES + SW_PDDA_OVERHEAD_CYCLES

where ``passes = iterations + 1`` counts the final pass that discovers
there are no terminal edges left (line 7 of Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro import calibration
from repro.rag.bitmatrix import AnyStateMatrix, BitMatrix, as_backend_matrix
from repro.rag.graph import RAG
from repro.rag.matrix import StateMatrix

MatrixSource = Union[RAG, StateMatrix, BitMatrix]


@dataclass(frozen=True)
class ReductionResult:
    """Outcome of a full terminal reduction sequence (Algorithm 1)."""

    matrix: AnyStateMatrix
    iterations: int
    #: Scan passes over the matrix, including the final no-terminal pass.
    passes: int

    @property
    def complete(self) -> bool:
        """True for a *complete reduction* (Definition 13): no edges left."""
        return self.matrix.is_empty()


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of PDDA (Algorithm 2)."""

    deadlock: bool
    iterations: int
    passes: int
    #: Modelled software execution time in bus cycles.
    software_cycles: float
    #: The irreducible matrix; its surviving edges are the deadlock.
    residual: AnyStateMatrix

    def deadlocked_processes(self) -> list[str]:
        """Process names with a surviving (cycle-involved) edge."""
        res = self.residual
        out = []
        for t in range(res.n):
            if any(res.get(s, t).value for s in range(res.m)):
                out.append(res.process_names[t])
        return out

    def deadlocked_resources(self) -> list[str]:
        """Resource names with a surviving (cycle-involved) edge."""
        res = self.residual
        out = []
        for s in range(res.m):
            if any(res.get(s, t).value for t in range(res.n)):
                out.append(res.resource_names[s])
        return out


def terminal_reduction(source: MatrixSource,
                       backend: Optional[str] = None) -> ReductionResult:
    """Algorithm 1: apply terminal reduction steps until irreducible.

    Each step finds all terminal rows and columns of the current matrix
    (lines 5-6), stops if there are none (line 7), otherwise clears them
    all at once (lines 8-9).  ``backend`` picks the matrix representation
    the reduction runs on (see :mod:`repro.rag.bitmatrix`); iteration and
    pass counts are bit-identical across backends.
    """
    matrix = as_backend_matrix(source, backend)
    if isinstance(matrix, BitMatrix):
        iterations, passes = matrix.reduce()
        return ReductionResult(matrix=matrix, iterations=iterations,
                               passes=passes)
    iterations = 0
    passes = 0
    while True:
        passes += 1
        terminal_rows = matrix.terminal_rows()
        terminal_columns = matrix.terminal_columns()
        if not terminal_rows and not terminal_columns:
            break
        for s in terminal_rows:
            matrix.clear_row(s)
        for t in terminal_columns:
            matrix.clear_column(t)
        iterations += 1
    return ReductionResult(matrix=matrix, iterations=iterations, passes=passes)


def software_detection_cycles(m: int, n: int, passes: int) -> float:
    """Modelled software run time of PDDA in bus cycles (see module doc)."""
    return (passes * m * n * calibration.SW_PDDA_CELL_CYCLES
            + calibration.SW_PDDA_OVERHEAD_CYCLES)


def pdda_detect(source: MatrixSource,
                backend: Optional[str] = None) -> DetectionResult:
    """Algorithm 2: build the matrix, reduce, report deadlock.

    Returns '1' (deadlock) iff the irreducible matrix still has edges —
    equivalently, iff the state graph contains a cycle (the paper's
    proven iff, reference [29]).
    """
    reduction = terminal_reduction(source, backend)
    residual = reduction.matrix
    cycles = software_detection_cycles(residual.m, residual.n,
                                       reduction.passes)
    return DetectionResult(
        deadlock=not reduction.complete,
        iterations=reduction.iterations,
        passes=reduction.passes,
        software_cycles=cycles,
        residual=reduction.matrix,
    )
