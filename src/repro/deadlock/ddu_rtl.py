"""Structural (cell-level) DDU model — Figure 13, cell by cell.

The behavioural model (:class:`repro.deadlock.ddu.DDU`) computes whole
rows/columns at once.  This module builds the unit the way the RTL
does: an array of :class:`MatrixCell` objects, one :class:`RowWeightCell`
per row and :class:`ColumnWeightCell` per column (each computing its
``(tau, phi)`` pair from the cells' wired-OR outputs), and one
:class:`DecideCell`.  Each :meth:`StructuralDDU.step` evaluates one
hardware clock:

1. every weight cell samples its row/column's wired-OR of the cells'
   ``r``/``g`` outputs (Equation 3) and latches tau = r XOR g
   (Equation 4) and phi = r AND g (Equation 6);
2. every matrix cell looks at *its own* row and column weight lines
   and clears itself when either says "terminal" (Definition 12) —
   purely local logic, which is what makes the unit O(min(m, n));
3. the decide cell ORs the tau lines into T_iter (Equation 5) and,
   once T_iter drops to 0, latches D from the phi lines (Equation 7).

The property suite drives this model and the behavioural one on the
same states and requires identical verdicts, iteration counts, and
residual matrices — the cross-validation a real RTL team would run
between their architectural and RTL models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import ConfigurationError
from repro.rag.graph import RAG
from repro.rag.matrix import CellState, StateMatrix


class MatrixCell:
    """One alpha_st cell: a 2-bit register with local clear logic."""

    __slots__ = ("r", "g")

    def __init__(self) -> None:
        self.r = 0
        self.g = 0

    def load(self, state: CellState) -> None:
        self.r = state.r_bit
        self.g = state.g_bit

    def value(self) -> CellState:
        if self.r:
            return CellState.REQUEST
        if self.g:
            return CellState.GRANT
        return CellState.EMPTY

    def clear_if(self, row_terminal: bool, column_terminal: bool) -> bool:
        """Local reduction logic: clear when either weight line says
        terminal.  Returns True when an edge was actually removed."""
        if (row_terminal or column_terminal) and (self.r or self.g):
            self.r = 0
            self.g = 0
            return True
        return False


@dataclass
class WeightSignals:
    """The latched (tau, phi) outputs of one weight cell."""

    terminal: bool = False
    connect: bool = False


class RowWeightCell:
    """w_rs: wired-OR over the row's cells, then XOR / AND."""

    def __init__(self, cells: list) -> None:
        self._cells = cells
        self.out = WeightSignals()

    def evaluate(self) -> None:
        r_or = 0
        g_or = 0
        for cell in self._cells:
            r_or |= cell.r
            g_or |= cell.g
        self.out.terminal = bool(r_or ^ g_or)
        self.out.connect = bool(r_or & g_or)


class ColumnWeightCell(RowWeightCell):
    """w_ct: identical logic over a column's cells."""


class DecideCell:
    """T_iter / D logic at the corner of the array (Equations 5 and 7)."""

    def __init__(self, row_weights: list, column_weights: list) -> None:
        self._rows = row_weights
        self._cols = column_weights
        self.t_iter = False
        self.deadlock = False
        self.done = False

    def evaluate(self) -> None:
        self.t_iter = (any(w.out.terminal for w in self._rows)
                       or any(w.out.terminal for w in self._cols))
        if not self.t_iter:
            self.deadlock = (any(w.out.connect for w in self._rows)
                             or any(w.out.connect for w in self._cols))
            self.done = True


@dataclass(frozen=True)
class StructuralDetection:
    deadlock: bool
    iterations: int
    passes: int
    residual: StateMatrix


class StructuralDDU:
    """The Figure 13 array, steppable one hardware clock at a time."""

    def __init__(self, num_resources: int, num_processes: int) -> None:
        if num_resources < 1 or num_processes < 1:
            raise ConfigurationError("DDU needs at least a 1x1 matrix")
        self.m = num_resources
        self.n = num_processes
        self.cells = [[MatrixCell() for _t in range(self.n)]
                      for _s in range(self.m)]
        self.row_weights = [RowWeightCell(self.cells[s])
                            for s in range(self.m)]
        self.column_weights = [
            ColumnWeightCell([self.cells[s][t] for s in range(self.m)])
            for t in range(self.n)]
        self.decide = DecideCell(self.row_weights, self.column_weights)

    # -- loading -----------------------------------------------------------------

    def load(self, source: Union[RAG, StateMatrix]) -> None:
        matrix = (StateMatrix.from_rag(source)
                  if isinstance(source, RAG) else source)
        if (matrix.m, matrix.n) != (self.m, self.n):
            raise ConfigurationError(
                f"state is {matrix.m}x{matrix.n}, unit is "
                f"{self.m}x{self.n}")
        for s in range(self.m):
            for t in range(self.n):
                self.cells[s][t].load(matrix.get(s, t))
        self.decide.done = False
        self.decide.deadlock = False

    def snapshot(self) -> StateMatrix:
        matrix = StateMatrix(self.m, self.n)
        for s in range(self.m):
            for t in range(self.n):
                value = self.cells[s][t].value()
                if value is CellState.REQUEST:
                    matrix.set_request(s, t)
                elif value is CellState.GRANT:
                    matrix.set_grant(s, t)
        return matrix

    # -- clocking -----------------------------------------------------------------

    def step(self) -> bool:
        """One hardware clock; returns True while still running."""
        for weight in self.row_weights:
            weight.evaluate()
        for weight in self.column_weights:
            weight.evaluate()
        self.decide.evaluate()
        if self.decide.done:
            return False
        # Reduction phase of the same clock: each cell clears itself
        # from its own two weight lines only.
        for s in range(self.m):
            row_terminal = self.row_weights[s].out.terminal
            for t in range(self.n):
                self.cells[s][t].clear_if(
                    row_terminal, self.column_weights[t].out.terminal)
        return True

    def detect(self, max_steps: Optional[int] = None) -> StructuralDetection:
        """Clock the array until the decide cell latches."""
        limit = max_steps if max_steps is not None else 2 * (self.m
                                                             + self.n) + 4
        passes = 0
        iterations = 0
        while True:
            passes += 1
            if passes > limit:
                raise ConfigurationError(
                    f"structural DDU did not settle in {limit} steps")
            if not self.step():
                break
            iterations += 1
        return StructuralDetection(
            deadlock=self.decide.deadlock,
            iterations=iterations,
            passes=passes,
            residual=self.snapshot())
