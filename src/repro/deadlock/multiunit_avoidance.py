"""Deadlock avoidance over multi-unit resource classes (extension).

The DAU of the paper handles single-unit resources; its conclusion
points at MPSoCs with "ten to a hundred resources", many of which come
as interchangeable units (DMA channels, buffer pools).  This module
extends Algorithm 3's structure to the counting model of
:class:`repro.rag.multiunit.MultiUnitSystem`:

``request(p, q, units)``
  * fully available -> grant immediately (no deadlock can *exist*
    merely from granting available units);
  * otherwise the request goes outstanding and the counting detector
    runs: if the new wait closes a Coffman-style deadlock, the conflict
    resolves as in Algorithm 3 — a higher-priority requester pends and
    the lowest-priority *holder* of the contested class is asked to
    release; a lower-priority requester is told to give up its
    holdings (with the same bounded-retry livelock escape).

``release(p, q, units)``
  * returned units are offered to outstanding requests in priority
    order; each candidate satisfaction is tentatively applied and
    checked, skipping any that would leave a deadlock (the G-dl
    fallback, line 19's analog).

Decisions reuse :class:`repro.deadlock.daa.Decision`, so the service
layer and reporting work unchanged.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Mapping, Optional

from repro.deadlock.daa import Action, AvoidanceStats, Decision, DeadlockKind
from repro.errors import ResourceProtocolError
from repro.rag.multiunit import MultiUnitSystem


class MultiUnitAvoider:
    """Algorithm-3-style avoidance on counting-model resources."""

    def __init__(self, processes: Iterable[str],
                 resources: Mapping[str, int],
                 priorities: Mapping[str, int],
                 livelock_threshold: int = 3) -> None:
        self.system = MultiUnitSystem(processes, resources)
        self.priorities = dict(priorities)
        missing = set(self.system.processes) - set(self.priorities)
        if missing:
            raise ResourceProtocolError(
                f"processes without priority: {sorted(missing)}")
        if livelock_threshold < 1:
            raise ResourceProtocolError("livelock_threshold must be >= 1")
        self.livelock_threshold = livelock_threshold
        self._giveup_counts: dict = {}
        self.stats = AvoidanceStats()

    # -- helpers -----------------------------------------------------------------

    def _held_pairs(self, process: str) -> tuple:
        return tuple(
            (process, q) for q in self.system.resources
            if self.system.allocation_of(process, q) > 0)

    def _finish(self, decision: Decision) -> Decision:
        # Cost model: one software pass per detection run over the
        # allocation table (m x n cells), as in the software DAA.
        from repro import calibration
        m = len(self.system.resources)
        n = len(self.system.processes)
        cycles = (calibration.SW_DAA_OVERHEAD_CYCLES
                  + (decision.detection_runs + 1) * m * n
                  * calibration.SW_PDDA_CELL_CYCLES)
        final = dataclasses.replace(decision, cycles=cycles)
        self.stats.note(final)
        return final

    # -- requests -------------------------------------------------------------------

    def request(self, process: str, resource: str,
                units: int = 1) -> Decision:
        if units <= self.system.available(resource):
            # Tentatively grant and check.  Unlike the single-unit
            # model, granting *available* units can close a deadlock
            # here: the grant may starve a waiter that needs more
            # units than remain — a G-dl at request time.  The unit
            # "avoids deadlock by not allowing any grant or request
            # that leads to a deadlock" (Section 4.3).
            self.system.request(process, resource, units)
            self.system.grant(process, resource, units)
            if not self.system.detect().deadlock:
                self._giveup_counts.pop((process, resource), None)
                return self._finish(Decision(
                    event="request", process=process, resource=resource,
                    action=Action.GRANTED, detection_runs=1))
            # Undo the grant; keep the request outstanding and resolve
            # below like any other conflicted request.
            self.system.release(process, resource, units)
            self.system.request(process, resource, units)
            detection = self.system.detect()
        else:
            # Not fully available: the request goes outstanding.
            self.system.request(process, resource, units)
            detection = self.system.detect()
        if not detection.deadlock:
            return self._finish(Decision(
                event="request", process=process, resource=resource,
                action=Action.PENDING, detection_runs=1))

        # The new wait closes a deadlock (which may tangle processes
        # beyond the requester — a multi-unit subtlety absent from the
        # single-unit model).  Plan the victim set whose releases
        # provably break *every* knot, preferring low-priority victims.
        demands, runs, _complete = self._plan_victims()
        key = (process, resource)
        requester_is_victim = any(victim == process
                                  for victim, _q in demands)
        if not requester_is_victim:
            return self._finish(Decision(
                event="request", process=process, resource=resource,
                action=Action.PENDING,
                deadlock_kind=DeadlockKind.REQUEST,
                ask_release=demands,
                detection_runs=1 + runs))
        retries = self._giveup_counts.get(key, 0)
        if retries + 1 >= self.livelock_threshold:
            # Livelock escape: spare the starved requester this time —
            # re-plan with the requester excluded from candidacy; only
            # usable when that plan still breaks every knot.
            others, other_runs, complete = self._plan_victims(
                exclude={process})
            runs += other_runs
            if complete and others:
                self._giveup_counts.pop(key, None)
                return self._finish(Decision(
                    event="request", process=process, resource=resource,
                    action=Action.PENDING,
                    deadlock_kind=DeadlockKind.REQUEST,
                    livelock=True,
                    ask_release=others,
                    detection_runs=1 + runs))
        self.system.withdraw(process, resource, units)
        self._giveup_counts[key] = retries + 1
        return self._finish(Decision(
            event="request", process=process, resource=resource,
            action=Action.GIVE_UP,
            deadlock_kind=DeadlockKind.REQUEST,
            ask_release=self._held_pairs(process),
            detection_runs=1 + runs))

    def _plan_victims(self, exclude: Optional[set] = None) -> tuple:
        """Compute (victim, resource) demands that break every knot.

        Works on a scratch copy: repeatedly pick the lowest-priority
        deadlocked process (outside ``exclude``), release its holdings,
        and re-check; at most one round per process.  Returns
        ``(demands, detection_runs, complete)`` where ``complete`` says
        the final scratch state is deadlock-free.
        """
        excluded = exclude if exclude is not None else set()
        scratch = self.system.copy()
        demands: list = []
        victimized: set = set()
        runs = 0
        complete = False
        while True:
            detection = scratch.detect()
            runs += 1
            if not detection.deadlock:
                complete = True
                break
            candidates = [p for p in detection.deadlocked_processes
                          if p not in victimized and p not in excluded]
            if not candidates:
                break
            victim = max(candidates, key=lambda p: self.priorities[p])
            victimized.add(victim)
            for q in scratch.resources:
                held = scratch.allocation_of(victim, q)
                if held:
                    scratch.release(victim, q, held)
                    demands.append((victim, q))
        return tuple(demands), runs, complete

    # -- releases ---------------------------------------------------------------------

    def release(self, process: str, resource: str,
                units: int = 1) -> Decision:
        self.system.release(process, resource, units)
        runs = 0
        granted_to: Optional[str] = None
        skipped_higher = False
        waiters = sorted(
            (p for p in self.system.processes
             if self.system.outstanding_request(p, resource) > 0),
            key=lambda p: self.priorities[p])
        for candidate in waiters:
            wanted = self.system.outstanding_request(candidate, resource)
            grantable = min(wanted, self.system.available(resource))
            if grantable == 0:
                break
            self.system.grant(candidate, resource, grantable)
            runs += 1
            if self.system.detect().deadlock:
                # Undo: take the units back and restore the request.
                self.system.release(candidate, resource, grantable)
                self.system.request(candidate, resource, grantable)
                skipped_higher = True
                continue
            granted_to = candidate
            self._giveup_counts.pop((candidate, resource), None)
            break
        if granted_to is not None:
            kind = (DeadlockKind.GRANT if skipped_higher
                    else DeadlockKind.NONE)
            return self._finish(Decision(
                event="release", process=process, resource=resource,
                action=Action.HANDED_OFF, deadlock_kind=kind,
                granted_to=granted_to, detection_runs=runs))
        if skipped_higher and waiters:
            victim = waiters[-1]
            return self._finish(Decision(
                event="release", process=process, resource=resource,
                action=Action.RELEASED,
                deadlock_kind=DeadlockKind.GRANT, livelock=True,
                ask_release=self._held_pairs(victim),
                detection_runs=runs))
        return self._finish(Decision(
            event="release", process=process, resource=resource,
            action=Action.RELEASED, detection_runs=runs))
