"""Deadlock recovery for the detection configurations.

Section 3.3.1: "Deadlock detection, however, usually requires a
recovery once a deadlock is detected."  The paper's evaluation stops
the detection experiment at the detection instant (Table 5); a system a
user would actually deploy needs the recovery half, so this module
provides it:

* victim-selection strategies over the deadlocked sub-graph (the
  irreducible residual PDDA leaves behind):

  - ``lowest-priority`` — break the cycle at the least important
    process (the conventional RTOS choice);
  - ``fewest-resources`` — minimize the work thrown away by picking the
    process holding the fewest resources;
  - ``youngest-request`` — abort the request that closed the cycle
    last (needs the service's event log).

* :func:`plan_recovery` — compute which (process, resource) releases
  break every cycle for a chosen victim;
* :class:`RecoveryManager` — drives the plan through a
  :class:`~repro.rtos.resources.DetectionResourceService`: the victim
  is asked (Assumption 3) to release its resources and its pending
  requests are withdrawn, after which the handoffs un-block the
  surviving processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.deadlock.pdda import pdda_detect
from repro.errors import DeadlockError
from repro.rag.graph import RAG

#: strategy name -> key function factory (lower key = preferred victim).
_STRATEGIES: dict = {}


def _strategy(name: str) -> Callable:
    def register(fn: Callable) -> Callable:
        _STRATEGIES[name] = fn
        return fn
    return register


@_strategy("lowest-priority")
def _by_priority(rag: RAG, priorities: dict, candidates: Iterable[str]):
    # Highest numeric priority value = least important task.
    return lambda p: -priorities[p]


@_strategy("fewest-resources")
def _by_holdings(rag: RAG, priorities: dict, candidates: Iterable[str]):
    return lambda p: (len(rag.held_by(p)), priorities[p])


@_strategy("youngest-request")
def _by_request_age(rag: RAG, priorities: dict, candidates: Iterable[str]):
    # Without an event log the youngest request is approximated by the
    # process with the most outstanding requests (it joined the tangle
    # last in the scripted scenarios); priority breaks ties.
    return lambda p: (-len(rag.requests_of(p)), priorities[p])


def strategies() -> tuple:
    return tuple(sorted(_STRATEGIES))


@dataclass(frozen=True)
class VictimStep:
    """One victimized process and its undo set."""

    victim: str
    releases: tuple          # resources the victim must release
    withdrawals: tuple       # pending requests of the victim to cancel


@dataclass(frozen=True)
class RecoveryPlan:
    """What to undo to break *every* cycle.

    A state can hold several disjoint cycles, so a plan is a sequence
    of victim steps; single-cycle states (the common case) have exactly
    one.  ``victim``/``releases``/``withdrawals`` expose the primary
    step for convenience.
    """

    steps: tuple
    strategy: str

    @property
    def victim(self) -> str:
        return self.steps[0].victim

    @property
    def victims(self) -> tuple:
        return tuple(step.victim for step in self.steps)

    @property
    def releases(self) -> tuple:
        return self.steps[0].releases

    @property
    def withdrawals(self) -> tuple:
        return self.steps[0].withdrawals

    @property
    def cost(self) -> int:
        """Work units thrown away (held resources to be released)."""
        return sum(len(step.releases) for step in self.steps)


def deadlocked_processes(rag: RAG) -> tuple:
    """Processes on a cycle (PDDA residual, Definition 13)."""
    result = pdda_detect(rag)
    if not result.deadlock:
        return ()
    return tuple(result.deadlocked_processes())


def plan_recovery(rag: RAG, priorities: dict,
                  strategy: str = "lowest-priority") -> RecoveryPlan:
    """Choose victims until every cycle is broken.

    Works on a scratch copy: a state may hold several disjoint cycles,
    so victims are selected (one per remaining tangle) until the
    residual is clean.  Raises :class:`DeadlockError` when the state
    has no deadlock.
    """
    try:
        key_factory = _STRATEGIES[strategy]
    except KeyError:
        raise DeadlockError(
            f"unknown recovery strategy {strategy!r}; available: "
            f"{strategies()}") from None
    if not deadlocked_processes(rag):
        raise DeadlockError("no deadlock to recover from")
    scratch = rag.copy()
    steps: list = []
    while True:
        candidates = deadlocked_processes(scratch)
        if not candidates:
            break
        key = key_factory(scratch, priorities, candidates)
        victim = min(sorted(candidates), key=key)
        releases = scratch.held_by(victim)
        withdrawals = scratch.requests_of(victim)
        for resource in withdrawals:
            scratch.remove_request(victim, resource)
        for resource in releases:
            scratch.release(victim, resource)
        steps.append(VictimStep(victim=victim, releases=releases,
                                withdrawals=withdrawals))
    return RecoveryPlan(steps=tuple(steps), strategy=strategy)


def apply_plan(rag: RAG, plan: RecoveryPlan) -> None:
    """Execute a plan directly on a RAG (used by tests and tools).

    The service-level path is :class:`RecoveryManager`.
    """
    for step in plan.steps:
        for resource in step.withdrawals:
            rag.remove_request(step.victim, resource)
        for resource in step.releases:
            rag.release(step.victim, resource)
    if pdda_detect(rag).deadlock:
        raise DeadlockError(
            f"recovery plan ({plan.victims}) did not break every cycle")


@dataclass
class RecoveryRecord:
    """One executed recovery, for reporting."""

    time: float
    plan: RecoveryPlan


class RecoveryManager:
    """Drives recovery through a detection resource service.

    Attach to a :class:`~repro.rtos.resources.DetectionResourceService`
    and call :meth:`recover` from a supervisor task once the service's
    ``deadlock_event`` fires; the victim task receives give-up
    notifications for its held resources (Assumption 3) and its pending
    requests are withdrawn so its ``wait_grant`` calls can be abandoned.
    """

    def __init__(self, service, priorities: dict,
                 strategy: str = "lowest-priority") -> None:
        self.service = service
        self.priorities = dict(priorities)
        self.strategy = strategy
        self.recoveries: list = []

    def recover(self, supervisor_ctx) -> "RecoveryPlan":
        """Plan and execute one recovery; returns the plan."""
        rag = self.service.rag
        plan = plan_recovery(rag, self.priorities, self.strategy)
        kernel = self.service.kernel
        for step in plan.steps:
            # Withdraw the victim's pending requests so the cycle
            # breaks even before the releases land.
            for resource in step.withdrawals:
                rag.remove_request(step.victim, resource)
                kernel.trace.record(kernel.engine.now, step.victim,
                                    "request_withdrawn",
                                    resource=resource)
            # Demand the releases; the victim task performs them itself.
            self.service._ask_release(
                tuple((step.victim, resource)
                      for resource in step.releases),
                on_behalf_of="recovery")
        self.recoveries.append(
            RecoveryRecord(kernel.engine.now, plan))
        kernel.trace.record(kernel.engine.now, "recovery", "recovery_plan",
                            victims=",".join(plan.victims),
                            strategy=plan.strategy)
        return plan
