"""The Deadlock Avoidance Algorithm — Algorithm 3 (Section 4.3.1).

:class:`AvoidanceCore` implements the decision logic shared by the
software implementation (:class:`SoftwareDAA`, the RTOS3 configuration)
and the hardware unit (:class:`repro.deadlock.dau.DAU`, RTOS4).  The two
differ only in how a deadlock check is executed and costed, which the
subclasses provide through :meth:`AvoidanceCore._run_detection` and the
cost hooks.

Semantics implemented (with paper line numbers):

``request(p, q)``
  * q available -> grant immediately (lines 3-4);
  * q held and the request would cause **R-dl** (line 5):
    - requester priority > owner priority: request becomes pending and
      the owner is asked to release q (lines 6-8);
    - otherwise the requester is asked to give up the resources it
      already holds (lines 9-10);
  * otherwise the request becomes pending (lines 12-13).

``release(p, q)``
  * waiters exist (line 17): tentatively grant to the highest-priority
    waiter and check **G-dl**; on deadlock undo and try the next-lower
    priority waiter (lines 18-21); if *no* waiter can take the resource
    safely, the situation is a livelock in the making — the DAU asks the
    lowest-priority waiter to give up its held resources (Section 4.1:
    "In case of livelock ... the DAU asks one of the processes involved
    in the livelock to release resource(s)");
  * no waiters -> the resource simply becomes available (lines 23-24).

Livelock from the line-10 path (a low-priority requester repeatedly told
to give up and retrying) is resolved by a bounded-retry rule: after
``livelock_threshold`` give-up answers for the same (process, resource)
pair, the unit instead pends the request and asks the *owner* to release
— guaranteeing progress for the starved process.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro import calibration
from repro.errors import ResourceProtocolError
from repro.rag.bitmatrix import AnyStateMatrix, matrix_from_rag
from repro.rag.graph import RAG
from repro.deadlock.pdda import software_detection_cycles, terminal_reduction


class DeadlockKind(enum.Enum):
    """Which deadlock flavour a decision encountered (Definitions 4-5)."""

    NONE = "none"
    REQUEST = "R-dl"
    GRANT = "G-dl"


class Action(enum.Enum):
    """Outcome of a request/release event for the issuing process."""

    GRANTED = "granted"          # resource granted to the requester
    PENDING = "pending"          # request recorded; process must wait
    GIVE_UP = "give-up"          # requester must release what it holds
    DENIED = "denied"            # request rejected outright (retry later)
    RELEASED = "released"        # release processed; resource available
    HANDED_OFF = "handed-off"    # release processed; granted to a waiter


@dataclass(frozen=True)
class Decision:
    """Everything the avoidance logic decided for one event.

    Mirrors the DAU status-register fields: *successful*, *pending*,
    *give-up*, *which-process*, *which-resource*, *livelock*, *G-dl*,
    *R-dl* (Section 4.3.2).
    """

    event: str
    process: str
    resource: str
    action: Action
    deadlock_kind: DeadlockKind = DeadlockKind.NONE
    livelock: bool = False
    #: Who the resource went to, for release events that hand off.
    granted_to: Optional[str] = None
    #: (process, resource) pairs the RTOS must ask to be released
    #: (Assumption 3 provides the mechanism).
    ask_release: tuple = ()
    #: Deadlock-check invocations used for this decision.
    detection_runs: int = 0
    #: Total evaluation passes across those runs.
    detection_passes: int = 0
    #: Modelled execution time of this decision in bus cycles.
    cycles: float = 0.0


@dataclass
class AvoidanceStats:
    """Running totals for the experiment harnesses."""

    invocations: int = 0
    total_cycles: float = 0.0
    detection_runs: int = 0
    rdl_events: int = 0
    gdl_events: int = 0
    livelock_events: int = 0
    decisions: list = field(default_factory=list)

    @property
    def mean_cycles(self) -> float:
        return self.total_cycles / self.invocations if self.invocations else 0.0

    def note(self, decision: Decision) -> None:
        self.invocations += 1
        self.total_cycles += decision.cycles
        self.detection_runs += decision.detection_runs
        if decision.deadlock_kind is DeadlockKind.REQUEST:
            self.rdl_events += 1
        elif decision.deadlock_kind is DeadlockKind.GRANT:
            self.gdl_events += 1
        if decision.livelock:
            self.livelock_events += 1
        self.decisions.append(decision)


def decision_to_dict(decision: Decision) -> dict:
    """JSON-safe form of a :class:`Decision` (checkpoint payloads)."""
    return {
        "event": decision.event,
        "process": decision.process,
        "resource": decision.resource,
        "action": decision.action.value,
        "deadlock_kind": decision.deadlock_kind.value,
        "livelock": decision.livelock,
        "granted_to": decision.granted_to,
        "ask_release": [list(pair) for pair in decision.ask_release],
        "detection_runs": decision.detection_runs,
        "detection_passes": decision.detection_passes,
        "cycles": decision.cycles,
    }


def decision_from_dict(data: dict) -> Decision:
    """Inverse of :func:`decision_to_dict`."""
    return Decision(
        event=data["event"],
        process=data["process"],
        resource=data["resource"],
        action=Action(data["action"]),
        deadlock_kind=DeadlockKind(data["deadlock_kind"]),
        livelock=data["livelock"],
        granted_to=data["granted_to"],
        ask_release=tuple(tuple(pair) for pair in data["ask_release"]),
        detection_runs=data["detection_runs"],
        detection_passes=data["detection_passes"],
        cycles=data["cycles"],
    )


def stats_to_payload(stats: AvoidanceStats) -> dict:
    """JSON-safe form of :class:`AvoidanceStats`."""
    return {
        "invocations": stats.invocations,
        "total_cycles": stats.total_cycles,
        "detection_runs": stats.detection_runs,
        "rdl_events": stats.rdl_events,
        "gdl_events": stats.gdl_events,
        "livelock_events": stats.livelock_events,
        "decisions": [decision_to_dict(d) for d in stats.decisions],
    }


def stats_from_payload(data: dict) -> AvoidanceStats:
    """Inverse of :func:`stats_to_payload`."""
    return AvoidanceStats(
        invocations=data["invocations"],
        total_cycles=data["total_cycles"],
        detection_runs=data["detection_runs"],
        rdl_events=data["rdl_events"],
        gdl_events=data["gdl_events"],
        livelock_events=data["livelock_events"],
        decisions=[decision_from_dict(d) for d in data["decisions"]],
    )


class AvoidanceCore:
    """Algorithm 3 decision logic over a live RAG.

    ``priorities`` maps process name to priority; *smaller values are
    higher priority* (the RTOS convention; the paper's p1-highest
    ordering corresponds to priority 1..4).
    """

    #: Whether the line-19 fallback (grant to a lower-priority waiter
    #: when the best waiter's grant would deadlock) is enabled.
    gdl_fallback = True

    def __init__(self, processes: Iterable[str], resources: Iterable[str],
                 priorities: Mapping[str, int],
                 livelock_threshold: int = 3) -> None:
        self.rag = RAG(processes, resources)
        self.priorities = dict(priorities)
        missing = set(self.rag.processes) - set(self.priorities)
        if missing:
            raise ResourceProtocolError(
                f"processes without priority: {sorted(missing)}")
        if livelock_threshold < 1:
            raise ResourceProtocolError("livelock_threshold must be >= 1")
        self.livelock_threshold = livelock_threshold
        self._giveup_counts: dict[tuple[str, str], int] = {}
        self.stats = AvoidanceStats()

    # -- detection backend (overridden by hardware/software variants) -------

    def _run_detection(self, matrix: AnyStateMatrix) -> tuple[bool, int]:
        """Return (deadlock, passes) for the given state matrix."""
        reduction = terminal_reduction(matrix)
        return (not reduction.complete, reduction.passes)

    def _decision_cycles(self, detection_runs: int, detection_passes: int,
                         waiters_scanned: int) -> float:
        """Modelled cost of one decision; overridden per implementation."""
        raise NotImplementedError

    # -- helpers ---------------------------------------------------------------

    def _is_higher_priority(self, a: str, b: str) -> bool:
        return self.priorities[a] < self.priorities[b]

    def _detect_current(self) -> tuple[bool, int]:
        return self._run_detection(matrix_from_rag(self.rag))

    def held_resources(self, process: str) -> tuple[str, ...]:
        return self.rag.held_by(process)

    def holder_of(self, resource: str) -> Optional[str]:
        return self.rag.holder_of(resource)

    # -- Algorithm 3: a request (lines 2-15) -------------------------------------

    def request(self, process: str, resource: str) -> Decision:
        runs = 0
        passes = 0
        if self.rag.is_available(resource):
            # Lines 3-4: grant immediately.  (With no holder there can be
            # no cycle through this resource, so no check is needed.)
            self.rag.grant(resource, process)
            self._giveup_counts.pop((process, resource), None)
            decision = self._finish(Decision(
                event="request", process=process, resource=resource,
                action=Action.GRANTED,
                detection_runs=runs, detection_passes=passes,
            ), waiters_scanned=0)
            return decision

        owner = self.rag.holder_of(resource)
        assert owner is not None
        # Tentatively add the request edge and check for R-dl (line 5).
        self.rag.add_request(process, resource)
        deadlock, det_passes = self._detect_current()
        runs += 1
        passes += det_passes

        if not deadlock:
            # Lines 12-13: harmless; the request stays pending.
            return self._finish(Decision(
                event="request", process=process, resource=resource,
                action=Action.PENDING,
                detection_runs=runs, detection_passes=passes,
            ), waiters_scanned=0)

        # R-dl detected: resolve per the configured policy.  The
        # tentative request edge is still in the RAG; the policy hook
        # decides whether it stays (pending) or rolls back.
        return self._resolve_rdl(process, resource, owner, runs, passes)

    def _resolve_rdl(self, process: str, resource: str, owner: str,
                     runs: int, passes: int) -> Decision:
        """Algorithm 3's R-dl resolution (lines 6-11).

        Subclasses implement the paper's two rejected alternatives by
        overriding this hook (see :mod:`repro.deadlock.policies`).
        """
        key = (process, resource)
        if self._is_higher_priority(process, owner):
            # Lines 6-8: pend the request, ask the owner to release.
            return self._finish(Decision(
                event="request", process=process, resource=resource,
                action=Action.PENDING,
                deadlock_kind=DeadlockKind.REQUEST,
                ask_release=((owner, resource),),
                detection_runs=runs, detection_passes=passes,
            ), waiters_scanned=0)

        retries = self._giveup_counts.get(key, 0)
        if retries + 1 >= self.livelock_threshold:
            # Livelock resolution: progress for the starved requester —
            # pend the request and ask the owner to release instead.
            self._giveup_counts.pop(key, None)
            return self._finish(Decision(
                event="request", process=process, resource=resource,
                action=Action.PENDING,
                deadlock_kind=DeadlockKind.REQUEST,
                livelock=True,
                ask_release=((owner, resource),),
                detection_runs=runs, detection_passes=passes,
            ), waiters_scanned=0)

        # Lines 9-10: undo the request edge; the requester must give up
        # the resources it already holds (and retry later).
        self.rag.remove_request(process, resource)
        self._giveup_counts[key] = retries + 1
        held = self.rag.held_by(process)
        return self._finish(Decision(
            event="request", process=process, resource=resource,
            action=Action.GIVE_UP,
            deadlock_kind=DeadlockKind.REQUEST,
            ask_release=tuple((process, r) for r in held),
            detection_runs=runs, detection_passes=passes,
        ), waiters_scanned=0)

    def withdraw(self, process: str, resource: str) -> Decision:
        """Cancel a pending request (the requester gave up waiting).

        Not part of Algorithm 3's event alphabet, but any real RTOS
        needs it: a task that aborts a multi-resource acquisition must
        be able to take its request edge back out of the matrix.
        """
        self.rag.remove_request(process, resource)
        return self._finish(Decision(
            event="withdraw", process=process, resource=resource,
            action=Action.RELEASED), waiters_scanned=0)

    # -- Algorithm 3: a release (lines 16-25) --------------------------------------

    def release(self, process: str, resource: str) -> Decision:
        self.rag.release(process, resource)
        runs = 0
        passes = 0
        waiters = sorted(self.rag.waiters_for(resource),
                         key=lambda p: self.priorities[p])
        if not waiters:
            # Lines 23-24: no one is waiting; the resource is available.
            return self._finish(Decision(
                event="release", process=process, resource=resource,
                action=Action.RELEASED,
                detection_runs=runs, detection_passes=passes,
            ), waiters_scanned=0)

        # Lines 17-22: try waiters from highest priority downwards,
        # tentatively granting and checking G-dl each time.  Policies
        # without the line-19 fallback stop after the first candidate.
        skipped_higher = False
        candidates = waiters if self.gdl_fallback else waiters[:1]
        for candidate in candidates:
            self.rag.remove_request(candidate, resource)
            self.rag.grant(resource, candidate)
            deadlock, det_passes = self._detect_current()
            runs += 1
            passes += det_passes
            if not deadlock:
                self._giveup_counts.pop((candidate, resource), None)
                kind = (DeadlockKind.GRANT if skipped_higher
                        else DeadlockKind.NONE)
                return self._finish(Decision(
                    event="release", process=process, resource=resource,
                    action=Action.HANDED_OFF,
                    deadlock_kind=kind,
                    granted_to=candidate,
                    detection_runs=runs, detection_passes=passes,
                ), waiters_scanned=len(waiters))
            # Undo the tentative grant; try the next waiter (line 19).
            self.rag.release(candidate, resource)
            self.rag.add_request(candidate, resource)
            skipped_higher = True

        return self._resolve_gdl_exhausted(process, resource, waiters,
                                           runs, passes)

    def _resolve_gdl_exhausted(self, process: str, resource: str,
                               waiters: list, runs: int,
                               passes: int) -> Decision:
        """No candidate could take the resource without a G-dl.

        Algorithm 3's livelock resolution: ask the lowest-priority
        waiter to give up its held resources so the system can make
        progress (Section 4.1).  Overridable by the rejected policies.
        """
        victim = waiters[-1]
        held = self.rag.held_by(victim)
        return self._finish(Decision(
            event="release", process=process, resource=resource,
            action=Action.RELEASED,
            deadlock_kind=DeadlockKind.GRANT,
            livelock=True,
            ask_release=tuple((victim, r) for r in held),
            detection_runs=runs, detection_passes=passes,
        ), waiters_scanned=len(waiters))

    # -- checkpoint protocol ------------------------------------------------------

    def _core_snapshot_payload(self) -> dict:
        """The decision-logic state shared by every implementation."""
        return {
            "processes": list(self.rag.processes),
            "resources": list(self.rag.resources),
            "priorities": sorted(
                [p, pri] for p, pri in self.priorities.items()),
            "livelock_threshold": self.livelock_threshold,
            "rag": self.rag.snapshot_state(),
            "giveup_counts": sorted(
                [p, q, count]
                for (p, q), count in self._giveup_counts.items()),
            "stats": stats_to_payload(self.stats),
        }

    def _restore_core_payload(self, state: dict) -> None:
        self.rag = RAG.restore_state(state["rag"])
        self._giveup_counts = {
            (p, q): count for p, q, count in state["giveup_counts"]}
        self.stats = stats_from_payload(state["stats"])

    # -- bookkeeping -------------------------------------------------------------

    def _finish(self, decision: Decision, waiters_scanned: int) -> Decision:
        cycles = self._decision_cycles(decision.detection_runs,
                                       decision.detection_passes,
                                       waiters_scanned)
        final = dataclasses.replace(decision, cycles=cycles)
        self.stats.note(final)
        return final


class SoftwareDAA(AvoidanceCore):
    """Algorithm 3 executed in software on a PE (configuration RTOS3).

    Detection inside a decision costs the full software PDDA time; the
    decision adds request bookkeeping, a priority comparison and the
    grant search over waiters.
    """

    def _decision_cycles(self, detection_runs: int, detection_passes: int,
                         waiters_scanned: int) -> float:
        m = self.rag.num_resources
        n = self.rag.num_processes
        detect_cycles = sum(
            software_detection_cycles(m, n, 0) for _ in range(detection_runs))
        detect_cycles += (detection_passes * m * n
                          * calibration.SW_PDDA_CELL_CYCLES)
        # Every software decision walks the allocation matrix once to
        # update availability/bookkeeping structures, even when the
        # request can be granted immediately — this is why the paper's
        # software DAA averages ~2100 cycles across *all* invocations.
        bookkeeping = m * n * calibration.SW_PDDA_CELL_CYCLES
        return (calibration.SW_DAA_OVERHEAD_CYCLES
                + bookkeeping
                + detect_cycles
                + waiters_scanned * calibration.SW_DAA_WAITER_SCAN_CYCLES)

    # -- checkpoint protocol ------------------------------------------------------

    SNAPSHOT_KIND = "deadlock.software_daa"

    def snapshot_state(self) -> dict:
        """Versioned, hashed snapshot (see :mod:`repro.checkpoint`)."""
        from repro.checkpoint.protocol import snapshot_envelope
        return snapshot_envelope(self.SNAPSHOT_KIND,
                                 self._core_snapshot_payload())

    @classmethod
    def restore_state(cls, envelope: dict) -> "SoftwareDAA":
        from repro.checkpoint.protocol import open_envelope
        state = open_envelope(envelope, kind=cls.SNAPSHOT_KIND)
        core = cls(state["processes"], state["resources"],
                   dict(map(tuple, state["priorities"])),
                   livelock_threshold=state["livelock_threshold"])
        core._restore_core_payload(state)
        return core
