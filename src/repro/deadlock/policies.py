"""The two deadlock-avoidance approaches the paper rejected.

Section 4.3.1: "We initially considered two other deadlock avoidance
approaches but found Algorithm 3 to be better because it resolves
livelock more actively and efficiently than two other approaches [28]."
Reference [28] describes them as (i) a *requester-always-yields* policy
and (ii) a plain *deny-and-retry* policy.  Both are implemented here so
the design choice can be ablated (see
``benchmarks/test_bench_ablation_policies.py`` and
``repro.experiments.ablation_policies``):

* :class:`RequesterYieldsDAA` — on R-dl the requester *always* gives up
  its held resources, regardless of priorities, and no lower-priority
  grant fallback is attempted on G-dl (the released resource simply
  stays idle).  Starvation-prone: a low-priority process can be forced
  to yield forever, and a high-priority process wastes its own held
  work.
* :class:`DenyRetryDAA` — on R-dl the request is denied outright (the
  requester keeps what it holds and must retry later); on G-dl the
  resource is left idle.  Deadlock-free but passive: conflicts are
  never actively resolved, so the same denial can repeat indefinitely —
  the livelock Definition 2 describes.

Both subclasses inherit the full detection machinery (and hence cost
models) from :class:`~repro.deadlock.daa.AvoidanceCore`; only the
conflict-resolution hooks differ, which is exactly the comparison the
paper made.
"""

from __future__ import annotations

from repro.deadlock.daa import (
    Action,
    AvoidanceCore,
    Decision,
    DeadlockKind,
    SoftwareDAA,
)


class RequesterYieldsDAA(SoftwareDAA):
    """Rejected approach (i): the requester always yields on R-dl."""

    gdl_fallback = False

    def _resolve_rdl(self, process: str, resource: str, owner: str,
                     runs: int, passes: int) -> Decision:
        # Roll the tentative request back and demand the requester's
        # held resources — even when the requester outranks the owner.
        self.rag.remove_request(process, resource)
        key = (process, resource)
        self._giveup_counts[key] = self._giveup_counts.get(key, 0) + 1
        livelock = self._giveup_counts[key] >= self.livelock_threshold
        held = self.rag.held_by(process)
        return self._finish(Decision(
            event="request", process=process, resource=resource,
            action=Action.GIVE_UP,
            deadlock_kind=DeadlockKind.REQUEST,
            livelock=livelock,
            ask_release=tuple((process, r) for r in held),
            detection_runs=runs, detection_passes=passes,
        ), waiters_scanned=0)

    def _resolve_gdl_exhausted(self, process: str, resource: str,
                               waiters: list, runs: int,
                               passes: int) -> Decision:
        # Leave the resource idle; waiters keep waiting.
        return self._finish(Decision(
            event="release", process=process, resource=resource,
            action=Action.RELEASED,
            deadlock_kind=DeadlockKind.GRANT,
            detection_runs=runs, detection_passes=passes,
        ), waiters_scanned=len(waiters))


class DenyRetryDAA(SoftwareDAA):
    """Rejected approach (ii): deny on R-dl; never demand releases."""

    gdl_fallback = False

    def _resolve_rdl(self, process: str, resource: str, owner: str,
                     runs: int, passes: int) -> Decision:
        # Roll back and deny: the requester keeps its holdings and must
        # simply try again later.
        self.rag.remove_request(process, resource)
        key = (process, resource)
        self._giveup_counts[key] = self._giveup_counts.get(key, 0) + 1
        livelock = self._giveup_counts[key] >= self.livelock_threshold
        return self._finish(Decision(
            event="request", process=process, resource=resource,
            action=Action.DENIED,
            deadlock_kind=DeadlockKind.REQUEST,
            livelock=livelock,
            detection_runs=runs, detection_passes=passes,
        ), waiters_scanned=0)

    def _resolve_gdl_exhausted(self, process: str, resource: str,
                               waiters: list, runs: int,
                               passes: int) -> Decision:
        return self._finish(Decision(
            event="release", process=process, resource=resource,
            action=Action.RELEASED,
            deadlock_kind=DeadlockKind.GRANT,
            detection_runs=runs, detection_passes=passes,
        ), waiters_scanned=len(waiters))


#: name -> policy class, for sweeps and the ablation experiment.
POLICIES = {
    "algorithm3": SoftwareDAA,
    "requester-yields": RequesterYieldsDAA,
    "deny-retry": DenyRetryDAA,
}


__all__ = ["RequesterYieldsDAA", "DenyRetryDAA", "POLICIES",
           "AvoidanceCore"]
