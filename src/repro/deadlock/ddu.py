"""The Deadlock Detection Unit hardware model (Sections 4.2.2-4.2.3).

The DDU is an m x n array of 2-bit matrix cells plus two weight vectors
(one ``(tau, phi)`` pair per row and per column) and one decide cell
(Figure 13).  Each hardware cycle it evaluates — *in parallel* — the
bit-wise-OR, XOR and AND reductions of Equations 3-6 over the whole
matrix, then either clears every terminal row/column (one terminal
reduction step, Definition 12) or, if no terminal flags are set, latches
the decide-cell output ``D`` of Equation 7.

This model executes exactly the per-cycle logic of the RTL, so the
iteration counts it reports are the hardware's, not an estimate.  The
latency model is one bus cycle per evaluation pass
(:data:`repro.calibration.DDU_CYCLES_PER_ITERATION`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro import calibration
from repro.errors import ConfigurationError
from repro.obs import NULL_OBS, Observability
from repro.rag.bitmatrix import (
    AnyStateMatrix,
    BitMatrix,
    as_backend_matrix,
    matrix_class,
    resolve_backend,
)
from repro.rag.graph import RAG
from repro.rag.matrix import CellState


@dataclass(frozen=True)
class WeightCell:
    """One weight cell: terminal flag tau and connect flag phi."""

    terminal: bool
    connect: bool


@dataclass(frozen=True)
class HardwareDetection:
    """Result latched by the decide cell after a detection run."""

    deadlock: bool
    #: Terminal reduction steps performed (k of Definition 13).
    iterations: int
    #: Evaluation passes = iterations + the final no-terminal pass.
    passes: int
    #: Modelled latency in bus cycles.
    cycles: float
    residual: AnyStateMatrix


class DDU:
    """A Deadlock Detection Unit synthesized for ``m`` x ``n``.

    The unit's register file *is* the system state matrix: the RTOS (or
    the enclosing DAU) writes request/grant edges through
    :meth:`set_request` / :meth:`set_grant` / :meth:`clear_edge`, and
    :meth:`detect` runs the parallel reduction on a working copy,
    leaving the registered state intact — exactly how the RTL separates
    the register file from the reduction lattice.
    """

    def __init__(self, num_resources: int, num_processes: int,
                 obs: Optional[Observability] = None,
                 backend: Optional[str] = None) -> None:
        if num_resources < 1 or num_processes < 1:
            raise ConfigurationError("DDU needs at least a 1x1 matrix")
        self.m = num_resources
        self.n = num_processes
        #: Matrix representation the register file and reductions use
        #: (see :mod:`repro.rag.bitmatrix`).
        self.backend = resolve_backend(backend)
        self.matrix: AnyStateMatrix = matrix_class(self.backend)(
            num_resources, num_processes)
        #: Fault injector hook (:mod:`repro.faults`); ``None`` keeps
        #: every hook site to a single attribute test.
        self.faults = None
        #: Previous detection, re-published by a stale-status fault.
        self._last_result: Optional[HardwareDetection] = None
        #: Detection invocations since construction (status counter).
        self.invocations = 0
        #: Total modelled busy cycles since construction.
        self.busy_cycles = 0.0
        self.obs = obs if obs is not None else NULL_OBS
        metrics = self.obs.metrics
        self._m_invocations = metrics.counter(
            "ddu.invocations", "detection runs")
        self._m_iterations = metrics.histogram(
            "ddu.iterations", "terminal-reduction iterations per run",
            bounds=(0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16))
        self._m_cycles = metrics.histogram(
            "ddu.cycles", "modelled latency per detection run")
        self._m_fast_detections = metrics.counter(
            "matrix.fastpath.detections",
            "detection runs executed on the bitmask kernel")
        self._m_fast_passes = metrics.counter(
            "matrix.fastpath.passes",
            "bitmask evaluation passes (O(m+n) each)")
        self._m_fast_cleared = metrics.counter(
            "matrix.fastpath.cleared_edges",
            "edges removed by bitmask terminal reduction")

    # -- sizing -----------------------------------------------------------

    @property
    def iteration_bound(self) -> int:
        """Upper bound on reduction iterations: max(2, 2*min(m, n) - 3).

        The proven O(min(m, n)) bound of reference [29] is
        ``2*min(m, n) - 3``; at min = 2 the true worst case is 2 (Table
        1's own 2x3 row reports 2), hence the floor.  A 1-row or
        1-column matrix always reduces in a single iteration (every
        edge sits in a trivially terminal row/column).  The unit
        terminates within this many iterations plus one final
        no-terminal evaluation pass.
        """
        smallest = min(self.m, self.n)
        if smallest == 1:
            return 1
        return max(2, 2 * smallest - 3)

    # -- register-file interface ----------------------------------------------

    def load(self, source: Union[RAG, AnyStateMatrix]) -> None:
        """Latch a complete state into the register file."""
        matrix = as_backend_matrix(source, self.backend)
        if (matrix.m, matrix.n) != (self.m, self.n):
            raise ConfigurationError(
                f"state is {matrix.m}x{matrix.n}, unit is {self.m}x{self.n}")
        if self.faults is not None:
            from repro.faults.injector import force_cell
            for spec in self.faults.fire("ddu.command"):
                if spec.kind == "drop":
                    # The command write is lost on the port; the
                    # register file keeps whatever it held before.
                    return
                if spec.kind == "corrupt":
                    force_cell(matrix,
                               int(spec.params.get("row", 0)) % self.m,
                               int(spec.params.get("col", 0)) % self.n,
                               str(spec.params.get("value", "r")))
        self.matrix = matrix

    def respond(self) -> bool:
        """Poll the unit's ready line (False = the unit is hung)."""
        if self.faults is not None:
            for spec in self.faults.fire("ddu.hang"):
                if spec.kind == "hang":
                    return False
        return True

    def set_request(self, resource: int, process: int) -> None:
        self.matrix.set_request(resource, process)

    def set_grant(self, resource: int, process: int) -> None:
        self.matrix.set_grant(resource, process)

    def clear_edge(self, resource: int, process: int) -> None:
        self.matrix.clear(resource, process)

    def cell(self, resource: int, process: int) -> CellState:
        return self.matrix.get(resource, process)

    # -- weight vectors (Part 2 of Figure 13) ------------------------------------

    def row_weights(self, matrix: Optional[AnyStateMatrix] = None
                    ) -> list[WeightCell]:
        """The row weight vector W^r of Equation 9."""
        matrix = matrix if matrix is not None else self.matrix
        return [WeightCell(matrix.row_terminal(s), matrix.row_connect(s))
                for s in range(self.m)]

    def column_weights(self, matrix: Optional[AnyStateMatrix] = None
                       ) -> list[WeightCell]:
        """The column weight vector W^c of Equation 8."""
        matrix = matrix if matrix is not None else self.matrix
        return [WeightCell(matrix.column_terminal(t), matrix.column_connect(t))
                for t in range(self.n)]

    # -- detection -----------------------------------------------------------

    def detect(self) -> HardwareDetection:
        """Run the parallel reduction to completion (Algorithm 1 + 2).

        One evaluation pass per hardware cycle: compute all weight cells
        in parallel; while any terminal flag is set (T_iter of Equation
        5), clear the flagged rows/columns and go again; once T_iter is
        0 the decide cell latches D (Equation 7).
        """
        work = self.matrix.copy()
        if self.faults is not None:
            from repro.faults.injector import force_cell
            for spec in self.faults.fire("ddu.matrix"):
                # transient and stuck differ only in duration: both
                # upset one 2-bit cell of the reduction lattice.
                force_cell(work,
                           int(spec.params.get("row", 0)) % self.m,
                           int(spec.params.get("col", 0)) % self.n,
                           str(spec.params.get("value", "r")))
        fastpath = isinstance(work, BitMatrix)
        if fastpath:
            # At the fixpoint no terminal flags remain, so the decide
            # cell's OR-of-connect-flags is 1 iff any edge survived —
            # deadlock reduces to a non-empty residual.
            edges_before = work.edge_count
            iterations, passes = work.reduce()
            deadlock = not work.is_empty()
        else:
            iterations = 0
            passes = 0
            while True:
                passes += 1
                rows = self.row_weights(work)
                cols = self.column_weights(work)
                t_iter = (any(w.terminal for w in rows)
                          or any(w.terminal for w in cols))
                if not t_iter:
                    deadlock = (any(w.connect for w in rows)
                                or any(w.connect for w in cols))
                    break
                for s, w in enumerate(rows):
                    if w.terminal:
                        work.clear_row(s)
                for t, w in enumerate(cols):
                    if w.terminal:
                        work.clear_column(t)
                iterations += 1
        cycles = (passes * calibration.DDU_CYCLES_PER_ITERATION
                  + calibration.DDU_FIXED_CYCLES)
        self.invocations += 1
        self.busy_cycles += cycles
        if self.obs.enabled:
            self._m_invocations.inc()
            self._m_iterations.observe(iterations)
            self._m_cycles.observe(cycles)
            if fastpath:
                self._m_fast_detections.inc()
                self._m_fast_passes.inc(passes)
                self._m_fast_cleared.inc(edges_before - work.edge_count)
        result = HardwareDetection(
            deadlock=deadlock,
            iterations=iterations,
            passes=passes,
            cycles=cycles,
            residual=work,
        )
        if self.faults is not None:
            for spec in self.faults.fire("ddu.status"):
                if spec.kind == "stale" and self._last_result is not None:
                    stale = self._last_result
                    self._last_result = result
                    return stale
        self._last_result = result
        return result

    # -- checkpoint protocol ----------------------------------------------------

    SNAPSHOT_KIND = "deadlock.ddu"

    def snapshot_state(self) -> dict:
        """Versioned, hashed snapshot of the register file and counters.

        Captures the latched matrix, the status counters, and the
        previous detection (which a ``ddu.status`` stale fault would
        republish), so a restored unit answers the next command exactly
        as the original would have.
        """
        from repro.checkpoint.protocol import snapshot_envelope
        last = self._last_result
        last_state = None
        if last is not None:
            last_state = {
                "deadlock": last.deadlock,
                "iterations": last.iterations,
                "passes": last.passes,
                "cycles": last.cycles,
                "residual": last.residual.snapshot_state(),
            }
        return snapshot_envelope(self.SNAPSHOT_KIND, {
            "m": self.m,
            "n": self.n,
            "backend": self.backend,
            "matrix": self.matrix.snapshot_state(),
            "invocations": self.invocations,
            "busy_cycles": self.busy_cycles,
            "last_result": last_state,
        })

    @classmethod
    def restore_state(cls, envelope: dict,
                      obs: Optional[Observability] = None) -> "DDU":
        """Rebuild a DDU; the matrix is written to the register file
        directly (bypassing :meth:`load`, which fires command-fault
        hooks — restoring must not consume fault-plan visits)."""
        from repro.checkpoint.protocol import open_envelope
        state = open_envelope(envelope, kind=cls.SNAPSHOT_KIND)
        unit = cls(state["m"], state["n"], obs=obs,
                   backend=state["backend"])
        unit.matrix = matrix_class(unit.backend).restore_state(
            state["matrix"])
        unit.invocations = state["invocations"]
        unit.busy_cycles = state["busy_cycles"]
        last = state["last_result"]
        if last is not None:
            unit._last_result = HardwareDetection(
                deadlock=last["deadlock"],
                iterations=last["iterations"],
                passes=last["passes"],
                cycles=last["cycles"],
                residual=matrix_class(unit.backend).restore_state(
                    last["residual"]),
            )
        return unit

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<DDU {self.m}x{self.n} edges={self.matrix.edge_count} "
                f"invocations={self.invocations}>")
