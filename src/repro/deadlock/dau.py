"""The Deadlock Avoidance Unit hardware model (Section 4.3.2, Figure 14).

The DAU consists of four parts: an embedded :class:`~repro.deadlock.ddu.DDU`,
command registers (one per PE), status registers (one per PE) and the
DAA finite state machine.  PEs write *request*/*release* commands to
their command register; the FSM runs Algorithm 3 — using the DDU for
every tentative-grant deadlock check — and publishes the outcome in the
status register (fields *done, busy, successful, pending, give-up,
which-process, which-resource, livelock, G-dl, R-dl*).

The latency model is structural:

    cycles = DAU_FSM_CYCLES + sum of embedded-DDU passes

which reproduces the paper's worst case of ``6 x 5 + 8 = 38`` steps for
a 5x5 unit (five tentative grants of up to six DDU iterations each plus
the FSM overhead) and the ~7-cycle averages of Tables 7 and 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro import calibration
from repro.deadlock.daa import Action, AvoidanceCore, Decision, DeadlockKind
from repro.deadlock.ddu import DDU
from repro.errors import ResourceProtocolError
from repro.obs import NULL_OBS, Observability
from repro.rag.bitmatrix import AnyStateMatrix


@dataclass
class StatusRegister:
    """Per-PE status register contents (Section 4.3.2)."""

    done: bool = False
    busy: bool = False
    successful: bool = False
    pending: bool = False
    give_up: bool = False
    which_process: str = ""
    which_resource: str = ""
    livelock: bool = False
    g_dl: bool = False
    r_dl: bool = False
    ask_release: tuple = ()

    def clear(self) -> None:
        self.__init__()


@dataclass(frozen=True)
class CommandRecord:
    """One command as latched by a command register."""

    pe: str
    op: str            # "request" | "release"
    process: str
    resource: str


class DAU(AvoidanceCore):
    """The Deadlock Avoidance Unit for a fixed process/resource census.

    In addition to the :class:`AvoidanceCore` API (``request`` /
    ``release`` returning :class:`Decision`), the DAU exposes the
    memory-mapped view the RTOS uses: :meth:`write_command` +
    :meth:`read_status`.
    """

    def __init__(self, processes: Iterable[str], resources: Iterable[str],
                 priorities: Mapping[str, int],
                 livelock_threshold: int = 3,
                 obs: Optional[Observability] = None) -> None:
        super().__init__(processes, resources, priorities,
                         livelock_threshold=livelock_threshold)
        self.obs = obs if obs is not None else NULL_OBS
        self.ddu = DDU(self.rag.num_resources, self.rag.num_processes,
                       obs=self.obs)
        self.status: dict[str, StatusRegister] = {
            p: StatusRegister() for p in self.rag.processes}
        self.command_log: list[CommandRecord] = []
        #: Fault injector hook (:mod:`repro.faults`); installed on the
        #: DAU and its embedded DDU together.
        self.faults = None
        metrics = self.obs.metrics
        self._m_decisions = metrics.counter(
            "dau.decisions", "FSM request/release decisions")
        self._m_decision_cycles = metrics.histogram(
            "dau.decision_cycles", "modelled FSM steps per decision",
            bounds=(0, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96))

    # -- detection backend: the embedded DDU -------------------------------------

    def _run_detection(self, matrix: AnyStateMatrix) -> tuple[bool, int]:
        self.ddu.load(matrix)
        result = self.ddu.detect()
        return (result.deadlock, result.passes)

    def _decision_cycles(self, detection_runs: int, detection_passes: int,
                         waiters_scanned: int) -> float:
        # The FSM walks waiters while the DDU re-checks; the per-waiter
        # work is already counted in the extra detection passes.
        return (calibration.DAU_FSM_CYCLES
                + detection_passes * calibration.DDU_CYCLES_PER_ITERATION)

    # -- sizing claims -------------------------------------------------------------

    @property
    def worst_case_steps(self) -> int:
        """Worst-case steps: DDU worst iterations x candidate grants + FSM.

        Table 2 reports ``6 * 5 + 8 = 38`` for the 5x5 unit; the general
        form is ``ddu_worst_iterations * n + (DAU_FSM_CYCLES + 4)`` where
        the +4 covers the command latch / status drive steps the paper
        folds into its "8".
        """
        from repro.deadlock.synthesis import worst_case_iterations
        ddu_worst = worst_case_iterations(self.rag.num_resources,
                                          self.rag.num_processes)
        return ddu_worst * self.rag.num_processes + calibration.DAU_FSM_CYCLES + 4

    # -- instrumented AvoidanceCore API ----------------------------------------------

    def request(self, process: str, resource: str) -> Decision:
        decision = super().request(process, resource)
        self._observe(decision)
        return decision

    def release(self, process: str, resource: str) -> Decision:
        decision = super().release(process, resource)
        self._observe(decision)
        return decision

    def _observe(self, decision: Decision) -> None:
        if self.obs.enabled:
            self._m_decisions.inc()
            self._m_decision_cycles.observe(decision.cycles)

    # -- memory-mapped command interface --------------------------------------------

    def respond(self) -> bool:
        """Poll the unit's ready line (False = the FSM is hung)."""
        if self.faults is not None:
            for spec in self.faults.fire("dau.hang"):
                if spec.kind == "hang":
                    return False
        return True

    def write_command(self, pe: str, op: str, process: str,
                      resource: str) -> Optional[Decision]:
        """Latch a command from a PE, run the FSM, publish status.

        ``pe`` is the issuing processing element's name (used only for
        status routing); ``op`` is ``"request"`` or ``"release"``.
        Returns ``None`` when a ``dau.command`` *drop* fault eats the
        write — the status register then never leaves *busy*, which is
        how the RTOS notices.
        """
        if process not in self.status:
            raise ResourceProtocolError(f"unknown process {process!r}")
        if op not in ("request", "release"):
            raise ResourceProtocolError(f"unknown DAU command {op!r}")
        self.command_log.append(CommandRecord(pe, op, process, resource))
        register = self.status[process]
        register.clear()
        register.busy = True
        if self.faults is not None:
            for spec in self.faults.fire("dau.command"):
                if spec.kind == "drop":
                    return None
                if spec.kind == "corrupt":
                    # A flipped bit in the command register's resource
                    # field selects another (valid) resource index.
                    resources = self.rag.resources
                    wanted = spec.params.get("resource")
                    if wanted in resources:
                        resource = wanted
                    elif resource in resources:
                        index = resources.index(resource)
                        resource = resources[(index + 1) % len(resources)]
        if op == "request":
            decision = self.request(process, resource)
        else:
            decision = self.release(process, resource)
        self._publish(register, decision)
        return decision

    def read_status(self, process: str) -> StatusRegister:
        if process not in self.status:
            raise ResourceProtocolError(f"unknown process {process!r}")
        return self.status[process]

    # -- checkpoint protocol --------------------------------------------------------

    SNAPSHOT_KIND = "deadlock.dau"

    def snapshot_state(self) -> dict:
        """Versioned, hashed snapshot of the whole unit.

        Captures the DAA core (RAG, give-up counters, decision log), the
        embedded DDU, every per-PE status register, and the command log —
        the pending command/status ports of Section 4.3.2 — so a
        restored unit answers the next ``write_command`` exactly as the
        original would have.
        """
        from repro.checkpoint.protocol import snapshot_envelope
        state = self._core_snapshot_payload()
        state["ddu"] = self.ddu.snapshot_state()
        state["status"] = {
            p: {
                "done": r.done,
                "busy": r.busy,
                "successful": r.successful,
                "pending": r.pending,
                "give_up": r.give_up,
                "which_process": r.which_process,
                "which_resource": r.which_resource,
                "livelock": r.livelock,
                "g_dl": r.g_dl,
                "r_dl": r.r_dl,
                "ask_release": [list(pair) for pair in r.ask_release],
            }
            for p, r in self.status.items()
        }
        state["command_log"] = [
            {"pe": c.pe, "op": c.op, "process": c.process,
             "resource": c.resource}
            for c in self.command_log]
        return snapshot_envelope(self.SNAPSHOT_KIND, state)

    @classmethod
    def restore_state(cls, envelope: dict,
                      obs: Optional[Observability] = None) -> "DAU":
        from repro.checkpoint.protocol import open_envelope
        state = open_envelope(envelope, kind=cls.SNAPSHOT_KIND)
        unit = cls(state["processes"], state["resources"],
                   dict(map(tuple, state["priorities"])),
                   livelock_threshold=state["livelock_threshold"],
                   obs=obs)
        unit._restore_core_payload(state)
        unit.ddu = DDU.restore_state(state["ddu"], obs=unit.obs)
        for p, fields in state["status"].items():
            register = unit.status[p]
            register.done = fields["done"]
            register.busy = fields["busy"]
            register.successful = fields["successful"]
            register.pending = fields["pending"]
            register.give_up = fields["give_up"]
            register.which_process = fields["which_process"]
            register.which_resource = fields["which_resource"]
            register.livelock = fields["livelock"]
            register.g_dl = fields["g_dl"]
            register.r_dl = fields["r_dl"]
            register.ask_release = tuple(
                tuple(pair) for pair in fields["ask_release"])
        unit.command_log = [
            CommandRecord(c["pe"], c["op"], c["process"], c["resource"])
            for c in state["command_log"]]
        return unit

    def _publish(self, register: StatusRegister, decision: Decision) -> None:
        register.busy = False
        register.done = True
        register.successful = decision.action in (Action.GRANTED,
                                                  Action.HANDED_OFF,
                                                  Action.RELEASED)
        register.pending = decision.action is Action.PENDING
        register.give_up = decision.action is Action.GIVE_UP
        register.which_process = (decision.granted_to
                                  or decision.process)
        register.which_resource = decision.resource
        register.livelock = decision.livelock
        register.g_dl = decision.deadlock_kind is DeadlockKind.GRANT
        register.r_dl = decision.deadlock_kind is DeadlockKind.REQUEST
        register.ask_release = decision.ask_release
