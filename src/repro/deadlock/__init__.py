"""The paper's core contribution: deadlock detection and avoidance.

* :mod:`repro.deadlock.pdda` — the Parallel Deadlock Detection Algorithm
  (Algorithms 1 and 2) with the software cycle-cost model used for the
  RTOS1 comparisons;
* :mod:`repro.deadlock.ddu` — the Deadlock Detection Unit hardware model
  (Sections 4.2.2-4.2.3): matrix cells, weight cells, decide cell, one
  parallel reduction iteration per hardware cycle;
* :mod:`repro.deadlock.daa` — the Deadlock Avoidance Algorithm
  (Algorithm 3) with R-dl / G-dl distinction and livelock resolution;
* :mod:`repro.deadlock.dau` — the Deadlock Avoidance Unit hardware model
  (Section 4.3.2): DDU + command/status registers + FSM;
* :mod:`repro.deadlock.synthesis` — the area / lines-of-Verilog /
  worst-case-iteration models reproducing Tables 1 and 2.
"""

from repro.deadlock.pdda import (
    DetectionResult,
    ReductionResult,
    pdda_detect,
    software_detection_cycles,
    terminal_reduction,
)
from repro.deadlock.ddu import DDU, HardwareDetection
from repro.deadlock.ddu_rtl import StructuralDDU
from repro.deadlock.generator import (
    DeadlockUnitConfig,
    generate_dau,
    generate_ddu,
)
from repro.deadlock.daa import (
    Action,
    AvoidanceCore,
    Decision,
    DeadlockKind,
    SoftwareDAA,
)
from repro.deadlock.dau import DAU
from repro.deadlock.dau_fsm import FSMDAU
from repro.deadlock.multiunit_avoidance import MultiUnitAvoider
from repro.deadlock.policies import DenyRetryDAA, POLICIES, RequesterYieldsDAA
from repro.deadlock.recovery import (
    RecoveryManager,
    RecoveryPlan,
    apply_plan,
    plan_recovery,
)
from repro.deadlock.synthesis import (
    DAU_SYNTHESIS,
    DDU_SYNTHESIS_TABLE,
    SynthesisEstimate,
    dau_synthesis,
    ddu_synthesis,
    worst_case_iterations,
)

__all__ = [
    "pdda_detect",
    "terminal_reduction",
    "software_detection_cycles",
    "DetectionResult",
    "ReductionResult",
    "DDU",
    "HardwareDetection",
    "StructuralDDU",
    "generate_ddu",
    "generate_dau",
    "DeadlockUnitConfig",
    "AvoidanceCore",
    "SoftwareDAA",
    "Decision",
    "Action",
    "DeadlockKind",
    "DAU",
    "FSMDAU",
    "RequesterYieldsDAA",
    "DenyRetryDAA",
    "MultiUnitAvoider",
    "POLICIES",
    "RecoveryManager",
    "RecoveryPlan",
    "plan_recovery",
    "apply_plan",
    "ddu_synthesis",
    "dau_synthesis",
    "worst_case_iterations",
    "SynthesisEstimate",
    "DDU_SYNTHESIS_TABLE",
    "DAU_SYNTHESIS",
]
