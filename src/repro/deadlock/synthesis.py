"""Synthesis-result models for the DDU and DAU (Tables 1 and 2).

The paper synthesized the Verilog units with Synopsys Design Compiler
(AMIS 0.3um library for the DDU, QualCore 0.25um for the DAU).  Design
Compiler and the cell libraries are unavailable, so this module provides
a **cell-census model** fitted to the published points:

* lines of Verilog  ~=  cells + 1.2 * (rows + columns) + 36
* NAND2-equivalent area  ~=  5.88 * cells - 8.04 * (rows + columns) + 241

where ``cells = processes * resources``.  The five configurations the
paper publishes (Table 1) are returned *exactly* — they are calibration
anchors, with the small model residual recorded per point — while any
other size gets the fitted estimate.  This substitution is documented in
DESIGN.md: the paper's area claims are reproduced by construction at the
published sizes and by interpolation elsewhere.

The *worst-case iteration* column of Table 1 follows
``max(2, 2 * min(m, n) - 4)`` reduction iterations; together with the
final no-terminal pass this matches the proven O(min(m, n)) step bound
``2 * min(m, n) - 3`` of reference [29].
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import calibration
from repro.errors import ConfigurationError

# Fitted cell-census coefficients (least squares over Table 1's points).
_LOC_PER_CELL = 1.0102
_LOC_PER_ROWCOL = 1.2006
_LOC_BASE = 36.33

_AREA_PER_CELL = 5.8818
_AREA_PER_ROWCOL = -8.0379
_AREA_BASE = 240.69

#: Published Table 1 anchors: (processes, resources) -> (lines, area).
DDU_PUBLISHED: dict[tuple[int, int], tuple[int, int]] = {
    (2, 3): (49, 186),
    (5, 5): (73, 364),
    (7, 7): (102, 455),
    (10, 10): (162, 622),
    (50, 50): (2682, 14142),
}

#: Published Table 2 anchors for the 5x5 DAU.
DAU_DDU_LINES = 203        # DDU as instantiated inside the DAU
DAU_OTHER_LINES = 344      # command/status registers + DAA FSM
DAU_OTHER_AREA = 1472
DAU_TOTAL_AREA = 1836
DAU_WORST_STEPS = 38       # 6 * 5 + 8

# DAU "others" census model, tuned to the 5x5 anchor: per-PE command and
# status registers plus a fixed FSM block.
_DAU_CMD_REG_GATES = 150
_DAU_STATUS_REG_GATES = 80
_DAU_FSM_GATES = 322
_DAU_CMD_REG_LINES = 22
_DAU_STATUS_REG_LINES = 18
_DAU_FSM_LINES = 144


@dataclass(frozen=True)
class SynthesisEstimate:
    """One synthesis-table row."""

    processes: int
    resources: int
    lines_of_verilog: int
    area_nand2: int
    worst_iterations: int
    #: True when this size is a published calibration anchor.
    published: bool
    #: area model estimate minus the reported value (0 off-anchor).
    model_residual: int = 0


def worst_case_iterations(num_resources: int, num_processes: int) -> int:
    """Worst-case terminal-reduction iterations (Table 1 column 4).

    ``max(2, 2 * min(m, n) - 4)`` for systems that can deadlock at all
    (min >= 2); a 1-row or 1-column matrix can never hold a cycle and
    reduces in one iteration.
    """
    smallest = min(num_resources, num_processes)
    if smallest < 1:
        raise ConfigurationError("dimensions must be positive")
    if smallest == 1:
        return 1
    return max(2, 2 * smallest - 4)


def step_bound(num_resources: int, num_processes: int) -> int:
    """The proven hardware step bound 2*min(m, n) - 3 of reference [29].

    Counts evaluation passes including the final no-terminal pass, hence
    one more than :func:`worst_case_iterations` at every published size.
    """
    return max(1, 2 * min(num_resources, num_processes) - 3)


def _model_lines(processes: int, resources: int) -> int:
    cells = processes * resources
    return round(_LOC_PER_CELL * cells
                 + _LOC_PER_ROWCOL * (processes + resources)
                 + _LOC_BASE)


def _model_area(processes: int, resources: int) -> int:
    cells = processes * resources
    return round(_AREA_PER_CELL * cells
                 + _AREA_PER_ROWCOL * (processes + resources)
                 + _AREA_BASE)


def ddu_synthesis(num_processes: int, num_resources: int) -> SynthesisEstimate:
    """Synthesis estimate for a DDU of the given size (Table 1 model)."""
    if num_processes < 1 or num_resources < 1:
        raise ConfigurationError("dimensions must be positive")
    worst = worst_case_iterations(num_resources, num_processes)
    key = (num_processes, num_resources)
    if key in DDU_PUBLISHED:
        lines, area = DDU_PUBLISHED[key]
        residual = _model_area(num_processes, num_resources) - area
        return SynthesisEstimate(num_processes, num_resources, lines, area,
                                 worst, published=True,
                                 model_residual=residual)
    return SynthesisEstimate(
        num_processes, num_resources,
        _model_lines(num_processes, num_resources),
        max(1, _model_area(num_processes, num_resources)),
        worst, published=False)


@dataclass(frozen=True)
class DAUSynthesis:
    """A Table 2-style DAU synthesis summary."""

    processes: int
    resources: int
    ddu_lines: int
    ddu_area: int
    other_lines: int
    other_area: int
    worst_detection_iterations: int
    worst_avoidance_steps: int
    mpsoc_gates: int

    @property
    def total_lines(self) -> int:
        return self.ddu_lines + self.other_lines

    @property
    def total_area(self) -> int:
        return self.ddu_area + self.other_area

    @property
    def area_fraction_of_mpsoc(self) -> float:
        return self.total_area / self.mpsoc_gates


def dau_synthesis(num_processes: int = 5, num_resources: int = 5,
                  mpsoc_gates: int = calibration.MPSOC_TOTAL_GATES
                  ) -> DAUSynthesis:
    """Synthesis estimate for a DAU (Table 2 model).

    The 5x5 point reproduces Table 2 exactly; other sizes scale the
    census model.  Note the paper lists the embedded DDU at 203 lines in
    Table 2 versus 73 in Table 1 — Table 2 counts the DDU wrapper with
    its bus interface; we keep both published values at their anchors.
    """
    ddu = ddu_synthesis(num_processes, num_resources)
    if (num_processes, num_resources) == (5, 5):
        ddu_lines = DAU_DDU_LINES
        other_lines = DAU_OTHER_LINES
        other_area = DAU_OTHER_AREA
    else:
        # The Table 2 wrapper adds 130 lines over the bare Table 1 DDU
        # at the 5x5 anchor; scale the per-PE register census.
        ddu_lines = ddu.lines_of_verilog + 130
        other_lines = (num_processes
                       * (_DAU_CMD_REG_LINES + _DAU_STATUS_REG_LINES)
                       // 10 + _DAU_FSM_LINES)
        other_area = (num_processes
                      * (_DAU_CMD_REG_GATES + _DAU_STATUS_REG_GATES)
                      + _DAU_FSM_GATES)
    worst_detect = worst_case_iterations(num_resources, num_processes)
    return DAUSynthesis(
        processes=num_processes,
        resources=num_resources,
        ddu_lines=ddu_lines,
        ddu_area=ddu.area_nand2,
        other_lines=other_lines,
        other_area=other_area,
        worst_detection_iterations=worst_detect,
        worst_avoidance_steps=worst_detect * num_processes + 8,
        mpsoc_gates=mpsoc_gates,
    )


#: The five Table 1 rows, regenerated through the model.
DDU_SYNTHESIS_TABLE: tuple[SynthesisEstimate, ...] = tuple(
    ddu_synthesis(p, r) for (p, r) in sorted(DDU_PUBLISHED))

#: The Table 2 summary, regenerated through the model.
DAU_SYNTHESIS: DAUSynthesis = dau_synthesis()
