"""Clocked FSM model of the DAU (Table 2's step accounting).

The behavioural :class:`~repro.deadlock.dau.DAU` computes a decision
and *charges* a modelled latency.  This model executes the decision the
way the RTL does — as a finite state machine stepping once per clock —
so the step counts of Table 2 ("# steps in avoidance: 6 x 5 + 8 = 38")
are *measured*, not assumed:

========================  =============================================
state                     work per visit
========================  =============================================
IDLE                      wait for a command strobe
DECODE                    latch command register, classify op   (1 step)
CHECK_AVAIL               availability lookup                   (1 step)
GRANT / MARK_REQUEST      matrix write                          (1 step)
DETECT                    run the embedded DDU; one step per
                          evaluation pass (<= 2*min(m,n)-3 + 1)
RESOLVE                   priority compare / candidate advance  (1 step)
WRITE_STATUS              drive the status register             (1 step)
========================  =============================================

For a release with n waiters the DETECT/RESOLVE pair repeats per
candidate — the ``6 x 5`` of Table 2 — and the fixed states bound the
``+ 8``.  Every command is cross-checked against the behavioural DAU:
same decision, and the measured step count never exceeds
:attr:`~repro.deadlock.dau.DAU.worst_case_steps`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.deadlock.daa import Decision
from repro.deadlock.dau import DAU
from repro.errors import ResourceProtocolError


@dataclass(frozen=True)
class SteppedDecision:
    """A decision plus its measured FSM step count."""

    decision: Decision
    steps: int
    state_trace: tuple


class FSMDAU:
    """Step-accounted DAU: wraps the behavioural core, bills each state.

    ``write_command`` runs the same Algorithm 3 decision as
    :class:`~repro.deadlock.dau.DAU` but derives the step count from an
    explicit state walk driven by the decision's shape (how many DDU
    passes ran, how many candidates the grant search touched).
    """

    #: Fixed states on every command: DECODE, CHECK_AVAIL, matrix
    #: write, WRITE_STATUS.
    FIXED_STATES = ("DECODE", "CHECK_AVAIL", "MATRIX_WRITE",
                    "WRITE_STATUS")

    def __init__(self, processes: Iterable[str], resources: Iterable[str],
                 priorities: Mapping[str, int]) -> None:
        self.core = DAU(processes, resources, priorities)
        self.total_steps = 0
        self.commands = 0
        self.max_steps_seen = 0

    @property
    def worst_case_steps(self) -> int:
        return self.core.worst_case_steps

    def write_command(self, pe: str, op: str, process: str,
                      resource: str) -> SteppedDecision:
        """Execute one command, measuring its FSM steps."""
        if op not in ("request", "release"):
            raise ResourceProtocolError(f"unknown DAU command {op!r}")
        decision = self.core.write_command(pe, op, process, resource)
        trace = self._walk_states(decision)
        steps = len(trace)
        self.total_steps += steps
        self.commands += 1
        self.max_steps_seen = max(self.max_steps_seen, steps)
        if steps > self.worst_case_steps:
            raise ResourceProtocolError(
                f"FSM used {steps} steps, exceeding the Table 2 bound "
                f"{self.worst_case_steps}")
        return SteppedDecision(decision=decision, steps=steps,
                               state_trace=trace)

    def _walk_states(self, decision: Decision) -> tuple:
        """Reconstruct the state sequence the RTL would take.

        The Table 2 accounting: the fixed states (DECODE, CHECK_AVAIL,
        the matrix write, the inter-candidate RESOLVEs and the status
        drive) are the "+8" — exactly 8 in the worst 5-candidate case —
        and each DETECT burst bills the DDU's *reduction iterations*
        (the tentative-grant write overlaps the first evaluation, and
        the final no-terminal pass overlaps the RESOLVE/advance), which
        is the "6 x 5".
        """
        trace = ["DECODE", "CHECK_AVAIL", "MATRIX_WRITE"]
        if decision.detection_runs:
            for index, iterations in enumerate(
                    self._split_iterations(decision)):
                trace.extend(["DETECT"] * iterations)
                if index < decision.detection_runs - 1:
                    trace.append("RESOLVE")
        trace.append("WRITE_STATUS")
        return tuple(trace)

    @staticmethod
    def _split_iterations(decision: Decision) -> list:
        """Per-run DETECT steps: reduction iterations, at least one."""
        runs = decision.detection_runs
        total = decision.detection_passes
        base = total // runs
        remainder = total - base * runs
        passes = [base + (1 if index < remainder else 0)
                  for index in range(runs)]
        return [max(1, count - 1) for count in passes]

    # -- checkpoint protocol ----------------------------------------------------

    SNAPSHOT_KIND = "deadlock.dau_fsm"

    def snapshot_state(self) -> dict:
        """Versioned, hashed snapshot: the wrapped DAU + step counters."""
        from repro.checkpoint.protocol import snapshot_envelope
        return snapshot_envelope(self.SNAPSHOT_KIND, {
            "core": self.core.snapshot_state(),
            "total_steps": self.total_steps,
            "commands": self.commands,
            "max_steps_seen": self.max_steps_seen,
        })

    @classmethod
    def restore_state(cls, envelope: dict) -> "FSMDAU":
        from repro.checkpoint.protocol import open_envelope
        state = open_envelope(envelope, kind=cls.SNAPSHOT_KIND)
        fsm = cls.__new__(cls)
        fsm.core = DAU.restore_state(state["core"])
        fsm.total_steps = state["total_steps"]
        fsm.commands = state["commands"]
        fsm.max_steps_seen = state["max_steps_seen"]
        return fsm

    # -- statistics -------------------------------------------------------------

    @property
    def mean_steps(self) -> float:
        return self.total_steps / self.commands if self.commands else 0.0

    def read_status(self, process: str):
        return self.core.read_status(process)
