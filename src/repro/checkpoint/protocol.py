"""The versioned snapshot envelope shared by every stateful layer.

A snapshot is a plain JSON-safe dict with a fixed shape::

    {
        "schema": "repro.checkpoint/1",
        "schema_version": 1,
        "kind": "deadlock.ddu",
        "state": {...},            # layer-specific, JSON-safe
        "state_hash": "<sha256>",  # over the canonical JSON of "state"
    }

``state_hash`` is a sha256 over the *canonical* JSON encoding of the
``state`` payload (sorted keys, no whitespace) — the same convention the
campaign store uses for ``spec_hash`` and ``results_digest``, so two
snapshots are byte-comparable iff they describe the same state.  The
``kind`` deliberately sits outside the hashed payload: a
:class:`~repro.rag.bitmatrix.BitMatrix` and the
:class:`~repro.rag.matrix.StateMatrix` it mirrors emit *identical*
payloads and therefore identical hashes, which is what makes
backend-conversion invariance checkable.

Versioning/compat rules (documented in ``docs/checkpoint.md``):

* ``schema_version`` is bumped whenever any layer's payload shape
  changes incompatibly.  Readers accept any version ``<=`` their own
  (older payloads must be upgraded in ``open_envelope`` call sites) and
  refuse newer ones with :class:`~repro.errors.CheckpointError`.
* Unknown *extra* keys inside ``state`` are an error — they would change
  the hash — so forward-compatible additions require a version bump.

File I/O is crash-consistent: :func:`write_snapshot` writes to a
temporary sibling, fsyncs, then atomically renames, so a reader never
observes a half-written snapshot (a SIGKILL mid-write leaves either the
old file or nothing).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional

from repro.errors import CheckpointError

#: Bump on any incompatible payload-shape change.
SCHEMA_VERSION = 1

#: The schema tag embedded in every envelope.
SCHEMA = f"repro.checkpoint/{SCHEMA_VERSION}"

_ENVELOPE_KEYS = ("schema", "schema_version", "kind", "state", "state_hash")


def canonical_json(payload: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def state_hash(state: Any) -> str:
    """sha256 of the canonical JSON encoding of a state payload."""
    return hashlib.sha256(canonical_json(state).encode()).hexdigest()


def snapshot_envelope(kind: str, state: dict) -> dict:
    """Wrap a JSON-safe state payload in a versioned, hashed envelope."""
    try:
        digest = state_hash(state)
    except (TypeError, ValueError) as exc:
        raise CheckpointError(
            f"{kind}: snapshot payload is not JSON-safe: {exc}") from exc
    return {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "kind": kind,
        "state": state,
        "state_hash": digest,
    }


def envelope_kind(envelope: dict) -> str:
    """The ``kind`` tag of an envelope (no validation beyond presence)."""
    try:
        return envelope["kind"]
    except (TypeError, KeyError):
        raise CheckpointError("not a checkpoint envelope: missing 'kind'") \
            from None


def open_envelope(envelope: dict, kind: Optional[str] = None) -> dict:
    """Validate an envelope and return its state payload.

    Checks shape, schema version (refusing versions newer than
    :data:`SCHEMA_VERSION`), the recorded ``state_hash`` against a
    recomputation (catching torn or tampered snapshots), and — when
    ``kind`` is given — that the envelope describes that layer.
    """
    if not isinstance(envelope, dict):
        raise CheckpointError(
            f"not a checkpoint envelope: {type(envelope).__name__}")
    missing = [key for key in _ENVELOPE_KEYS if key not in envelope]
    if missing:
        raise CheckpointError(
            f"not a checkpoint envelope: missing {', '.join(missing)}")
    version = envelope["schema_version"]
    if not isinstance(version, int) or version < 1:
        raise CheckpointError(f"bad schema_version {version!r}")
    if version > SCHEMA_VERSION:
        raise CheckpointError(
            f"snapshot schema_version {version} is newer than this "
            f"library's {SCHEMA_VERSION}; upgrade before restoring")
    if kind is not None and envelope["kind"] != kind:
        raise CheckpointError(
            f"expected a {kind!r} snapshot, got {envelope['kind']!r}")
    state = envelope["state"]
    digest = state_hash(state)
    if digest != envelope["state_hash"]:
        raise CheckpointError(
            f"{envelope['kind']}: state_hash mismatch "
            f"(recorded {envelope['state_hash'][:12]}..., "
            f"recomputed {digest[:12]}...) — snapshot is torn or corrupted")
    return state


# -- crash-consistent file I/O ------------------------------------------------


def write_snapshot(path: "Path | str", envelope: dict) -> None:
    """Atomically persist an envelope: tmp file + fsync + rename."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(target.parent), prefix=target.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(canonical_json(envelope))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def read_snapshot(path: "Path | str",
                  kind: Optional[str] = None) -> Optional[dict]:
    """Load an envelope from disk, validating it; ``None`` if absent.

    A file that fails to parse or validate is treated as corrupt and
    raises :class:`~repro.errors.CheckpointError` — callers decide
    whether that means "start over" or "abort".
    """
    target = Path(path)
    try:
        text = target.read_text()
    except FileNotFoundError:
        return None
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"{target}: snapshot file is not valid JSON: {exc}") from exc
    open_envelope(envelope, kind=kind)
    return envelope
