"""Crash-consistent checkpoint/restore across the whole stack.

Every stateful layer implements the same two-method protocol::

    envelope = unit.snapshot_state()        # versioned, hashed, JSON-safe
    clone = UnitClass.restore_state(envelope, ...)

plus this package's generic entry points, which dispatch on the
envelope's ``kind`` tag::

    from repro import checkpoint
    envelope = checkpoint.snapshot_state(unit)
    clone = checkpoint.restore_state(envelope, kernel=kernel)

The registry below maps kinds to dotted class paths and imports them
lazily — layer modules import only
:mod:`repro.checkpoint.protocol`, so there is no import cycle between
this package and the layers it snapshots.

See ``docs/checkpoint.md`` for the schema, the quiescence rules for
coroutine-bearing layers (Engine/Kernel), and the campaign journal +
``resume`` verb built on top.
"""

from __future__ import annotations

import importlib
import inspect
from typing import Any

from repro.checkpoint.protocol import (
    SCHEMA,
    SCHEMA_VERSION,
    canonical_json,
    envelope_kind,
    open_envelope,
    read_snapshot,
    snapshot_envelope,
    state_hash,
    write_snapshot,
)
from repro.checkpoint.scenario import ScenarioCheckpoint
from repro.errors import CheckpointError

#: kind tag -> "module:ClassName" of the restoring class.
RESTORERS: dict[str, str] = {
    "sim.engine": "repro.sim.engine:Engine",
    "rtos.kernel": "repro.rtos.kernel:Kernel",
    "rag.graph": "repro.rag.graph:RAG",
    "rag.matrix": "repro.rag.matrix:StateMatrix",
    "rag.bitmatrix": "repro.rag.bitmatrix:BitMatrix",
    "rag.multiunit": "repro.rag.multiunit:MultiUnitSystem",
    "deadlock.ddu": "repro.deadlock.ddu:DDU",
    "deadlock.dau": "repro.deadlock.dau:DAU",
    "deadlock.dau_fsm": "repro.deadlock.dau_fsm:FSMDAU",
    "deadlock.software_daa": "repro.deadlock.daa:SoftwareDAA",
    "soclc": "repro.soclc.lockcache:SoCLC",
    "socdmmu": "repro.socdmmu.dmmu:SoCDMMU",
    "faults.injector": "repro.faults.injector:FaultInjector",
    "faults.health": "repro.faults.health:UnitHealth",
    "faults.resilient_detector": "repro.faults.resilient:ResilientDetector",
    "faults.resilient_avoider": "repro.faults.resilient:ResilientAvoider",
}


def _restorer(kind: str):
    try:
        dotted = RESTORERS[kind]
    except KeyError:
        raise CheckpointError(f"no restorer registered for kind {kind!r}") \
            from None
    module_name, _, class_name = dotted.partition(":")
    return getattr(importlib.import_module(module_name), class_name)


def snapshot_state(unit: Any) -> dict:
    """Snapshot any unit implementing the protocol."""
    method = getattr(unit, "snapshot_state", None)
    if method is None:
        raise CheckpointError(
            f"{type(unit).__name__} does not implement snapshot_state()")
    return method()


def restore_state(envelope: dict, **context: Any) -> Any:
    """Rebuild a unit from its envelope, dispatching on ``kind``.

    ``context`` carries environment objects some layers need to
    re-attach to (``kernel=`` for SoCLC/SoCDMMU, ``soc=`` for the
    Kernel, ``clock=`` for UnitHealth); keyword arguments a given
    restorer does not accept are dropped, so one context can serve a
    heterogeneous batch of snapshots.
    """
    kind = envelope_kind(envelope)
    cls = _restorer(kind)
    restore = cls.restore_state
    accepted = inspect.signature(restore).parameters
    kwargs = {key: value for key, value in context.items() if key in accepted}
    return restore(envelope, **kwargs)


__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "RESTORERS",
    "CheckpointError",
    "ScenarioCheckpoint",
    "canonical_json",
    "envelope_kind",
    "open_envelope",
    "read_snapshot",
    "restore_state",
    "snapshot_envelope",
    "snapshot_state",
    "state_hash",
    "write_snapshot",
]
