"""Per-scenario checkpoint files for resumable campaign workers.

A :class:`ScenarioCheckpoint` is the handle a campaign worker threads
into a checkpoint-aware checker.  The checker periodically hands it a
JSON-safe state dict (layer envelopes + its own loop counters + the
serialised ``random.Random`` state); the handle persists it atomically
under ``<run>/checkpoints/<scenario>.json``.  After a SIGKILL the
``campaign resume`` verb re-executes the scenario, the checker finds the
file and fast-forwards to the recorded step — replaying the exact same
fault history and RNG draws, so the resumed verdict is bit-identical to
an uninterrupted run.

Checkers opt in by setting ``accepts_checkpoint = True`` on the checker
function; everything else ignores the handle and relies on the
deterministic seed derivation alone (re-execution from scratch is
digest-equivalent for a pure checker).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.checkpoint.protocol import (
    read_snapshot,
    snapshot_envelope,
    write_snapshot,
)
from repro.obs import NULL_OBS

#: Envelope kind for a scenario's in-flight state.
SCENARIO_KIND = "campaign.scenario"

#: Steps between saves when the checker does not choose its own cadence.
DEFAULT_CADENCE = 16


def checkpoint_filename(scenario_id: str) -> str:
    """Stable, path-safe file name for a scenario id."""
    return scenario_id.replace("/", "__") + ".json"


class ScenarioCheckpoint:
    """Atomic save/load/clear of one scenario's in-flight state."""

    def __init__(self, directory: "Path | str", scenario_id: str,
                 cadence: int = DEFAULT_CADENCE, obs=NULL_OBS) -> None:
        self.directory = Path(directory)
        self.scenario_id = scenario_id
        self.cadence = max(1, int(cadence))
        self.path = self.directory / checkpoint_filename(scenario_id)
        self.saves = 0
        self.loads = 0
        metrics = obs.metrics
        self._obs = obs
        self._m_saves = metrics.counter(
            "checkpoint.scenario_saves", "in-flight scenario states persisted")
        self._m_restores = metrics.counter(
            "checkpoint.scenario_restores",
            "scenarios fast-forwarded from a checkpoint")

    def due(self, step: int) -> bool:
        """True when ``step`` lands on the save cadence (and step > 0)."""
        return step > 0 and step % self.cadence == 0

    def save(self, state: dict) -> None:
        """Persist a JSON-safe state dict (atomic write + fsync)."""
        envelope = snapshot_envelope(SCENARIO_KIND, dict(
            state, scenario_id=self.scenario_id))
        write_snapshot(self.path, envelope)
        self.saves += 1
        if self._obs.enabled:
            self._m_saves.inc()
        if self._obs.flight.enabled:
            self._obs.flight.mark(
                "checkpoint_write", actor=self.scenario_id,
                saves=self.saves, path=str(self.path))

    def load(self) -> Optional[dict]:
        """The last saved state, or ``None`` when starting fresh."""
        envelope = read_snapshot(self.path, kind=SCENARIO_KIND)
        if envelope is None:
            return None
        self.loads += 1
        if self._obs.enabled:
            self._m_restores.inc()
        return envelope["state"]

    def clear(self) -> None:
        """Drop the checkpoint once the scenario completes."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
