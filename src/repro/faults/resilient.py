"""Resilient wrappers around the DDU and DAU (failover machinery).

These classes are deliberately kernel-free: they run the hardware unit,
cross-check sampled verdicts against the software algorithms, drive the
health FSM, and *describe* what the invocation cost as a sequence of
:class:`Charge` segments — the resource services (or a unit-level test
harness) then pay those segments in whatever time model they own.

Failover semantics (the paper's partitioning as a runtime mechanism):

* ``ResilientDetector`` — RTOS2's DDU with software PDDA as the twin.
  Detection is stateless (the register file is reloaded from the
  kernel's authoritative RAG every run), so failover is just "stop
  asking the unit"; a scrub reloads the matrix and re-qualifies the
  unit with cross-checked probe detections.
* ``ResilientAvoider`` — RTOS4's DAU with a :class:`SoftwareDAA` twin.
  Avoidance state lives *in* the unit, so failover copies the RAG and
  give-up counters into the twin (RTOS4 -> RTOS3) and fail-back copies
  them back after the scrub's probes come back clean (RTOS3 -> RTOS4).

Published verdicts are always correct by construction: whenever a
cross-check disagrees, the software answer wins and the disagreement
only counts against the unit's health.  Faults cost latency, never
wrong answers — the invariant the ``faults`` campaign grinds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import calibration
from repro.deadlock.daa import Decision, SoftwareDAA
from repro.deadlock.ddu import DDU
from repro.deadlock.pdda import pdda_detect
from repro.faults.health import HealthState, ResiliencePolicy, UnitHealth
from repro.obs import NULL_OBS, Observability
from repro.rag.graph import RAG

#: Charge kinds that count as algorithm cycles (bus segments are paid
#: with the payer's own bus timing and carry no cycle value here;
#: ``bus_burst`` carries a word count in ``cycles``).
ALGO_CHARGE_KINDS = ("unit", "software", "backoff", "timeout")


@dataclass(frozen=True)
class Charge:
    """One cost segment of a resilient invocation.

    ``kind`` is one of ``bus_write``, ``bus_read``, ``bus_burst``
    (cycles = words to move), ``unit`` (unit busy cycles), ``software``
    (PE executes), ``backoff`` (PE executes) or ``timeout`` (the caller
    arms a watchdog and waits out the budget).
    """

    kind: str
    cycles: float


@dataclass(frozen=True)
class DetectOutcome:
    """What one resilient detection invocation produced."""

    deadlock: bool
    #: True when the published verdict came from the hardware unit.
    hardware: bool
    #: Algorithm cycles (unit + software + recovery waits).
    cycles: float
    charges: tuple
    events: tuple


@dataclass(frozen=True)
class AvoidOutcome:
    """What one resilient avoidance command produced."""

    decision: Decision
    hardware: bool
    cycles: float
    charges: tuple
    events: tuple


def _scrub_words(m: int, n: int) -> float:
    """Burst words to reload an m x n register file of 2-bit cells."""
    return float(max(1, -(-(m * n) // 16)))


class _ResilientBase:
    """Shared scratch/bookkeeping for the two wrappers."""

    unit_name = "unit"

    def __init__(self, policy: ResiliencePolicy,
                 obs: Optional[Observability] = None) -> None:
        self.policy = policy
        self.obs = obs if obs is not None else NULL_OBS
        self.health = UnitHealth(
            self.unit_name, fail_threshold=policy.fail_threshold,
            recover_after=policy.recover_after, obs=self.obs)
        self.mode = "hardware"
        self.invocations = 0
        self.crosschecks = 0
        self.failovers = 0
        self.failbacks = 0
        self.scrubs = 0
        #: Flat history of every event string, across invocations.
        self.event_log: list[str] = []
        self._sw_runs = 0
        self._charges: list[Charge] = []
        self._events: list[str] = []
        metrics = self.obs.metrics
        self._m_crosschecks = metrics.counter(
            "faults.crosschecks", "hardware verdicts checked vs software")
        self._m_failovers = metrics.counter(
            "faults.failovers", "hardware->software failovers")
        self._m_failbacks = metrics.counter(
            "faults.failbacks", "software->hardware fail-backs")
        self._m_scrubs = metrics.counter(
            "faults.scrubs", "unit scrub attempts")
        self._m_retries = metrics.counter(
            "faults.retries", "retried unit interactions")

    # -- scratch ----------------------------------------------------------

    def _begin(self) -> None:
        self.invocations += 1
        self._charges = []
        self._events = []

    def _charge(self, kind: str, cycles: float) -> None:
        self._charges.append(Charge(kind, cycles))

    def _event(self, kind: str) -> None:
        self._events.append(kind)

    def _cycles(self) -> float:
        return sum(c.cycles for c in self._charges
                   if c.kind in ALGO_CHARGE_KINDS)

    def _finish_events(self) -> tuple:
        events = tuple(self._events)
        self.event_log.extend(events)
        return events

    def _should_crosscheck(self) -> bool:
        if not self.policy.sample_every:
            return False
        if self.health.state is not HealthState.HEALTHY:
            return True
        return self.invocations % self.policy.sample_every == 0

    def _anomaly(self, reason: str) -> None:
        self.health.anomaly(reason)
        if self.health.failed and self.mode == "hardware":
            self._fail_over(reason)

    def _note_failover(self) -> None:
        self.mode = "software"
        self._sw_runs = 0
        self.failovers += 1
        self._event("failover")
        if self.obs.enabled:
            self._m_failovers.inc()

    def _note_failback(self) -> None:
        self.mode = "hardware"
        self.failbacks += 1
        self._event("failback")
        if self.obs.enabled:
            self._m_failbacks.inc()

    def _note_retry(self, attempt: int) -> None:
        self._charge("backoff", self.policy.retry_backoff_cycles * attempt)
        self._event("retry")
        if self.obs.enabled:
            self._m_retries.inc()

    def note_bus_error(self) -> None:
        """A unit-port bus transaction errored (reported by the payer)."""
        self._anomaly("bus")

    def _fail_over(self, reason: str) -> None:
        raise NotImplementedError

    # -- checkpoint plumbing ----------------------------------------------

    def _base_snapshot_payload(self) -> dict:
        import dataclasses
        return {
            "policy": dataclasses.asdict(self.policy),
            "mode": self.mode,
            "invocations": self.invocations,
            "crosschecks": self.crosschecks,
            "failovers": self.failovers,
            "failbacks": self.failbacks,
            "scrubs": self.scrubs,
            "event_log": list(self.event_log),
            "sw_runs": self._sw_runs,
            "health": self.health.snapshot_state(),
        }

    def _restore_base_payload(self, state: dict) -> None:
        self.mode = state["mode"]
        self.invocations = state["invocations"]
        self.crosschecks = state["crosschecks"]
        self.failovers = state["failovers"]
        self.failbacks = state["failbacks"]
        self.scrubs = state["scrubs"]
        self.event_log = list(state["event_log"])
        self._sw_runs = state["sw_runs"]
        self.health = UnitHealth.restore_state(state["health"],
                                               obs=self.obs)


class ResilientDetector(_ResilientBase):
    """RTOS2's DDU behind retry, cross-check, scrub and failover."""

    unit_name = "ddu"

    def __init__(self, ddu: DDU, policy: Optional[ResiliencePolicy] = None,
                 obs: Optional[Observability] = None) -> None:
        super().__init__(policy if policy is not None
                         else ResiliencePolicy(), obs=obs)
        self.ddu = ddu

    # -- the one entry point ----------------------------------------------

    def detect(self, rag: RAG) -> DetectOutcome:
        """One detection over the authoritative RAG."""
        self._begin()
        if self.mode == "software":
            self._sw_runs += 1
            if self._sw_runs >= self.policy.scrub_after:
                self._sw_runs = 0
                self._scrub(rag)
        if self.mode == "hardware":
            result = self._try_hardware(rag)
            if result is None:
                # The unit gave no usable answer this invocation;
                # detection is stateless, so a one-off software run is
                # safe whether or not the health FSM tripped failover.
                result = (self._software_verdict(rag), False)
        else:
            result = (self._software_verdict(rag), False)
        deadlock, hardware = result
        return DetectOutcome(
            deadlock=deadlock, hardware=hardware, cycles=self._cycles(),
            charges=tuple(self._charges), events=self._finish_events())

    def force_failover(self, reason: str = "forced") -> None:
        """Operator override: stop trusting the unit immediately."""
        while not self.health.failed:
            self.health.anomaly(reason)
        if self.mode == "hardware":
            self._note_failover()
            self.event_log.append("failover")

    # -- hardware path -----------------------------------------------------

    def _try_hardware(self, rag: RAG):
        for attempt in range(self.policy.max_retries + 1):
            if attempt:
                self._note_retry(attempt)
            self._charge("bus_write", 0.0)
            if not self.ddu.respond():
                self._charge("timeout", self.policy.unit_timeout_cycles)
                self._event("anomaly:hang")
                self._anomaly("hang")
                if self.mode == "software":
                    return None
                continue
            self.ddu.load(rag)
            result = self.ddu.detect()
            self._charge("unit", result.cycles)
            self._charge("bus_read", 0.0)
            verdict = result.deadlock
            if self._should_crosscheck():
                sw = pdda_detect(rag)
                self._charge("software", sw.software_cycles)
                self._event("crosscheck")
                self.crosschecks += 1
                if self.obs.enabled:
                    self._m_crosschecks.inc()
                if sw.deadlock != verdict:
                    # Software is authoritative; the unit lied.
                    self._event("anomaly:verdict")
                    self._anomaly("verdict")
                    return (sw.deadlock, False)
                self.health.clean("crosscheck")
            return (verdict, True)
        return None

    def _fail_over(self, reason: str) -> None:
        self._note_failover()

    # -- checkpoint protocol ------------------------------------------------

    SNAPSHOT_KIND = "faults.resilient_detector"

    def snapshot_state(self) -> dict:
        """Versioned, hashed snapshot: wrapper counters + health + DDU."""
        from repro.checkpoint.protocol import snapshot_envelope
        state = self._base_snapshot_payload()
        state["ddu"] = self.ddu.snapshot_state()
        return snapshot_envelope(self.SNAPSHOT_KIND, state)

    @classmethod
    def restore_state(cls, envelope: dict,
                      obs: Optional[Observability] = None
                      ) -> "ResilientDetector":
        from repro.checkpoint.protocol import open_envelope
        state = open_envelope(envelope, kind=cls.SNAPSHOT_KIND)
        detector = cls(DDU.restore_state(state["ddu"]),
                       policy=ResiliencePolicy(**state["policy"]), obs=obs)
        detector._restore_base_payload(state)
        return detector

    def _software_verdict(self, rag: RAG) -> bool:
        sw = pdda_detect(rag)
        self._charge("software", sw.software_cycles)
        self._event("fallback-run")
        return sw.deadlock

    # -- scrub / fail-back -------------------------------------------------

    def _scrub(self, rag: RAG) -> None:
        self._event("scrub")
        self.scrubs += 1
        if self.obs.enabled:
            self._m_scrubs.inc()
        self.health.begin_recovery()
        self._charge("bus_burst", _scrub_words(self.ddu.m, self.ddu.n))
        self._charge("unit", calibration.FAULT_SCRUB_OVERHEAD_CYCLES)
        for _probe in range(self.policy.recover_after):
            if not self.ddu.respond():
                self._charge("timeout", self.policy.unit_timeout_cycles)
                self._event("anomaly:hang")
                self.health.anomaly("hang")
                self._event("scrub-failed")
                return
            self.ddu.load(rag)
            result = self.ddu.detect()
            self._charge("unit", result.cycles)
            sw = pdda_detect(rag)
            self._charge("software", sw.software_cycles)
            if result.deadlock != sw.deadlock:
                self._event("anomaly:verdict")
                self.health.anomaly("verdict")
                self._event("scrub-failed")
                return
            self.health.clean("scrub-probe")
        if self.health.state is HealthState.HEALTHY:
            self._note_failback()


class ResilientAvoider(_ResilientBase):
    """RTOS4's DAU behind cross-check, failover to a SoftwareDAA twin."""

    unit_name = "dau"

    def __init__(self, dau, policy: Optional[ResiliencePolicy] = None,
                 obs: Optional[Observability] = None) -> None:
        super().__init__(policy if policy is not None
                         else ResiliencePolicy(), obs=obs)
        self.dau = dau
        #: The RTOS3 twin; exists only while failed over.
        self.twin: Optional[SoftwareDAA] = None

    @property
    def active_core(self):
        """Whose RAG is authoritative right now (for holder_of etc.)."""
        if self.mode == "software" and self.twin is not None:
            return self.twin
        return self.dau

    # -- the one entry point ----------------------------------------------

    def decide(self, pe: str, op: str, process: str,
               resource: str) -> AvoidOutcome:
        """One request/release command through the resilient path."""
        self._begin()
        if self.mode == "software":
            self._sw_runs += 1
            if self._sw_runs >= self.policy.scrub_after:
                self._sw_runs = 0
                self._scrub()
        if self.mode == "hardware":
            result = self._try_hardware(pe, op, process, resource)
            if result is None:
                # Unlike detection, avoidance state lives in the unit:
                # a decision the unit never saw must move authority to
                # the twin, or the two states diverge.
                if self.mode == "hardware":
                    self._fail_over("retries-exhausted")
                result = (self._software(op, process, resource), False)
        else:
            result = (self._software(op, process, resource), False)
        decision, hardware = result
        return AvoidOutcome(
            decision=decision, hardware=hardware, cycles=self._cycles(),
            charges=tuple(self._charges), events=self._finish_events())

    def force_failover(self, reason: str = "forced") -> None:
        while not self.health.failed:
            self.health.anomaly(reason)
        if self.mode == "hardware":
            self._make_twin()
            self._note_failover()
            self.event_log.append("failover")

    # -- hardware path -----------------------------------------------------

    def _try_hardware(self, pe: str, op: str, process: str, resource: str):
        from repro.errors import ResourceProtocolError
        for attempt in range(self.policy.max_retries + 1):
            if attempt:
                self._note_retry(attempt)
            snap_rag = self.dau.rag.copy()
            snap_giveups = dict(self.dau._giveup_counts)
            self._charge("bus_write", 0.0)
            if not self.dau.respond():
                self._charge("timeout", self.policy.unit_timeout_cycles)
                self._event("anomaly:hang")
                self._anomaly("hang")
                if self.mode == "software":
                    return None
                continue
            try:
                decision = self.dau.write_command(pe, op, process, resource)
            except ResourceProtocolError:
                # A corrupted command drove the FSM into an illegal
                # transition; restore the pre-command state and retry.
                self.dau.rag = snap_rag
                self.dau._giveup_counts = snap_giveups
                self._event("anomaly:command")
                self._anomaly("command")
                if self.mode == "software":
                    return None
                continue
            if decision is None:
                # Command write dropped on the port: the status register
                # never leaves busy, so the RTOS re-polls and re-sends.
                self._charge("bus_read", 0.0)
                self._event("anomaly:command")
                self._anomaly("command")
                if self.mode == "software":
                    return None
                continue
            self._charge("unit", decision.cycles)
            self._charge("bus_read", 0.0)
            if self._should_crosscheck():
                reference = self._reference(snap_rag, snap_giveups)
                ref_decision = (reference.request(process, resource)
                                if op == "request"
                                else reference.release(process, resource))
                self._charge("software", ref_decision.cycles)
                self._event("crosscheck")
                self.crosschecks += 1
                if self.obs.enabled:
                    self._m_crosschecks.inc()
                if not self._decisions_agree(decision, ref_decision):
                    # The unit faulted mid-decision: adopt the software
                    # outcome and its post-decision state wholesale.
                    self.dau.rag = reference.rag
                    self.dau._giveup_counts = dict(
                        reference._giveup_counts)
                    self.dau._publish(self.dau.status[process],
                                      ref_decision)
                    self._event("anomaly:verdict")
                    self._anomaly("verdict")
                    return (ref_decision, False)
                self.health.clean("crosscheck")
            return (decision, True)
        return None

    @staticmethod
    def _decisions_agree(a: Decision, b: Decision) -> bool:
        return ((a.action, a.granted_to, a.resource, a.livelock,
                 tuple(sorted(a.ask_release)))
                == (b.action, b.granted_to, b.resource, b.livelock,
                    tuple(sorted(b.ask_release))))

    def _reference(self, rag: RAG, giveups: dict) -> SoftwareDAA:
        reference = SoftwareDAA(
            rag.processes, rag.resources, self.dau.priorities,
            livelock_threshold=self.dau.livelock_threshold)
        reference.rag = rag
        reference._giveup_counts = dict(giveups)
        return reference

    # -- checkpoint protocol -------------------------------------------------

    SNAPSHOT_KIND = "faults.resilient_avoider"

    def snapshot_state(self) -> dict:
        """Versioned, hashed snapshot: counters + health + DAU + twin."""
        from repro.checkpoint.protocol import snapshot_envelope
        state = self._base_snapshot_payload()
        state["dau"] = self.dau.snapshot_state()
        state["twin"] = (self.twin.snapshot_state()
                         if self.twin is not None else None)
        return snapshot_envelope(self.SNAPSHOT_KIND, state)

    @classmethod
    def restore_state(cls, envelope: dict,
                      obs: Optional[Observability] = None
                      ) -> "ResilientAvoider":
        from repro.checkpoint.protocol import open_envelope
        from repro.deadlock.dau import DAU
        state = open_envelope(envelope, kind=cls.SNAPSHOT_KIND)
        avoider = cls(DAU.restore_state(state["dau"]),
                      policy=ResiliencePolicy(**state["policy"]), obs=obs)
        avoider._restore_base_payload(state)
        if state["twin"] is not None:
            avoider.twin = SoftwareDAA.restore_state(state["twin"])
        return avoider

    # -- software twin ------------------------------------------------------

    def _make_twin(self) -> None:
        self.twin = self._reference(self.dau.rag.copy(),
                                    self.dau._giveup_counts)

    def _fail_over(self, reason: str) -> None:
        self._make_twin()
        self._note_failover()

    def _software(self, op: str, process: str, resource: str) -> Decision:
        assert self.twin is not None
        decision = (self.twin.request(process, resource)
                    if op == "request"
                    else self.twin.release(process, resource))
        self._charge("software", decision.cycles)
        self._event("fallback-run")
        return decision

    # -- scrub / fail-back ---------------------------------------------------

    def _scrub(self) -> None:
        assert self.twin is not None
        self._event("scrub")
        self.scrubs += 1
        if self.obs.enabled:
            self._m_scrubs.inc()
        self.health.begin_recovery()
        # Reload the unit from the twin's authoritative state, then
        # re-qualify it with cross-checked probe detections.
        self.dau.rag = self.twin.rag.copy()
        self.dau._giveup_counts = dict(self.twin._giveup_counts)
        rag = self.dau.rag
        self._charge("bus_burst", _scrub_words(rag.num_resources,
                                               rag.num_processes))
        self._charge("unit", calibration.FAULT_SCRUB_OVERHEAD_CYCLES)
        for _probe in range(self.policy.recover_after):
            if not self.dau.respond():
                self._charge("timeout", self.policy.unit_timeout_cycles)
                self._event("anomaly:hang")
                self.health.anomaly("hang")
                self._event("scrub-failed")
                return
            deadlock, passes = self.dau._detect_current()
            self._charge("unit",
                         passes * calibration.DDU_CYCLES_PER_ITERATION)
            sw = pdda_detect(self.dau.rag)
            self._charge("software", sw.software_cycles)
            if deadlock != sw.deadlock:
                self._event("anomaly:verdict")
                self.health.anomaly("verdict")
                self._event("scrub-failed")
                return
            self.health.clean("scrub-probe")
        if self.health.state is HealthState.HEALTHY:
            self.twin = None
            self._note_failback()
