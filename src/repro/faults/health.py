"""Per-unit health state machine and the resilience policy knobs.

HEALTHY -> SUSPECT (first anomaly) -> FAILED (``fail_threshold``
consecutive anomalies) -> RECOVERING (a scrub began) -> HEALTHY
(``recover_after`` consecutive clean checks).  An anomaly during
RECOVERING drops straight back to FAILED — a unit must prove itself
clean before it gets traffic again.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro import calibration
from repro.obs import NULL_OBS, Observability


class HealthState(enum.Enum):
    HEALTHY = "healthy"
    SUSPECT = "suspect"
    FAILED = "failed"
    RECOVERING = "recovering"


@dataclass(frozen=True)
class HealthTransition:
    """One state change of a unit's health FSM."""

    at: float
    previous: HealthState
    state: HealthState
    reason: str


@dataclass(frozen=True)
class ResiliencePolicy:
    """Tuning for the resilient service wrappers (see docs/faults.md)."""

    #: Bounded retry budget for unit/bus interactions (0 = no retry).
    max_retries: int = 2
    #: Base backoff cycles; attempt k backs off k * this.
    retry_backoff_cycles: float = calibration.FAULT_RETRY_BACKOFF_CYCLES
    #: Cross-check every Nth hardware verdict against software
    #: (1 = every verdict, 0 = never).  SUSPECT units are always checked.
    sample_every: int = 1
    #: Consecutive anomalies before a unit is declared FAILED.
    fail_threshold: int = 3
    #: Consecutive clean checks before a unit returns to HEALTHY.
    recover_after: int = 2
    #: Software-fallback invocations between scrub attempts on a FAILED
    #: unit.
    scrub_after: int = 4
    #: Watchdog budget for one unit command round-trip.
    unit_timeout_cycles: float = calibration.FAULT_UNIT_TIMEOUT_CYCLES
    #: Waiter-side deadline on a SoCLC grant interrupt.
    lock_grant_timeout_cycles: float = \
        calibration.FAULT_LOCK_GRANT_TIMEOUT_CYCLES
    #: Audit the SoCDMMU tables every Nth command — mallocs, frees and
    #: CoW commands each keep their own cadence counter.
    audit_every: int = 1


class UnitHealth:
    """Health FSM for one hardware unit."""

    def __init__(self, unit: str,
                 clock: Optional[Callable[[], float]] = None,
                 fail_threshold: int = 3, recover_after: int = 2,
                 obs: Optional[Observability] = None) -> None:
        self.unit = unit
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.fail_threshold = max(1, fail_threshold)
        self.recover_after = max(1, recover_after)
        self.state = HealthState.HEALTHY
        self.anomalies = 0
        self._anomaly_streak = 0
        self._clean_streak = 0
        self.transitions: list[HealthTransition] = []
        self.obs = obs if obs is not None else NULL_OBS
        self._m_anomalies = self.obs.metrics.counter(
            "faults.anomalies", "unit anomalies noticed by cross-checks")

    # -- events -----------------------------------------------------------

    def anomaly(self, reason: str) -> HealthState:
        """A cross-check, parity sweep or timeout flagged the unit."""
        self.anomalies += 1
        self._anomaly_streak += 1
        self._clean_streak = 0
        if self.obs.enabled:
            self._m_anomalies.inc()
        if self.state is HealthState.RECOVERING:
            self._move(HealthState.FAILED, reason)
        elif self.state is HealthState.HEALTHY:
            self._move(HealthState.SUSPECT, reason)
        if (self.state is HealthState.SUSPECT
                and self._anomaly_streak >= self.fail_threshold):
            self._move(HealthState.FAILED, reason)
        return self.state

    def clean(self, reason: str = "clean-check") -> HealthState:
        """A check agreed with the authoritative software answer."""
        self._anomaly_streak = 0
        self._clean_streak += 1
        if (self.state in (HealthState.SUSPECT, HealthState.RECOVERING)
                and self._clean_streak >= self.recover_after):
            self._move(HealthState.HEALTHY, reason)
        return self.state

    def begin_recovery(self, reason: str = "scrub") -> HealthState:
        if self.state is HealthState.FAILED:
            self._clean_streak = 0
            self._move(HealthState.RECOVERING, reason)
        return self.state

    # -- checkpoint protocol ----------------------------------------------

    SNAPSHOT_KIND = "faults.health"

    def snapshot_state(self) -> dict:
        """Versioned, hashed snapshot of the FSM + transition history."""
        from repro.checkpoint.protocol import snapshot_envelope
        return snapshot_envelope(self.SNAPSHOT_KIND, {
            "unit": self.unit,
            "fail_threshold": self.fail_threshold,
            "recover_after": self.recover_after,
            "state": self.state.value,
            "anomalies": self.anomalies,
            "anomaly_streak": self._anomaly_streak,
            "clean_streak": self._clean_streak,
            "transitions": [
                {"at": t.at, "previous": t.previous.value,
                 "state": t.state.value, "reason": t.reason}
                for t in self.transitions],
        })

    @classmethod
    def restore_state(cls, envelope: dict,
                      clock: Optional[Callable[[], float]] = None,
                      obs: Optional[Observability] = None) -> "UnitHealth":
        from repro.checkpoint.protocol import open_envelope
        state = open_envelope(envelope, kind=cls.SNAPSHOT_KIND)
        health = cls(state["unit"], clock=clock,
                     fail_threshold=state["fail_threshold"],
                     recover_after=state["recover_after"], obs=obs)
        health.state = HealthState(state["state"])
        health.anomalies = state["anomalies"]
        health._anomaly_streak = state["anomaly_streak"]
        health._clean_streak = state["clean_streak"]
        health.transitions = [
            HealthTransition(at=t["at"],
                             previous=HealthState(t["previous"]),
                             state=HealthState(t["state"]),
                             reason=t["reason"])
            for t in state["transitions"]]
        return health

    # -- plumbing ---------------------------------------------------------

    def _move(self, state: HealthState, reason: str) -> None:
        if state is self.state:
            return
        self.transitions.append(HealthTransition(
            at=self._clock(), previous=self.state, state=state,
            reason=reason))
        if self.obs.flight.enabled:
            self.obs.flight.mark(
                "health_transition", actor=self.unit,
                previous=self.state.value, state=state.value,
                reason=reason)
        self.state = state

    @property
    def failed(self) -> bool:
        return self.state is HealthState.FAILED

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<UnitHealth {self.unit} {self.state.value} "
                f"anomalies={self.anomalies}>")
