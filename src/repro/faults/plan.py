"""Seeded fault plans: *what* breaks, *where*, and *when*.

A :class:`FaultPlan` is a deterministic schedule of hardware faults for
one simulated system, mirroring :class:`repro.campaign.spec.ScenarioSpec`
in spirit: it round-trips through JSON, hashes canonically, and carries
no ambient state — a campaign builds one from the scenario's seeded RNG,
so the same seed always produces the same fault history.

Time is counted in *visits*: every hardware model that hosts a hook
calls :meth:`repro.faults.injector.FaultInjector.fire` once per event at
its site (one detection run, one bus transaction, one command write...),
and a spec is active for visits ``at <= v < at + duration`` of its site.
Counting events instead of cycles keeps plans placement-independent:
the fault hits "the third detection", wherever in simulated time that
lands.

Known sites (the hooks compiled into the hardware models):

=================  =====================  ==============================
Site               Kinds                  Params
=================  =====================  ==============================
``ddu.matrix``     transient, stuck       row, col, value ("r"/"g"/".")
``ddu.command``    drop, corrupt          row, col, value
``ddu.status``     stale                  —
``ddu.hang``       hang                   —
``ddu.port``       error, timeout         extra_cycles
``dau.command``    drop, corrupt          resource
``dau.hang``       hang                   —
``dau.port``       error, timeout         extra_cycles
``bus.<name>``     error, timeout         extra_cycles (master filters)
``soclc.interrupt``  drop                 —
``socdmmu.table``  leak, steal            block
``socdmmu.refcount``  inflate, deflate    block, delta
``socdmmu.exhaust``  ghost                blocks
=================  =====================  ==============================
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.errors import ConfigurationError

#: site (or site prefix ending in ".") -> allowed fault kinds.
KNOWN_SITES: dict[str, tuple[str, ...]] = {
    "ddu.matrix": ("transient", "stuck"),
    "ddu.command": ("drop", "corrupt"),
    "ddu.status": ("stale",),
    "ddu.hang": ("hang",),
    "ddu.port": ("error", "timeout"),
    "dau.command": ("drop", "corrupt"),
    "dau.hang": ("hang",),
    "dau.port": ("error", "timeout"),
    "bus.": ("error", "timeout"),
    "soclc.interrupt": ("drop",),
    "socdmmu.table": ("leak", "steal"),
    "socdmmu.refcount": ("inflate", "deflate"),
    "socdmmu.exhaust": ("ghost",),
}


def _allowed_kinds(site: str) -> Optional[tuple[str, ...]]:
    kinds = KNOWN_SITES.get(site)
    if kinds is not None:
        return kinds
    for prefix, kinds in KNOWN_SITES.items():
        if prefix.endswith(".") and site.startswith(prefix):
            return kinds
    return None


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault at one hook site."""

    site: str
    kind: str
    #: First active visit of the site (0-based).
    at: int = 0
    #: Number of consecutive visits the fault stays active.  Stuck
    #: faults are long durations — they still lift deterministically,
    #: which is what lets fail-back happen within a scenario.
    duration: int = 1
    #: Optional key filter: only visits fired with this key (a bus
    #: master name, a port operation...) count and match.
    master: Optional[str] = None
    #: Kind-specific knobs (row/col/value, extra_cycles, resource...).
    params: Mapping[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        if not self.site:
            raise ConfigurationError("fault spec needs a site")
        if self.at < 0:
            raise ConfigurationError(f"{self.site}: at must be >= 0")
        if self.duration < 1:
            raise ConfigurationError(
                f"{self.site}: duration must be >= 1")
        kinds = _allowed_kinds(self.site)
        if kinds is None:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; known: "
                f"{sorted(KNOWN_SITES)}")
        if self.kind not in kinds:
            raise ConfigurationError(
                f"site {self.site!r} supports kinds {kinds}, "
                f"not {self.kind!r}")

    def active_at(self, visit: int) -> bool:
        return self.at <= visit < self.at + self.duration

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "kind": self.kind,
            "at": self.at,
            "duration": self.duration,
            "master": self.master,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        try:
            spec = cls(site=data["site"], kind=data["kind"],
                       at=int(data.get("at", 0)),
                       duration=int(data.get("duration", 1)),
                       master=data.get("master"),
                       params=dict(data.get("params", {})))
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed fault spec: {exc}") from exc
        spec.validate()
        return spec


@dataclass(frozen=True)
class FaultPlan:
    """A named, ordered bundle of fault specs (may be empty)."""

    name: str
    specs: tuple = ()

    def validate(self) -> None:
        if not self.name:
            raise ConfigurationError("fault plan needs a name")
        for spec in self.specs:
            spec.validate()

    def sites(self) -> tuple[str, ...]:
        return tuple(sorted({spec.site for spec in self.specs}))

    def to_dict(self) -> dict:
        return {"name": self.name,
                "specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        try:
            plan = cls(name=data["name"],
                       specs=tuple(FaultSpec.from_dict(item)
                                   for item in data.get("specs", ())))
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"malformed fault plan: {exc}") from exc
        plan.validate()
        return plan

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"fault plan is not JSON: {exc}") from exc
        return cls.from_dict(data)

    def plan_hash(self) -> str:
        """sha256 fingerprint of the canonical JSON form."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
