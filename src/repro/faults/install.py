"""Wire a :class:`FaultPlan` into a built system.

:func:`install_fault_plan` is duck-typed on the hardware models'
``faults`` attribute so it works for any :class:`BuiltSystem` shape:
whichever units the configuration instantiated get the shared injector,
and — when a :class:`ResiliencePolicy` is given — whichever services
know how to degrade get their resilience enabled.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.health import ResiliencePolicy
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan


def install_fault_plan(system, plan: FaultPlan,
                       policy: Optional[ResiliencePolicy] = None
                       ) -> FaultInjector:
    """Install ``plan`` into every fault-capable model of ``system``.

    With ``policy`` given, also arms the resilient paths: resource
    services gain cross-checking/failover, the SoCLC gains interrupt
    watchdogs, the SoCDMMU gains table audits.  Without it the faults
    hit an unprotected system — useful for demonstrating the failure,
    not for surviving it.
    """
    injector = FaultInjector(plan, obs=system.soc.obs)

    bus = getattr(system.soc, "bus", None)
    if bus is not None and hasattr(bus, "faults"):
        bus.faults = injector

    service = system.resource_service
    if service is not None:
        if hasattr(service, "faults"):
            service.faults = injector
        unit = getattr(service, "ddu", None)
        if unit is not None:
            unit.faults = injector
        core = getattr(service, "core", None)
        if core is not None and hasattr(core, "faults"):
            core.faults = injector
            embedded = getattr(core, "ddu", None)
            if embedded is not None:
                embedded.faults = injector
        if (policy is not None and getattr(service, "hardware", False)
                and hasattr(service, "enable_resilience")):
            service.enable_resilience(policy)

    for unit in (system.lock_manager, system.heap):
        if unit is not None and hasattr(unit, "faults"):
            unit.faults = injector
            if policy is not None and hasattr(unit, "enable_resilience"):
                unit.enable_resilience(policy)

    system.fault_injector = injector
    system.fault_plan = plan
    return injector
