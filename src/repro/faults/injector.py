"""The fault injector: visit counters, spec matching, injection log.

One :class:`FaultInjector` is shared by every hardware model of a built
system.  Each hook site calls :meth:`FaultInjector.fire` once per event
and applies whatever specs come back; a model with no injector installed
(``self.faults is None``) pays only the attribute check, mirroring the
``if obs.enabled:`` zero-overhead idiom of the observability layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs import NULL_OBS, Observability
from repro.rag.matrix import CellState


@dataclass(frozen=True)
class InjectionRecord:
    """One fault activation, as it happened."""

    site: str
    kind: str
    visit: int
    key: Optional[str] = None


class FaultInjector:
    """Matches hook-site visits against a :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan,
                 obs: Optional[Observability] = None) -> None:
        plan.validate()
        self.plan = plan
        self.obs = obs if obs is not None else NULL_OBS
        self._specs_by_site: dict[str, tuple[FaultSpec, ...]] = {}
        for spec in plan.specs:
            existing = self._specs_by_site.get(spec.site, ())
            self._specs_by_site[spec.site] = existing + (spec,)
        #: (site, key) -> visits so far; key "" counts every visit.
        self._counters: dict[tuple[str, str], int] = {}
        #: Total hook-site visits (the disabled-overhead bench reads
        #: this to bound the cost of the ``faults is None`` guards).
        self.visits = 0
        #: Every fault activation, in firing order.
        self.records: list[InjectionRecord] = []
        self._m_injected = self.obs.metrics.counter(
            "faults.injected", "fault activations applied to hardware")

    def fire(self, site: str, key: Optional[str] = None
             ) -> tuple[FaultSpec, ...]:
        """One event at ``site``; returns the specs active right now."""
        self.visits += 1
        specs = self._specs_by_site.get(site)
        if not specs:
            return ()
        visit = self._counters.get((site, ""), 0)
        self._counters[(site, "")] = visit + 1
        keyed_visit = -1
        if key is not None:
            keyed_visit = self._counters.get((site, key), 0)
            self._counters[(site, key)] = keyed_visit + 1
        active = []
        for spec in specs:
            if spec.master is None:
                hit = spec.active_at(visit)
                hit_visit = visit
            elif spec.master == key:
                hit = spec.active_at(keyed_visit)
                hit_visit = keyed_visit
            else:
                continue
            if hit:
                active.append(spec)
                self.records.append(InjectionRecord(
                    site=site, kind=spec.kind, visit=hit_visit, key=key))
                if self.obs.enabled:
                    self._m_injected.inc()
                if self.obs.flight.enabled:
                    self.obs.flight.mark(
                        "fault_trip", actor=site, kind=spec.kind,
                        visit=hit_visit, key=key or "")
        return tuple(active)

    def visits_of(self, site: str) -> int:
        return self._counters.get((site, ""), 0)

    # -- checkpoint protocol ----------------------------------------------------

    SNAPSHOT_KIND = "faults.injector"

    def snapshot_state(self) -> dict:
        """Versioned, hashed snapshot of the plan + visit counters.

        Fault specs fire on absolute visit numbers, so restoring the
        counters (and the activation log) makes a restored run replay
        the exact same fault history from where it left off.
        """
        from repro.checkpoint.protocol import snapshot_envelope
        return snapshot_envelope(self.SNAPSHOT_KIND, {
            "plan": self.plan.to_dict(),
            "plan_hash": self.plan.plan_hash(),
            "counters": sorted(
                [site, key, count]
                for (site, key), count in self._counters.items()),
            "visits": self.visits,
            "records": [
                {"site": r.site, "kind": r.kind, "visit": r.visit,
                 "key": r.key}
                for r in self.records],
        })

    @classmethod
    def restore_state(cls, envelope: dict,
                      obs: Optional[Observability] = None) -> "FaultInjector":
        from repro.checkpoint.protocol import open_envelope
        from repro.errors import CheckpointError
        state = open_envelope(envelope, kind=cls.SNAPSHOT_KIND)
        plan = FaultPlan.from_dict(state["plan"])
        if plan.plan_hash() != state["plan_hash"]:
            raise CheckpointError(
                "fault plan hash mismatch in injector snapshot")
        injector = cls(plan, obs=obs)
        injector._counters = {
            (site, key): count for site, key, count in state["counters"]}
        injector.visits = state["visits"]
        injector.records = [
            InjectionRecord(site=r["site"], kind=r["kind"],
                            visit=r["visit"], key=r["key"])
            for r in state["records"]]
        return injector

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<FaultInjector plan={self.plan.name!r} "
                f"visits={self.visits} injected={len(self.records)}>")


def force_cell(matrix, s: int, t: int, value: str) -> None:
    """Force one matrix cell to a flipped value (both backends).

    ``value`` is ``"r"`` (request), ``"g"`` (grant) or ``"."`` (empty).
    Forcing a grant first clears any existing grant in the row — a
    flipped bit *moves* the grant rather than violating the single-unit
    encoding, which is what a real 2-bit cell upset does.
    """
    matrix.clear(s, t)
    if value == "r":
        matrix.set_request(s, t)
    elif value == "g":
        for col in range(matrix.n):
            if matrix.get(s, col) is CellState.GRANT:
                matrix.clear(s, col)
        matrix.set_grant(s, t)
