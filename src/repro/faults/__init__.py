"""Deterministic hardware fault injection and graceful degradation.

``repro.faults`` models the *hardware* breaking — bit upsets in the
DDU/DAU matrix cells, dropped command writes, stale status reads, bus
errors, lost SoCLC grant interrupts, SoCDMMU table corruption — and the
RTOS-side machinery that notices, retries, fails over to the software
twins of Section 3 (RTOS2 -> RTOS1, RTOS4 -> RTOS3) and fails back
after a clean scrub.  Contrast with ``chaos.*`` campaign scenarios,
which kill the *runner* process, not the simulated hardware.

Everything is seeded and replayable: a :class:`FaultPlan` is a JSON
schedule keyed on hook-site visit counts, so the same plan on the same
scenario produces byte-identical histories.
"""

from repro.faults.health import (HealthState, HealthTransition,
                                 ResiliencePolicy, UnitHealth)
from repro.faults.injector import FaultInjector, InjectionRecord, force_cell
from repro.faults.install import install_fault_plan
from repro.faults.plan import KNOWN_SITES, FaultPlan, FaultSpec
from repro.faults.resilient import (ALGO_CHARGE_KINDS, AvoidOutcome, Charge,
                                    DetectOutcome, ResilientAvoider,
                                    ResilientDetector)

__all__ = [
    "ALGO_CHARGE_KINDS",
    "AvoidOutcome",
    "Charge",
    "DetectOutcome",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "HealthState",
    "HealthTransition",
    "InjectionRecord",
    "KNOWN_SITES",
    "ResiliencePolicy",
    "ResilientAvoider",
    "ResilientDetector",
    "UnitHealth",
    "force_cell",
    "install_fault_plan",
]
