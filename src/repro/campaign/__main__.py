"""The campaign CLI: run, resume, replay, diff.

Usage::

    python -m repro.campaign run                          # builtin smoke
    python -m repro.campaign run --builtin claims \\
        --workers 4 --seed-root 42 --out runs/claims-a
    python -m repro.campaign run --spec my_campaign.json \\
        --timeout 30 --baseline runs/claims-a --out runs/claims-b
    python -m repro.campaign resume runs/claims-a         # after a crash
    python -m repro.campaign replay runs/claims-a pdda-oracle/00017
    python -m repro.campaign diff runs/claims-a runs/claims-b
    python -m repro.campaign list

``run --out DIR`` keeps a write-ahead journal in DIR; if the runner is
killed mid-campaign (even ``kill -9``), ``resume DIR`` skips every
journaled-complete scenario, restores in-flight checkpoint-aware
scenarios from their last mid-scenario checkpoint, and produces the
same result digest as an uninterrupted run.

Exit codes: 0 clean; 1 scenario failures, replay mismatch, or
regressions against the baseline; 2 usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.campaign.checkers import CHECKERS, GENERATORS
from repro.campaign.diff import diff_manifests
from repro.campaign.journal import RunJournal, journal_header
from repro.campaign.presets import BUILTIN_CAMPAIGNS, builtin_campaign
from repro.campaign.runner import CampaignRunner, replay_scenario
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import load_manifest, results_digest, write_run
from repro.errors import ReproError
from repro.obs import Observability, write_chrome_trace


def _load_spec(args: argparse.Namespace) -> CampaignSpec:
    if args.spec:
        return CampaignSpec.from_json(Path(args.spec).read_text())
    return builtin_campaign(args.builtin)


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _load_spec(args)
    observing = args.metrics or args.trace_out
    obs = Observability(label=f"campaign:{spec.name}",
                        enabled=bool(observing))
    journal = None
    checkpoint_dir = None
    blackbox_dir = None
    if args.out:
        # A run with an output directory is crash-consistent: the
        # journal header lands before the first scenario runs, and
        # every record is fsync'd as it arrives — `resume` picks up
        # from wherever a killed run stopped.
        journal = RunJournal.create(args.out, journal_header(
            spec.to_dict(), spec.spec_hash(), args.seed_root,
            args.workers, args.timeout, args.retries))
        checkpoint_dir = str(Path(args.out) / "checkpoints")
        blackbox_dir = str(Path(args.out) / "blackbox")
    runner = CampaignRunner(
        spec, seed_root=args.seed_root, workers=args.workers,
        task_timeout=args.timeout, retries=args.retries,
        backoff=args.backoff, obs=obs, journal=journal,
        checkpoint_dir=checkpoint_dir, blackbox_dir=blackbox_dir,
        profile=bool(args.profile_out))
    try:
        run = runner.run()
    finally:
        if journal is not None:
            journal.close()
    print(run.render_summary())
    print(f"result digest: {results_digest(run.results)}")
    if args.out:
        results_path, manifest_path = write_run(args.out, run)
        print(f"wrote {results_path} and {manifest_path}")
    if args.profile_out:
        out = Path(args.profile_out)
        out.mkdir(parents=True, exist_ok=True)
        for scenario_id, profile in sorted(run.profiles.items()):
            target = out / (scenario_id.replace("/", "__")
                            + ".profile.json")
            target.write_text(json.dumps(profile, sort_keys=True,
                                         separators=(",", ":")) + "\n")
        print(f"wrote {len(run.profiles)} profile(s) under {out}")
    if args.metrics:
        print()
        print(obs.summary())
    if args.trace_out:
        write_chrome_trace(args.trace_out, obs)
        print(f"wrote {args.trace_out} (merged across "
              f"{run.workers} worker(s))")
    status = 1 if run.failures else 0
    if args.baseline:
        diff = diff_manifests(load_manifest(args.baseline),
                              run.manifest(),
                              cycle_drift_pct=args.cycle_drift)
        print()
        print(diff.render())
        if diff.has_regressions:
            status = 1
    return status


def _cmd_resume(args: argparse.Namespace) -> int:
    """Finish a killed run: skip journaled scenarios, run the rest."""
    directory = Path(args.run_dir)
    header, completed = RunJournal.load(directory)
    spec = CampaignSpec.from_dict(header["spec"])
    if header.get("spec_hash") != spec.spec_hash():
        print("error: journal spec_hash does not match its spec",
              file=sys.stderr)
        return 2
    workers = args.workers if args.workers else int(header["workers"])
    journal = RunJournal.append_to(directory)
    runner = CampaignRunner(
        spec, seed_root=header["seed_root"], workers=workers,
        task_timeout=header.get("task_timeout"),
        retries=int(header.get("retries", 1)), journal=journal,
        checkpoint_dir=str(directory / "checkpoints"),
        blackbox_dir=str(directory / "blackbox"))
    try:
        run = runner.run(completed=completed)
    finally:
        journal.close()
    print(f"resumed {spec.name!r}: {len(completed)} scenario(s) "
          f"journaled complete, {len(run.results) - len(completed)} "
          "re-run")
    print(run.render_summary())
    print(f"result digest: {results_digest(run.results)}")
    results_path, manifest_path = write_run(directory, run)
    print(f"wrote {results_path} and {manifest_path}")
    return 1 if run.failures else 0


def _cmd_replay(args: argparse.Namespace) -> int:
    manifest = load_manifest(args.manifest)
    result = replay_scenario(manifest, args.scenario_id)
    recorded = manifest["scenarios"].get(args.scenario_id)
    print(f"replayed {args.scenario_id} (seed {result.seed}): "
          f"{result.verdict}"
          + (f" — {result.detail}" if result.detail else ""))
    if recorded is None:
        print("scenario has no recorded verdict in the manifest")
        return 1
    print(f"recorded: {recorded['verdict']} "
          f"(steps={recorded['steps']}, cycles={recorded['cycles']:g})")
    if recorded["verdict"] in ("crash", "timeout"):
        # Infrastructure verdicts carry no steps/cycles to compare; a
        # replay that reproduces the underlying behaviour will crash or
        # hang this very process, so reaching this line means the
        # scenario completed under replay conditions.
        print("note: recorded verdict was infrastructural "
              "(crash/timeout); replay ran to completion")
        return 0
    matches = (result.verdict == recorded["verdict"]
               and result.steps == recorded["steps"]
               and result.cycles == recorded["cycles"])
    print("replay matches the recorded outcome" if matches
          else "REPLAY MISMATCH — the scenario is not deterministic")
    return 0 if matches else 1


def _cmd_diff(args: argparse.Namespace) -> int:
    diff = diff_manifests(load_manifest(args.baseline),
                          load_manifest(args.candidate),
                          cycle_drift_pct=args.cycle_drift)
    print(diff.render())
    return 1 if diff.has_regressions else 0


def _cmd_trend(args: argparse.Namespace) -> int:
    """Append the BENCH_* family to the history and gate on trends."""
    from repro.obs.trend import (
        append_history,
        check_trends,
        collect_bench_entries,
        load_history,
    )
    history_path = Path(args.history)
    entries = {}
    if not args.check_only:
        entries = collect_bench_entries(args.bench_dir)
        if not entries:
            print(f"no BENCH_*.json records under {args.bench_dir}",
                  file=sys.stderr)
            return 2
        append_history(history_path, entries, run_id=args.run_id)
    history = load_history(history_path)
    if not history:
        print(f"no history at {history_path}", file=sys.stderr)
        return 2
    if not args.check_only:
        print(f"appended {len(entries)} metric(s) to {history_path} "
              f"({len(history)} run(s) on record)")
    report = check_trends(history, window=args.window,
                          tolerance=args.tolerance)
    print(report.render())
    return 1 if report.has_regressions else 0


def _cmd_list(_args: argparse.Namespace) -> int:
    print("built-in campaigns:")
    for name in sorted(BUILTIN_CAMPAIGNS):
        spec = builtin_campaign(name)
        print(f"  {name:<10s} {spec.count()} scenario(s), "
              f"{len(spec.scenarios)} spec(s)")
    print("generators:")
    for name in sorted(GENERATORS):
        print(f"  {name}")
    print("checkers:")
    for name in sorted(CHECKERS):
        print(f"  {name}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Sharded scenario campaigns with deterministic "
                    "replay and regression gating.")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run a campaign")
    run_parser.add_argument("--spec", metavar="FILE",
                            help="campaign spec JSON (default: a "
                                 "built-in campaign)")
    run_parser.add_argument("--builtin", default="smoke",
                            choices=sorted(BUILTIN_CAMPAIGNS),
                            help="built-in campaign when --spec is not "
                                 "given (default: smoke)")
    run_parser.add_argument("--seed-root", default="0",
                            help="root of the per-scenario seed "
                                 "derivation (default: 0)")
    run_parser.add_argument("--workers", type=int, default=1,
                            help="worker processes (default: 1)")
    run_parser.add_argument("--timeout", type=float, default=None,
                            help="per-scenario timeout in seconds")
    run_parser.add_argument("--retries", type=int, default=1,
                            help="re-runs for crashed scenarios "
                                 "(default: 1)")
    run_parser.add_argument("--backoff", type=float, default=0.05,
                            help="base retry backoff seconds "
                                 "(default: 0.05)")
    run_parser.add_argument("--out", metavar="DIR",
                            help="write results.jsonl + manifest.json "
                                 "into DIR")
    run_parser.add_argument("--baseline", metavar="MANIFEST",
                            help="diff against this manifest and gate "
                                 "on regressions")
    run_parser.add_argument("--cycle-drift", type=float, default=10.0,
                            help="cycle drift band in %% for the "
                                 "baseline gate (default: 10)")
    run_parser.add_argument("--metrics", action="store_true",
                            help="print the campaign metric summary")
    run_parser.add_argument("--trace-out", metavar="FILE",
                            help="write a merged Perfetto trace of all "
                                 "workers")
    run_parser.add_argument("--profile-out", metavar="DIR",
                            help="instrument every scenario and write "
                                 "one cycle profile per scenario into "
                                 "DIR (with --out they are also kept "
                                 "under <out>/profiles, referenced "
                                 "from the manifest)")
    run_parser.set_defaults(fn=_cmd_run)

    resume_parser = sub.add_parser(
        "resume", help="finish a killed run from its journal")
    resume_parser.add_argument("run_dir",
                               help="run directory with journal.jsonl")
    resume_parser.add_argument("--workers", type=int, default=0,
                               help="override the journaled worker "
                                    "count (default: as journaled)")
    resume_parser.set_defaults(fn=_cmd_resume)

    replay_parser = sub.add_parser(
        "replay", help="re-execute one scenario from a manifest")
    replay_parser.add_argument("manifest",
                               help="manifest.json or its run directory")
    replay_parser.add_argument("scenario_id")
    replay_parser.set_defaults(fn=_cmd_replay)

    diff_parser = sub.add_parser(
        "diff", help="compare two run manifests")
    diff_parser.add_argument("baseline")
    diff_parser.add_argument("candidate")
    diff_parser.add_argument("--cycle-drift", type=float, default=10.0,
                             help="cycle drift band in %% (default: 10)")
    diff_parser.set_defaults(fn=_cmd_diff)

    trend_parser = sub.add_parser(
        "trend", help="append BENCH_*.json to the perf history and "
                      "gate on regressions against a rolling baseline")
    trend_parser.add_argument("--bench-dir", default=".",
                              help="directory holding BENCH_*.json "
                                   "(default: .)")
    trend_parser.add_argument("--history", default="BENCH_HISTORY.jsonl",
                              help="append-only history file (default: "
                                   "BENCH_HISTORY.jsonl)")
    trend_parser.add_argument("--run-id", default="local",
                              help="identifier recorded with this run "
                                   "(e.g. a commit sha)")
    trend_parser.add_argument("--window", type=int, default=5,
                              help="baseline window in runs "
                                   "(default: 5)")
    trend_parser.add_argument("--tolerance", type=float, default=0.75,
                              help="allowed fractional slip from the "
                                   "baseline median (default: 0.75)")
    trend_parser.add_argument("--check-only", action="store_true",
                              help="gate the existing history without "
                                   "appending a new run")
    trend_parser.set_defaults(fn=_cmd_trend)

    list_parser = sub.add_parser(
        "list", help="list built-in campaigns, generators, checkers")
    list_parser.set_defaults(fn=_cmd_list)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
