"""Declarative scenario-campaign specifications.

A *campaign* is a named bundle of :class:`ScenarioSpec` entries.  Each
entry names a generator (which state/system to build), a checker (which
invariant to grind it against), a parameter grid, and a repeat count;
:meth:`CampaignSpec.expand` unrolls the grids into a flat, ordered list
of concrete :class:`Scenario` instances, each with a stable per-scenario
seed derived via :func:`derive_seed` — ``sha256(seed_root | id)``, never
ambient ``random`` state — so any scenario can be replayed bit-for-bit
from nothing but the run manifest.

Specs round-trip through JSON (:meth:`CampaignSpec.to_json` /
:meth:`CampaignSpec.from_json`), and :meth:`CampaignSpec.spec_hash`
fingerprints the canonical JSON form so two manifests can prove they
ran the same campaign before being diffed.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Optional, Union

from repro.errors import ConfigurationError


def derive_seed(seed_root: Union[int, str], scenario_id: str) -> int:
    """Stable 63-bit per-scenario seed: ``sha256(seed_root | id)``.

    Depends only on the textual seed root and the scenario id, so the
    same scenario gets the same seed in every shard layout, worker
    count, and replay.
    """
    digest = hashlib.sha256(
        f"{seed_root}|{scenario_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def _canonical_json(data: Any) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Scenario:
    """One concrete, runnable scenario (a grid point of a spec)."""

    scenario_id: str
    generator: str
    checker: str
    params: Mapping[str, Any]
    seed: int

    def to_dict(self) -> dict:
        return {
            "scenario_id": self.scenario_id,
            "generator": self.generator,
            "checker": self.checker,
            "params": dict(self.params),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        return cls(scenario_id=data["scenario_id"],
                   generator=data["generator"],
                   checker=data["checker"],
                   params=dict(data.get("params", {})),
                   seed=int(data["seed"]))


@dataclass(frozen=True)
class ScenarioSpec:
    """One family of scenarios: generator x checker x parameter grid.

    ``params`` mixes scalars and axes: a list/tuple value fans out (its
    elements become grid points, combined with every other axis in
    sorted-key order), any other value is passed through unchanged.
    ``repeats`` runs every grid point that many times under distinct
    scenario ids (hence distinct derived seeds).
    """

    name: str
    generator: str
    checker: str
    params: Mapping[str, Any] = field(default_factory=dict)
    repeats: int = 1

    def validate(self) -> None:
        if not self.name or "/" in self.name or "|" in self.name:
            raise ConfigurationError(
                f"scenario spec name {self.name!r} must be non-empty and "
                "free of '/' and '|'")
        if self.repeats < 1:
            raise ConfigurationError(
                f"{self.name}: repeats must be at least 1")

    def grid_points(self) -> Iterator[dict]:
        """Every concrete parameter dict, in deterministic order."""
        axes = sorted(k for k, v in self.params.items()
                      if isinstance(v, (list, tuple)))
        scalars = {k: v for k, v in self.params.items()
                   if not isinstance(v, (list, tuple))}
        if not axes:
            yield dict(scalars)
            return
        for values in itertools.product(
                *(self.params[axis] for axis in axes)):
            point = dict(scalars)
            point.update(zip(axes, values))
            yield point

    def count(self) -> int:
        return sum(1 for _ in self.grid_points()) * self.repeats

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "generator": self.generator,
            "checker": self.checker,
            "params": {k: (list(v) if isinstance(v, tuple) else v)
                       for k, v in self.params.items()},
            "repeats": self.repeats,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        try:
            return cls(name=data["name"],
                       generator=data["generator"],
                       checker=data["checker"],
                       params=dict(data.get("params", {})),
                       repeats=int(data.get("repeats", 1)))
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed scenario spec: {exc}") from exc


@dataclass(frozen=True)
class CampaignSpec:
    """A named, ordered bundle of scenario specs."""

    name: str
    scenarios: tuple = ()

    def validate(self) -> None:
        if not self.name:
            raise ConfigurationError("campaign needs a name")
        if not self.scenarios:
            raise ConfigurationError(f"campaign {self.name!r} is empty")
        seen: set = set()
        for spec in self.scenarios:
            spec.validate()
            if spec.name in seen:
                raise ConfigurationError(
                    f"duplicate scenario spec name {spec.name!r}")
            seen.add(spec.name)

    def count(self) -> int:
        return sum(spec.count() for spec in self.scenarios)

    def expand(self, seed_root: Union[int, str]) -> list:
        """Unroll every spec into concrete scenarios, in stable order.

        Scenario ids are ``<spec-name>/<index>`` with a zero-padded
        per-spec index, so ids — and therefore seeds — are independent
        of worker count and of the other specs in the campaign.
        """
        self.validate()
        out: list = []
        for spec in self.scenarios:
            index = 0
            for point in spec.grid_points():
                for _repeat in range(spec.repeats):
                    scenario_id = f"{spec.name}/{index:05d}"
                    out.append(Scenario(
                        scenario_id=scenario_id,
                        generator=spec.generator,
                        checker=spec.checker,
                        params=point,
                        seed=derive_seed(seed_root, scenario_id)))
                    index += 1
        return out

    # -- persistence ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {"name": self.name,
                "scenarios": [spec.to_dict() for spec in self.scenarios]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        try:
            scenarios = tuple(ScenarioSpec.from_dict(item)
                              for item in data.get("scenarios", ()))
            campaign = cls(name=data["name"], scenarios=scenarios)
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"malformed campaign spec: {exc}") from exc
        campaign.validate()
        return campaign

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"spec is not JSON: {exc}") from exc
        return cls.from_dict(data)

    def spec_hash(self) -> str:
        """sha256 fingerprint of the canonical JSON form."""
        return hashlib.sha256(
            _canonical_json(self.to_dict()).encode("utf-8")).hexdigest()
