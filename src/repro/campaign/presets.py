"""Built-in campaigns: ready-made specs for the CLI and CI.

* ``smoke`` — every checker once over small grids; seconds, not
  minutes.  The default for ``python -m repro.campaign run``.
* ``claims`` — the paper's three headline claims (PDDA === oracle,
  DDU === structural, DAU avoidance outcomes) over several hundred
  randomized states; the benchmark and soak substrate.
* ``chaos`` — deliberately includes a crashing and a hanging scenario
  among honest ones, to demonstrate worker isolation and timeouts.
* ``kernels-large`` — 64x64-128x128 matrices through the bitmask fast
  path (see :mod:`repro.rag.bitmatrix`): oracle agreement at every
  size, plus backend-differential scenarios at 64x64, the largest size
  where the per-cell reference matrix is still quick enough to re-run.
* ``service`` — the multi-tenant detection service against a local
  per-tenant oracle, including mid-stream migration and shard-crash
  scenarios (see :mod:`repro.service`).
* ``service-chaos`` — the same oracle discipline with a deterministic
  fault-injecting proxy on the wire and the resilient client doing the
  talking: all eight wire fault kinds, mixed storms, and a shard crash
  under chaos (see :mod:`repro.service.chaos`).
* ``memory-pressure`` — the SoCDMMU ground down: shadow-model CoW
  storms and fragmentation churn, exhaustion-and-recovery through the
  full OOM ladder (reclaim-retry, RTOS7 -> RTOS5 degradation, scrubbed
  fail-back) under injected refcount/ghost faults, and a SoCDMMU vs
  SoftwareHeap differential (see ``docs/memory_pressure.md``).
"""

from __future__ import annotations

from repro.campaign.spec import CampaignSpec, ScenarioSpec
from repro.errors import ConfigurationError


def _smoke() -> CampaignSpec:
    return CampaignSpec(name="smoke", scenarios=(
        ScenarioSpec(name="pdda-random", generator="rag.random",
                     checker="pdda-vs-oracle",
                     params={"m": [3, 5], "n": [3, 5]}, repeats=4),
        ScenarioSpec(name="ddu-random", generator="rag.random",
                     checker="ddu-vs-structural",
                     params={"m": [4], "n": [4, 6]}, repeats=4),
        ScenarioSpec(name="ddu-structured", generator="rag.chain",
                     checker="ddu-vs-structural",
                     params={"length": [2, 5, 9]}),
        ScenarioSpec(name="dau-traffic", generator="census",
                     checker="dau-invariants",
                     params={"m": 5, "n": 5, "events": [40]}, repeats=4),
        ScenarioSpec(name="multiunit", generator="multiunit.random",
                     checker="multiunit-vs-projection",
                     params={"m": 4, "n": 4, "max_units": [1, 3]},
                     repeats=4),
        ScenarioSpec(name="recovery", generator="rag.random",
                     checker="recovery-converges",
                     params={"m": 5, "n": 5, "grant_fraction": 0.85,
                             "request_fraction": 0.5,
                             "strategy": ["lowest-priority",
                                          "fewest-resources"]},
                     repeats=4),
        ScenarioSpec(name="sim", generator="preset",
                     checker="sim-run-completes",
                     params={"preset": ["RTOS1", "RTOS2", "RTOS3",
                                        "RTOS4", "RTOS5", "RTOS6",
                                        "RTOS7"]}),
    ))


def _claims() -> CampaignSpec:
    return CampaignSpec(name="claims", scenarios=(
        ScenarioSpec(name="pdda-oracle", generator="rag.random",
                     checker="pdda-vs-oracle",
                     params={"m": [3, 5, 8], "n": [3, 5, 8],
                             "grant_fraction": [0.5, 0.8]},
                     repeats=8),
        ScenarioSpec(name="pdda-free", generator="rag.deadlock_free",
                     checker="pdda-vs-oracle",
                     params={"m": [4, 6], "n": [4, 6]}, repeats=6),
        ScenarioSpec(name="ddu-structural", generator="rag.random",
                     checker="ddu-vs-structural",
                     params={"m": [4, 6], "n": [4, 6],
                             "grant_fraction": [0.6, 0.9]},
                     repeats=6),
        ScenarioSpec(name="dau-avoidance", generator="census",
                     checker="dau-invariants",
                     params={"m": [4, 5], "n": [4, 5],
                             "events": [60]}, repeats=4),
        ScenarioSpec(name="recovery", generator="rag.random",
                     checker="recovery-converges",
                     params={"m": [5, 7], "n": [5, 7],
                             "grant_fraction": 0.85,
                             "request_fraction": 0.5,
                             "strategy": ["lowest-priority",
                                          "fewest-resources",
                                          "youngest-request"]},
                     repeats=4),
    ))


def _chaos() -> CampaignSpec:
    return CampaignSpec(name="chaos", scenarios=(
        ScenarioSpec(name="honest", generator="rag.random",
                     checker="pdda-vs-oracle",
                     params={"m": 5, "n": 5}, repeats=6),
        ScenarioSpec(name="crash", generator="census",
                     checker="chaos.crash", params={"m": 2, "n": 2}),
        ScenarioSpec(name="hang", generator="census",
                     checker="chaos.hang",
                     params={"m": 2, "n": 2, "seconds": 30.0}),
    ))


def _kernels_large() -> CampaignSpec:
    return CampaignSpec(name="kernels-large", scenarios=(
        ScenarioSpec(name="pdda-large-random", generator="rag.random",
                     checker="pdda-vs-oracle",
                     params={"m": [64, 96, 128], "n": [64, 96, 128],
                             "grant_fraction": [0.6, 0.9],
                             "request_fraction": 0.4},
                     repeats=2),
        ScenarioSpec(name="pdda-large-worst", generator="rag.worst_case",
                     checker="pdda-vs-oracle",
                     params={"m": [64, 128], "n": [64, 128]}),
        ScenarioSpec(name="pdda-large-free", generator="rag.deadlock_free",
                     checker="pdda-vs-oracle",
                     params={"m": [96], "n": [96]}, repeats=2),
        ScenarioSpec(name="ddu-large", generator="rag.random",
                     checker="ddu-vs-structural",
                     params={"m": [64, 128], "n": [64],
                             "grant_fraction": [0.6, 0.9]},
                     repeats=2),
        ScenarioSpec(name="backends-random", generator="rag.random",
                     checker="pdda-backends-agree",
                     params={"m": [64], "n": [64],
                             "grant_fraction": [0.5, 0.8],
                             "request_fraction": 0.4},
                     repeats=2),
        # Multi-word widths (> one uint64 word per side): the checker
        # holds bitmask AND native bit-identical to the reference past
        # the old 64-wide packing limit.
        ScenarioSpec(name="backends-multiword", generator="rag.random",
                     checker="pdda-backends-agree",
                     params={"m": [65, 100, 128], "n": [65, 128],
                             "grant_fraction": [0.6],
                             "request_fraction": 0.4}),
        ScenarioSpec(name="backends-worst", generator="rag.worst_case",
                     checker="pdda-backends-agree",
                     params={"m": [64, 96], "n": [64]}),
        ScenarioSpec(name="backends-free", generator="rag.deadlock_free",
                     checker="pdda-backends-agree",
                     params={"m": [64], "n": [64]}, repeats=2),
    ))


def _faults() -> CampaignSpec:
    """Hardware fault injection and graceful degradation.

    Unit-level scenarios grind the never-a-wrong-verdict invariant per
    fault model; the ``rtos*`` scenarios run faulted full systems and
    assert the expected degradation events — including at least one
    complete RTOS2 -> RTOS1 and RTOS4 -> RTOS3 failover *and* fail-back.
    """
    return CampaignSpec(name="faults", scenarios=(
        ScenarioSpec(name="detect-storm", generator="census",
                     checker="faults.detection-verdicts",
                     params={"m": 4, "n": 4, "model": "cycle-storm",
                             "duration": [4, 8], "events": 60},
                     repeats=2),
        ScenarioSpec(name="detect-upsets", generator="census",
                     checker="faults.detection-verdicts",
                     params={"m": 4, "n": 4, "events": 60,
                             "model": ["matrix-transient", "matrix-stuck",
                                       "command-drop", "command-corrupt",
                                       "status-stale", "unit-hang"]},
                     repeats=2),
        ScenarioSpec(name="avoid-traffic", generator="census",
                     checker="faults.avoidance-verdicts",
                     params={"m": 4, "n": 4, "events": 60,
                             "model": ["command-drop", "command-corrupt",
                                       "unit-hang"]},
                     repeats=2),
        ScenarioSpec(name="bus-retries", generator="census",
                     checker="faults.bus-retries",
                     params={"m": 2, "n": 2, "transfers": [6, 10]}),
        ScenarioSpec(name="rtos2-storm", generator="preset.faulty",
                     checker="faults.degrades-gracefully",
                     params={"preset": "RTOS2", "model": "cycle-storm",
                             "duration": 4, "rounds": 2,
                             "expect": [["anomaly:verdict", "failover",
                                         "failback"]]}),
        ScenarioSpec(name="rtos2-hang", generator="preset.faulty",
                     checker="faults.degrades-gracefully",
                     params={"preset": "RTOS2", "model": "unit-hang",
                             "duration": 2, "rounds": 2,
                             "expect": [["anomaly:hang", "failover",
                                         "failback", "watchdog-trip"]]}),
        ScenarioSpec(name="rtos2-port", generator="preset.faulty",
                     checker="faults.degrades-gracefully",
                     params={"preset": "RTOS2", "model": "unit-port",
                             "duration": 2, "rounds": 2,
                             "expect": [["anomaly:bus", "retry"]]}),
        ScenarioSpec(name="rtos4-hang", generator="preset.faulty",
                     checker="faults.degrades-gracefully",
                     params={"preset": "RTOS4", "model": "unit-hang",
                             "unit": "dau", "duration": 2, "rounds": 2,
                             "expect": [["anomaly:hang", "failover",
                                         "failback", "watchdog-trip"]]}),
        ScenarioSpec(name="rtos4-corrupt", generator="preset.faulty",
                     checker="faults.degrades-gracefully",
                     params={"preset": "RTOS4", "model": "command-corrupt",
                             "unit": "dau", "duration": 2, "rounds": 2,
                             "expect": [["anomaly:verdict", "failover",
                                         "failback"]]}),
        ScenarioSpec(name="rtos6-interrupt", generator="preset.faulty",
                     checker="faults.degrades-gracefully",
                     params={"preset": "RTOS6", "model": "soclc-drop",
                             "duration": 2, "rounds": 2,
                             "expect": [["interrupt-lost",
                                         "interrupt-redelivered"]]}),
        ScenarioSpec(name="rtos7-table", generator="preset.faulty",
                     checker="faults.degrades-gracefully",
                     params={"preset": "RTOS7", "rounds": 3,
                             "model": ["socdmmu-leak", "socdmmu-steal"],
                             "expect": [["audit-repair"]]}),
    ))


def _service() -> CampaignSpec:
    """The multi-tenant detection service against a local oracle.

    Every scenario drives a real :class:`DetectionService` (in-process
    shards, batched detects) and compares each response — grants,
    promotions, ``op_seq``, verdicts with iteration/pass counts —
    against a local per-tenant replay; the ``migrating`` and
    ``crashing`` scenarios interrupt the stream with live migrations
    and a shard kill, which must not perturb a single response.
    """
    return CampaignSpec(name="service", scenarios=(
        ScenarioSpec(name="steady", generator="service.population",
                     checker="service.vs-local",
                     params={"tenants": [4, 8], "m": 8, "n": 8,
                             "events": 25}, repeats=2),
        ScenarioSpec(name="wide", generator="service.population",
                     checker="service.vs-local",
                     params={"tenants": 6, "m": [16, 32], "n": 16,
                             "events": 20}),
        # 128x128 tenants ride the multi-word packed plane end-to-end;
        # the oracle replay catches any divergence from the solo
        # kernel at full width.
        ScenarioSpec(name="wide-multiword", generator="service.population",
                     checker="service.vs-local",
                     params={"tenants": 3, "m": 128, "n": 128,
                             "events": 12}),
        ScenarioSpec(name="migrating", generator="service.population",
                     checker="service.vs-local",
                     params={"tenants": 6, "m": 8, "n": 8,
                             "events": 24, "migrate": True}, repeats=2),
        ScenarioSpec(name="crashing", generator="service.population",
                     checker="service.vs-local",
                     params={"tenants": 6, "m": 8, "n": 8,
                             "events": 24, "crash": True}, repeats=2),
    ))


def _service_chaos() -> CampaignSpec:
    """The service behind a misbehaving wire (see ``service.chaos.*``).

    Every scenario puts a :class:`~repro.service.chaos.ChaosTransport`
    between a :class:`ResilientServiceClient` and a real service, and
    cross-checks every answered request — plus each tenant's closing
    ``state_hash`` — against the local oracle twin: retries, reconnects
    and dedups are expected; a single divergent response fails the
    scenario.  Covers all eight wire fault kinds individually, three
    mixed plans, the full all-kinds storm, and a shard crash *under*
    chaos (journal replay must dedup retried mutations too).
    """
    kinds = ["delay", "drop", "duplicate", "reorder", "truncate",
             "corrupt", "reset", "slow_loris"]
    return CampaignSpec(name="service-chaos", scenarios=(
        # One scenario per fault kind (x2 repeats = 16 scenarios).
        ScenarioSpec(name="kind", generator="service.population",
                     checker="service.chaos-vs-local",
                     params={"tenants": 3, "m": 8, "n": 8, "events": 10,
                             "chaos": [[kind] for kind in kinds]},
                     repeats=2),
        ScenarioSpec(name="mixed-loss", generator="service.population",
                     checker="service.chaos-vs-local",
                     params={"tenants": 3, "m": 8, "n": 8, "events": 10,
                             "chaos": [["drop", "duplicate", "delay"]]},
                     repeats=2),
        ScenarioSpec(name="mixed-mangle", generator="service.population",
                     checker="service.chaos-vs-local",
                     params={"tenants": 3, "m": 8, "n": 8, "events": 10,
                             "chaos": [["truncate", "corrupt",
                                        "slow_loris"]]},
                     repeats=2),
        ScenarioSpec(name="mixed-disconnect",
                     generator="service.population",
                     checker="service.chaos-vs-local",
                     params={"tenants": 3, "m": 8, "n": 8, "events": 10,
                             "chaos": [["reset", "delay",
                                        "slow_loris"]]},
                     repeats=2),
        ScenarioSpec(name="all-kinds", generator="service.population",
                     checker="service.chaos-vs-local",
                     params={"tenants": 3, "m": 8, "n": 8, "events": 12,
                             "chaos": [kinds]},
                     repeats=2),
        ScenarioSpec(name="crash-under-chaos",
                     generator="service.population",
                     checker="service.chaos-vs-local",
                     params={"tenants": 4, "m": 8, "n": 8, "events": 12,
                             "chaos": [["drop", "reset"]],
                             "crash": True},
                     repeats=2),
    ))


def _memory_pressure() -> CampaignSpec:
    """The SoCDMMU under adversarial memory pressure.

    ``cow-storm`` and ``fragmentation`` grind the allocator datapath
    against an independent shadow model (no double-grant, refcounts
    exact, audits lose no block); ``exhaustion-*`` walk the whole OOM
    ladder — reclaim-retry off a dead task, failover to the software
    heap, scrub-probed fail-back — with and without injected
    refcount/ghost faults; ``vs-software`` holds the SoCDMMU and the
    RTOS5 software heap to the same seeded script op-for-op.
    """
    return CampaignSpec(name="memory-pressure", scenarios=(
        ScenarioSpec(name="cow-storm", generator="preset.pressure",
                     checker="memory.cow-storm",
                     params={"blocks": [24, 48], "block_kb": 4,
                             "ops": 4000, "owners": 6}, repeats=3),
        ScenarioSpec(name="fragmentation", generator="preset.pressure",
                     checker="memory.cow-storm",
                     params={"blocks": 16, "block_kb": 4, "ops": 2500,
                             "owners": 4, "hold_max": 12,
                             "corrupt_every": 97}, repeats=3),
        ScenarioSpec(name="exhaustion-recovery",
                     generator="preset.pressure",
                     checker="memory.exhaustion-recovery",
                     params={"blocks": [12, 20], "block_kb": 4,
                             "model": "none"}, repeats=2),
        ScenarioSpec(name="exhaustion-faulted",
                     generator="preset.pressure",
                     checker="memory.exhaustion-recovery",
                     params={"blocks": 16, "block_kb": 4,
                             "model": ["socdmmu-refcount",
                                       "socdmmu-exhaust",
                                       "socdmmu-mixed"]}, repeats=2),
        ScenarioSpec(name="vs-software", generator="preset.pressure",
                     checker="memory.vs-software",
                     params={"blocks": 64, "block_kb": 4, "ops": 120},
                     repeats=2),
    ))


BUILTIN_CAMPAIGNS = {
    "smoke": _smoke,
    "claims": _claims,
    "chaos": _chaos,
    "faults": _faults,
    "kernels-large": _kernels_large,
    "service": _service,
    "service-chaos": _service_chaos,
    "memory-pressure": _memory_pressure,
}


def builtin_campaign(name: str) -> CampaignSpec:
    """Look up a built-in campaign by name."""
    try:
        return BUILTIN_CAMPAIGNS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown built-in campaign {name!r}; available: "
            f"{sorted(BUILTIN_CAMPAIGNS)}") from None
