"""Scenario generators and checkers (the campaign's registries).

A *generator* builds the subject under test — a RAG, a multi-unit
system, a process/resource census, or a whole built RTOS/MPSoC — from a
scenario's parameter dict and its private seeded RNG.  A *checker*
grinds the subject against one of the paper's claims and returns a
:class:`CheckOutcome`.  Both registries are keyed by short stable names
so scenarios serialize to JSON and replay anywhere.

Every generator and checker takes ``(params, rng)`` /
``(subject, params, rng)`` with a :class:`random.Random` owned by the
scenario (seeded from the run's seed root, see
:func:`repro.campaign.spec.derive_seed`); none touches the ambient
``random`` module, which is what makes campaigns bit-for-bit
replayable.

The ``chaos.*`` checkers are deliberate fault injectors (hard process
exit, hang) used to test — and demonstrate — the runner's worker-crash
isolation and per-task timeout handling.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.deadlock.dau import DAU
from repro.deadlock.ddu import DDU
from repro.deadlock.pdda import pdda_detect
from repro.deadlock.recovery import apply_plan, plan_recovery
from repro.errors import AllocationError, ConfigurationError
from repro.framework.builder import build_system
from repro.rag.bitmatrix import (
    FAST_BACKEND,
    NATIVE_BACKEND,
    REFERENCE_BACKEND,
)
from repro.rag.generate import (
    chain_state,
    cycle_state,
    deadlock_free_state,
    random_multiunit_state,
    random_state,
    worst_case_state,
)

#: name -> fn(params, rng) -> subject
GENERATORS: dict[str, Callable] = {}
#: name -> fn(subject, params, rng) -> CheckOutcome
CHECKERS: dict[str, Callable] = {}


def generator(name: str) -> Callable:
    def register(fn: Callable) -> Callable:
        GENERATORS[name] = fn
        return fn
    return register


def checker(name: str) -> Callable:
    def register(fn: Callable) -> Callable:
        CHECKERS[name] = fn
        return fn
    return register


def lookup(kind: str, name: str) -> Callable:
    registry = GENERATORS if kind == "generator" else CHECKERS
    try:
        return registry[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown {kind} {name!r}; available: "
            f"{sorted(registry)}") from None


@dataclass(frozen=True)
class CheckOutcome:
    """What one checker concluded about one scenario."""

    ok: bool
    #: "pass" or "fail" — infrastructure verdicts ("error", "timeout",
    #: "crash") are assigned by the runner, never by a checker.
    verdict: str
    #: Algorithm steps taken (reduction iterations, decisions, ...).
    steps: int = 0
    #: Modelled cost in bus cycles (hardware or software model).
    cycles: float = 0.0
    detail: str = ""


def _passed(steps: int = 0, cycles: float = 0.0,
            detail: str = "") -> CheckOutcome:
    return CheckOutcome(ok=True, verdict="pass", steps=steps,
                        cycles=cycles, detail=detail)


def _failed(detail: str, steps: int = 0,
            cycles: float = 0.0) -> CheckOutcome:
    return CheckOutcome(ok=False, verdict="fail", steps=steps,
                        cycles=cycles, detail=detail)


# -- generators ---------------------------------------------------------------

@generator("rag.random")
def _gen_rag_random(params: Mapping[str, Any], rng: random.Random):
    return random_state(int(params.get("m", 5)), int(params.get("n", 5)),
                        grant_fraction=params.get("grant_fraction", 0.6),
                        request_fraction=params.get("request_fraction", 0.3),
                        rng=rng)


@generator("rag.deadlock_free")
def _gen_rag_free(params: Mapping[str, Any], rng: random.Random):
    return deadlock_free_state(int(params.get("m", 5)),
                               int(params.get("n", 5)), rng=rng)


@generator("rag.cycle")
def _gen_rag_cycle(params: Mapping[str, Any], rng: random.Random):
    return cycle_state(int(params.get("length", 4)))


@generator("rag.chain")
def _gen_rag_chain(params: Mapping[str, Any], rng: random.Random):
    return chain_state(int(params.get("length", 4)))


@generator("rag.worst_case")
def _gen_rag_worst(params: Mapping[str, Any], rng: random.Random):
    return worst_case_state(int(params.get("m", 5)),
                            int(params.get("n", 5)))


@generator("multiunit.random")
def _gen_multiunit(params: Mapping[str, Any], rng: random.Random):
    return random_multiunit_state(
        int(params.get("m", 4)), int(params.get("n", 4)),
        max_units=int(params.get("max_units", 1)),
        grant_fraction=params.get("grant_fraction", 0.6),
        request_fraction=params.get("request_fraction", 0.3),
        rng=rng)


@generator("census")
def _gen_census(params: Mapping[str, Any], rng: random.Random):
    """Bare (processes, resources, priorities) names, no state."""
    m = int(params.get("m", 5))
    n = int(params.get("n", 5))
    processes = tuple(f"p{t + 1}" for t in range(n))
    resources = tuple(f"q{s + 1}" for s in range(m))
    priorities = {p: i + 1 for i, p in enumerate(processes)}
    return (processes, resources, priorities)


@generator("preset")
def _gen_preset(params: Mapping[str, Any], rng: random.Random):
    """A built RTOS/MPSoC from a Table 3 preset (RTOS1..RTOS7)."""
    return build_system(params.get("preset", "RTOS2"))


# -- checkers: the paper's claims ---------------------------------------------

def _iteration_bound(m: int, n: int) -> int:
    smallest = min(m, n)
    if smallest == 1:
        return 1
    return max(2, 2 * smallest - 3)


@checker("pdda-vs-oracle")
def _check_pdda(rag, params: Mapping[str, Any],
                rng: random.Random) -> CheckOutcome:
    """PDDA === structural cycle oracle, within the proven step bound."""
    oracle = rag.has_cycle()
    result = pdda_detect(rag)
    bound = _iteration_bound(rag.num_resources, rag.num_processes)
    if result.deadlock != oracle:
        return _failed(f"PDDA says {result.deadlock}, oracle says "
                       f"{oracle}", steps=result.iterations,
                       cycles=result.software_cycles)
    if result.iterations > bound:
        return _failed(f"{result.iterations} iterations exceeds the "
                       f"O(min(m,n)) bound {bound}",
                       steps=result.iterations,
                       cycles=result.software_cycles)
    return _passed(steps=result.iterations,
                   cycles=result.software_cycles,
                   detail=f"deadlock={result.deadlock}")


@checker("ddu-vs-structural")
def _check_ddu(rag, params: Mapping[str, Any],
               rng: random.Random) -> CheckOutcome:
    """The DDU cycle model agrees with the oracle and with PDDA."""
    ddu = DDU(rag.num_resources, rag.num_processes)
    ddu.load(rag)
    hw = ddu.detect()
    oracle = rag.has_cycle()
    sw = pdda_detect(rag)
    if hw.deadlock != oracle:
        return _failed(f"DDU says {hw.deadlock}, oracle says {oracle}",
                       steps=hw.iterations, cycles=hw.cycles)
    if hw.deadlock != sw.deadlock or hw.iterations != sw.iterations:
        return _failed(
            f"DDU ({hw.deadlock}, {hw.iterations} iters) disagrees with "
            f"PDDA ({sw.deadlock}, {sw.iterations} iters)",
            steps=hw.iterations, cycles=hw.cycles)
    if hw.iterations > ddu.iteration_bound:
        return _failed(f"{hw.iterations} iterations exceeds the unit "
                       f"bound {ddu.iteration_bound}",
                       steps=hw.iterations, cycles=hw.cycles)
    return _passed(steps=hw.iterations, cycles=hw.cycles,
                   detail=f"deadlock={hw.deadlock}")


@checker("pdda-backends-agree")
def _check_backends(rag, params: Mapping[str, Any],
                    rng: random.Random) -> CheckOutcome:
    """Every backend is bit-identical to the reference matrix.

    Runs PDDA once per backend — bitmask, native (which degrades to
    bitmask when no compiled kernel loads, so it always answers), and
    the cell-object reference — and demands the same verdict,
    iteration/pass counts, modelled cycles and residual edges.  This is
    the campaign-side differential oracle for
    :class:`repro.rag.bitmatrix.BitMatrix` and
    :class:`repro.rag.bitmatrix.NativeBitMatrix`.
    """
    reference = pdda_detect(rag, backend=REFERENCE_BACKEND)
    ref_counts = (reference.deadlock, reference.iterations,
                  reference.passes, reference.software_cycles)
    fast = None
    for backend in (FAST_BACKEND, NATIVE_BACKEND):
        got = pdda_detect(rag, backend=backend)
        counts = (got.deadlock, got.iterations, got.passes,
                  got.software_cycles)
        if counts != ref_counts:
            return _failed(
                f"{backend} {counts} != reference {ref_counts}",
                steps=got.iterations, cycles=got.software_cycles)
        if got.residual != reference.residual:
            return _failed(
                f"residual matrices differ: {backend} vs reference",
                steps=got.iterations, cycles=got.software_cycles)
        if fast is None:
            fast = got
    return _passed(steps=fast.iterations, cycles=fast.software_cycles,
                   detail=f"deadlock={fast.deadlock} "
                          f"passes={fast.passes}")


@checker("dau-invariants")
def _check_dau(census, params: Mapping[str, Any],
               rng: random.Random) -> CheckOutcome:
    """Drive a DAU with random traffic from cooperative tasks.

    Tasks honor every ``ask_release`` demand (Assumption 3), so after
    each decision cascade the RAG must be deadlock-free again — the
    paper's avoidance outcome — and every decision must respect the
    Table 2 worst-case step bound and publish a coherent status
    register.
    """
    processes, resources, priorities = census
    dau = DAU(processes, resources, priorities)
    events = int(params.get("events", 60))
    max_cycles = 0.0
    decisions = 0

    def obey(decision) -> list:
        return [(proc, res) for proc, res in decision.ask_release
                if dau.rag.holder_of(res) == proc]

    for step in range(events):
        rag = dau.rag
        ops: list = []
        for p in processes:
            held = set(rag.held_by(p))
            pending = set(rag.requests_of(p))
            ops.extend(("request", p, r) for r in resources
                       if r not in held and r not in pending)
            ops.extend(("release", p, r) for r in sorted(held))
            ops.extend(("withdraw", p, r) for r in sorted(pending))
        if not ops:
            break
        op, p, r = rng.choice(ops)
        if op == "withdraw":
            dau.withdraw(p, r)
            continue
        demands = [(op, p, r)]
        cascade = 0
        while demands:
            cascade += 1
            if cascade > 10 * len(processes) * len(resources):
                return _failed("ask_release cascade did not converge",
                               steps=decisions, cycles=max_cycles)
            this_op, proc, res = demands.pop(0)
            decision = dau.write_command(f"PE_{proc}", this_op, proc, res)
            decisions += 1
            max_cycles = max(max_cycles, decision.cycles)
            if decision.cycles > dau.worst_case_steps:
                return _failed(
                    f"decision cost {decision.cycles} exceeds worst-case "
                    f"bound {dau.worst_case_steps}",
                    steps=decisions, cycles=max_cycles)
            status = dau.read_status(proc)
            if status.busy or not status.done:
                return _failed(f"status register of {proc} not settled "
                               "after a decision", steps=decisions,
                               cycles=max_cycles)
            flags = [status.successful, status.pending, status.give_up]
            if sum(flags) != 1:
                return _failed(
                    f"incoherent status flags for {proc}: "
                    f"successful={status.successful} "
                    f"pending={status.pending} give_up={status.give_up}",
                    steps=decisions, cycles=max_cycles)
            demands.extend(("release", q_proc, q_res)
                           for q_proc, q_res in obey(decision))
        if pdda_detect(dau.rag).deadlock:
            return _failed(
                f"RAG deadlocked after event {step} with every "
                "ask_release honored", steps=decisions, cycles=max_cycles)
    return _passed(steps=decisions, cycles=max_cycles,
                   detail=f"{decisions} decisions, max "
                          f"{max_cycles:g} cycles")


@checker("multiunit-vs-projection")
def _check_multiunit(system, params: Mapping[str, Any],
                     rng: random.Random) -> CheckOutcome:
    """Coffman detection is deterministic; single-unit states must
    agree with PDDA through the RAG projection."""
    first = system.detect()
    second = system.copy().detect()
    if first != second:
        return _failed("detection is not deterministic",
                       steps=first.operations)
    stuck = [p for p in first.deadlocked_processes
             if not any(system.outstanding_request(p, q) > 0
                        for q in system.resources)]
    if stuck:
        return _failed(f"deadlocked processes without outstanding "
                       f"requests: {stuck}", steps=first.operations)
    single_unit = all(system.total_units(q) == 1 for q in system.resources)
    if single_unit:
        sw = pdda_detect(system.to_rag())
        if sw.deadlock != first.deadlock:
            return _failed(
                f"multi-unit detection says {first.deadlock}, PDDA on "
                f"the projection says {sw.deadlock}",
                steps=first.operations)
    return _passed(steps=first.operations,
                   detail=f"deadlock={first.deadlock} "
                          f"single_unit={single_unit}")


@checker("recovery-converges")
def _check_recovery(rag, params: Mapping[str, Any],
                    rng: random.Random) -> CheckOutcome:
    """Recovery planning breaks every cycle, for every strategy."""
    detection = pdda_detect(rag)
    if not detection.deadlock:
        return _passed(detail="no deadlock to recover from")
    strategy = params.get("strategy", "lowest-priority")
    priorities = {p: i + 1 for i, p in enumerate(rag.processes)}
    plan = plan_recovery(rag, priorities, strategy)
    scratch = rag.copy()
    apply_plan(scratch, plan)          # raises if a cycle survives
    if pdda_detect(scratch).deadlock:
        return _failed(f"residual deadlock after plan {plan.victims}",
                       steps=len(plan.steps), cycles=plan.cost)
    return _passed(steps=len(plan.steps), cycles=plan.cost,
                   detail=f"victims={','.join(plan.victims)}")


def _ordered_worker(ctx, resources: tuple, work: float):
    """Acquire in global order (deadlock-free), compute, release."""
    for resource in resources:
        yield from ctx.acquire(resource)
    address = yield from ctx.malloc(4096)
    yield from ctx.compute(work)
    yield from ctx.free(address)
    for resource in reversed(resources):
        yield from ctx.release_resource(resource)


def _lock_worker(ctx, lock_id: str, work: float):
    """Lock/compute/unlock plus a malloc/free pair (RTOS5-7 configs)."""
    yield from ctx.lock(lock_id)
    address = yield from ctx.malloc(4096)
    yield from ctx.compute(work)
    yield from ctx.free(address)
    yield from ctx.unlock(lock_id)


@checker("sim-run-completes")
def _check_sim(system, params: Mapping[str, Any],
               rng: random.Random) -> CheckOutcome:
    """A randomized full-system workload runs to completion.

    One task per PE performs globally-ordered resource acquisition (so
    the workload itself is deadlock-free), dynamic allocation and
    computation; the run must finish every task before the horizon with
    no leaked resources.
    """
    kernel = system.kernel
    resources = tuple(system.config.peripherals)
    processes = tuple(f"p{i + 1}" for i in range(system.config.num_pes))
    horizon = float(params.get("horizon", 2_000_000))
    if system.config.soclc:
        # The SoCLC binds named locks to hardware cells up front;
        # ceiling 1 = the highest task priority in this workload.
        for i in range(4):
            system.lock_manager.register_lock(f"L{i}", kind="long",
                                              ceiling=1)
    for index, name in enumerate(processes):
        work = float(rng.randint(500, 3000))
        pe = f"PE{index + 1}"
        if system.resource_service is not None:
            count = rng.randint(1, min(3, len(resources)))
            chosen = tuple(sorted(rng.sample(resources, count),
                                  key=resources.index))
            kernel.create_task(
                lambda ctx, c=chosen, w=work: _ordered_worker(ctx, c, w),
                name, index + 1, pe)
        else:
            lock = f"L{rng.randint(0, 3)}"
            kernel.create_task(
                lambda ctx, lk=lock, w=work: _lock_worker(ctx, lk, w),
                name, index + 1, pe)
    end = kernel.run(until=horizon)
    if not kernel.finished():
        unfinished = [name for name in processes
                      if not kernel.finished(name)]
        return _failed(f"tasks never finished: {unfinished}",
                       cycles=end)
    if kernel.leaks:
        return _failed(f"finished with leaks: {kernel.leaks}", cycles=end)
    return _passed(steps=len(processes), cycles=end,
                   detail=f"{system.name} finished at {end:g}")


# -- service checkers (the repro.service front end) ---------------------------

@generator("service.population")
def _gen_service_population(params: Mapping[str, Any],
                            rng: random.Random):
    """Attach specs for a tenant population, seeded from the scenario.

    Returns a tuple of ``(tenant_id, spec)`` pairs; every tenant gets
    its own derived seed, so the population is reproducible from the
    campaign's seed root alone.
    """
    tenants = int(params.get("tenants", 6))
    m = int(params.get("m", 8))
    n = int(params.get("n", 8))
    return tuple(
        (f"t{i}", {"seed": rng.randrange(2 ** 31), "m": m, "n": n,
                   "grant_fraction": params.get("grant_fraction", 0.6),
                   "request_fraction": params.get("request_fraction",
                                                  0.3)})
        for i in range(tenants))


@checker("service.vs-local")
def _check_service(population, params: Mapping[str, Any],
                   rng: random.Random) -> CheckOutcome:
    """The service's every response matches a local oracle replay.

    Spins a real :class:`~repro.service.server.DetectionService` (TCP,
    in-process shards), attaches the generated population, and drives a
    seeded claim/release/detect stream through a pipelined client.  A
    local :class:`~repro.service.tenant.Tenant` twin replays the same
    accepted mutation prefix, so every grant bit, promotion, ``op_seq``
    and batched detect verdict (with iteration and pass counts, against
    a per-tenant :meth:`BitMatrix.reduce`) must agree exactly.  With
    ``params["migrate"]`` each tenant is live-migrated mid-stream;
    with ``params["crash"]`` a shard is killed mid-stream — neither may
    perturb a single response.
    """
    import asyncio

    from repro.service import (
        DetectionService,
        ServiceClient,
        ServiceConfig,
        ServiceOpError,
    )
    from repro.service.tenant import Tenant

    events = int(params.get("events", 30))
    shards = int(params.get("shards", 2))
    migrate = bool(params.get("migrate"))
    crash = bool(params.get("crash"))
    script_seed = rng.randrange(2 ** 31)

    async def scenario() -> CheckOutcome:
        service = DetectionService(ServiceConfig(
            shards=shards, use_processes=False, tick_interval=0.001,
            snapshot_every=8))
        await service.start(host="127.0.0.1", port=0)
        client = await ServiceClient.connect_tcp("127.0.0.1",
                                                 service.tcp_port)
        steps = 0
        try:
            oracles: dict = {}
            for tenant_id, spec in population:
                await client.attach(tenant_id, **spec)
                oracles[tenant_id] = Tenant.from_attach(tenant_id, spec)
            script = random.Random(script_seed)
            for step in range(events):
                for tenant_id, _spec in population:
                    oracle = oracles[tenant_id]
                    matrix = oracle.matrix
                    if step and step % 5 == 0:
                        reply = await client.detect(tenant_id)
                        solo = matrix.copy()
                        iterations, passes = solo.reduce()
                        expected = (not solo.is_empty(), iterations,
                                    passes, oracle.op_seq)
                        got = (reply["deadlock"], reply["iterations"],
                               reply["passes"], reply["op_seq"])
                        steps += 1
                        if got != expected:
                            return _failed(
                                f"{tenant_id} detect @ step {step}: "
                                f"service {got} != oracle {expected}",
                                steps=steps)
                        continue
                    process = f"p{script.randrange(1, matrix.n + 1)}"
                    resource = f"q{script.randrange(1, matrix.m + 1)}"
                    op = {"process": process, "resource": resource}
                    kind = ("release" if script.random() < 0.4
                            else "claim")
                    try:
                        expected = (oracle.claim(dict(op))
                                    if kind == "claim"
                                    else oracle.release(dict(op)))
                        expected_code = None
                    except ServiceOpError as exc:
                        expected, expected_code = None, exc.code
                    try:
                        reply = (await client.claim(tenant_id, process,
                                                    resource)
                                 if kind == "claim"
                                 else await client.release(
                                     tenant_id, process, resource))
                        got, got_code = reply, None
                    except ServiceOpError as exc:
                        got, got_code = None, exc.code
                    steps += 1
                    if got_code != expected_code:
                        return _failed(
                            f"{tenant_id} {kind} @ step {step}: "
                            f"service error {got_code} != oracle "
                            f"{expected_code}", steps=steps)
                    if expected is not None:
                        keys = (("granted", "op_seq")
                                if kind == "claim"
                                else ("promoted", "op_seq"))
                        for key in keys:
                            if got[key] != expected[key]:
                                return _failed(
                                    f"{tenant_id} {kind} @ step "
                                    f"{step}: {key} {got[key]!r} != "
                                    f"{expected[key]!r}", steps=steps)
                if migrate and step == events // 2:
                    for tenant_id, _spec in population:
                        record = service.tenants[tenant_id]
                        await client.migrate(
                            tenant_id,
                            (record.shard_id + 1) % shards)
                if crash and step == events // 2 and shards > 1:
                    await asyncio.sleep(0.01)
                    victim = service.tenants[
                        population[0][0]].shard_id
                    service.shards[victim].crash()
            stats = await client.stats()
            return _passed(
                steps=steps, cycles=float(stats["batches"]),
                detail=(f"{len(population)} tenants x {events} events, "
                        f"{stats['batches']:g} batches, "
                        f"migrations={stats['migrations']:g}, "
                        f"crashes={stats['shard_crashes']:g}"))
        finally:
            await client.close()
            await service.stop()

    return asyncio.run(scenario())


def _net_chaos_specs(kinds: tuple) -> tuple:
    """One periodic :class:`NetFaultSpec` bundle per named wire fault.

    Every kind fires *periodically* (``every``) rather than once:
    chaos-transport visit counters restart per connection, so a
    one-shot spec at a small visit would bite every reconnect attempt
    and livelock a retrying client.  The periods are co-prime-ish so
    mixed plans interleave rather than pile onto the same visit.
    """
    from repro.service import NetFaultSpec
    table = {
        "delay": NetFaultSpec("delay", direction="both", at=2, every=5,
                              params={"delay_s": 0.01}),
        "drop": NetFaultSpec("drop", direction="s2c", at=3, every=7),
        "duplicate": NetFaultSpec("duplicate", direction="c2s", at=1,
                                  every=4),
        "reorder": NetFaultSpec("reorder", direction="s2c", at=6,
                                every=31),
        "truncate": NetFaultSpec("truncate", direction="s2c", at=4,
                                 every=9),
        "corrupt": NetFaultSpec("corrupt", direction="s2c", at=5,
                                every=11, params={"span": 6}),
        "reset": NetFaultSpec("reset", direction="c2s", at=17,
                              every=29),
        "slow_loris": NetFaultSpec("slow_loris", direction="s2c", at=2,
                                   every=13, params={"pause_s": 0.02}),
    }
    try:
        return tuple(table[kind] for kind in kinds)
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown chaos kind {exc.args[0]!r}; known: "
            f"{sorted(table)}") from None


@checker("service.chaos-vs-local")
def _check_service_chaos(population, params: Mapping[str, Any],
                         rng: random.Random) -> CheckOutcome:
    """Under wire chaos, every *answered* request matches the oracle.

    Same oracle-replay discipline as ``service.vs-local``, but the
    client talks through a :class:`~repro.service.chaos.ChaosTransport`
    misbehaving per ``params["chaos"]`` (fault kind names, see
    :func:`_net_chaos_specs`), and it is the
    :class:`~repro.service.client.ResilientServiceClient` doing the
    talking: timeouts, reconnects and idempotent retries are *expected*
    — what must never happen is a response that diverges from the local
    :class:`~repro.service.tenant.Tenant` twin.  The closing
    ``migrate`` round-trip compares every tenant's ``state_hash``
    against the oracle's: the exactly-once proof that no retried
    mutation applied twice, even with ``params["crash"]`` killing a
    shard mid-stream (journal replay must dedup too).

    Digest-deterministic: steps count logical operations, and the
    detail line carries only plan-derived values — never retry or
    timing tallies, which vary run to run.
    """
    import asyncio

    from repro.service import (
        ChaosTransport,
        DetectionService,
        NetFaultPlan,
        ResilientServiceClient,
        RetryPolicy,
        ServiceConfig,
        ServiceOpError,
    )
    from repro.service.tenant import Tenant

    kinds = tuple(params.get("chaos", ("drop",)))
    events = int(params.get("events", 10))
    shards = int(params.get("shards", 2))
    crash = bool(params.get("crash"))
    plan = NetFaultPlan(name=f"wire-{'+'.join(kinds)}",
                        seed=rng.randrange(2 ** 31),
                        specs=_net_chaos_specs(kinds))
    script_seed = rng.randrange(2 ** 31)
    policy = RetryPolicy(deadline_ms=4000.0, request_timeout_s=0.4,
                         max_attempts=14, backoff_base_s=0.004,
                         backoff_cap_s=0.04, fail_threshold=8,
                         recover_after=1, cooldown_s=0.02)

    async def scenario() -> CheckOutcome:
        service = DetectionService(ServiceConfig(
            shards=shards, use_processes=False, tick_interval=0.001,
            snapshot_every=8))
        await service.start(host="127.0.0.1", port=0)
        proxy = ChaosTransport(plan, target_port=service.tcp_port)
        await proxy.start()
        client = ResilientServiceClient.tcp(
            "127.0.0.1", proxy.listen_port, policy=policy,
            seed=plan.seed, tag="chaos-client")
        steps = 0
        try:
            oracles: dict = {}
            for tenant_id, spec in population:
                await client.attach(tenant_id, **spec)
                oracles[tenant_id] = Tenant.from_attach(tenant_id, spec)
            script = random.Random(script_seed)
            for step in range(events):
                for tenant_id, _spec in population:
                    oracle = oracles[tenant_id]
                    matrix = oracle.matrix
                    if step and step % 5 == 0:
                        reply = await client.detect(tenant_id)
                        solo = matrix.copy()
                        iterations, passes = solo.reduce()
                        expected = (not solo.is_empty(), iterations,
                                    passes, oracle.op_seq)
                        got = (reply["deadlock"], reply["iterations"],
                               reply["passes"], reply["op_seq"])
                        steps += 1
                        if got != expected:
                            return _failed(
                                f"{tenant_id} detect @ step {step}: "
                                f"service {got} != oracle {expected}",
                                steps=steps)
                        continue
                    process = f"p{script.randrange(1, matrix.n + 1)}"
                    resource = f"q{script.randrange(1, matrix.m + 1)}"
                    op = {"process": process, "resource": resource}
                    kind = ("release" if script.random() < 0.4
                            else "claim")
                    try:
                        expected = (oracle.claim(dict(op))
                                    if kind == "claim"
                                    else oracle.release(dict(op)))
                        expected_code = None
                    except ServiceOpError as exc:
                        expected, expected_code = None, exc.code
                    try:
                        reply = await client.request(
                            kind, tenant=tenant_id, process=process,
                            resource=resource)
                        got, got_code = reply, None
                    except ServiceOpError as exc:
                        got, got_code = None, exc.code
                    steps += 1
                    if got_code != expected_code:
                        return _failed(
                            f"{tenant_id} {kind} @ step {step}: "
                            f"service error {got_code} != oracle "
                            f"{expected_code}", steps=steps)
                    if expected is not None:
                        keys = (("granted", "op_seq")
                                if kind == "claim"
                                else ("promoted", "op_seq"))
                        for key in keys:
                            if got[key] != expected[key]:
                                return _failed(
                                    f"{tenant_id} {kind} @ step "
                                    f"{step}: {key} {got[key]!r} != "
                                    f"{expected[key]!r}", steps=steps)
                if crash and step == events // 2 and shards > 1:
                    await asyncio.sleep(0.01)
                    victim = service.tenants[
                        population[0][0]].shard_id
                    service.shards[victim].crash()
            # Exactly-once differential: the migrate round-trip
            # re-hashes each tenant server-side; it must equal the
            # oracle twin that saw every mutation exactly once.
            alive = [handle.shard_id for handle in service.shards
                     if handle.alive]
            for tenant_id, _spec in population:
                record = service.tenants[tenant_id]
                target = next((s for s in alive
                               if s != record.shard_id),
                              record.shard_id)
                reply = await client.request(
                    "migrate", tenant=tenant_id, shard=target)
                steps += 1
                expected_hash = oracles[tenant_id].snapshot_state()[
                    "state_hash"]
                if reply["state_hash"] != expected_hash:
                    return _failed(
                        f"{tenant_id} state_hash diverged after chaos: "
                        f"{reply['state_hash'][:12]} != oracle "
                        f"{expected_hash[:12]}", steps=steps)
            if not any(proxy.fired[kind] for kind in kinds):
                return _failed(
                    f"chaos plan {plan.name!r} never fired", steps=steps)
            return _passed(
                steps=steps,
                detail=(f"{len(population)} tenants x {events} events "
                        f"under {'+'.join(kinds)}, "
                        f"plan={plan.plan_hash()[:12]}, crash={crash}"))
        finally:
            await client.close()
            await proxy.stop()
            await service.stop()

    return asyncio.run(scenario())


# -- chaos checkers (fault injection for the runner itself) -------------------

@checker("chaos.crash")
def _check_crash(subject, params: Mapping[str, Any],
                 rng: random.Random) -> CheckOutcome:
    """Kill the worker process outright (no Python unwinding)."""
    os._exit(int(params.get("exit_code", 66)))


@checker("chaos.crash_once")
def _check_crash_once(subject, params: Mapping[str, Any],
                      rng: random.Random) -> CheckOutcome:
    """Crash the worker on the first run, pass on the retry.

    Uses a marker file handed in via ``params["marker"]`` to remember
    the first attempt across processes — exercises the runner's
    crash-retry recovery path end to end.
    """
    marker = params.get("marker", "")
    if marker and not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("crashed\n")
        os._exit(int(params.get("exit_code", 66)))
    return _passed(detail="survived the retry")


@checker("chaos.hang")
def _check_hang(subject, params: Mapping[str, Any],
                rng: random.Random) -> CheckOutcome:
    """Busy-hang long enough to trip any per-task timeout."""
    time.sleep(float(params.get("seconds", 3600.0)))
    return _failed("hang completed without a timeout")


@checker("chaos.interrupt")
def _check_interrupt(subject, params: Mapping[str, Any],
                     rng: random.Random) -> CheckOutcome:
    """Interrupt the shard worker (Ctrl-C / SIGTERM delivery).

    With ``params["sigterm"]`` the worker signals itself (exercising
    the runner's SIGTERM -> KeyboardInterrupt handler); otherwise the
    checker raises KeyboardInterrupt directly.  Either way the runner
    must record a retryable worker loss, not lose the campaign.
    """
    if params.get("sigterm"):
        import signal as signal_module
        os.kill(os.getpid(), signal_module.SIGTERM)
        time.sleep(5.0)  # pragma: no cover - signal lands first
    raise KeyboardInterrupt


@checker("chaos.interrupt_once")
def _check_interrupt_once(subject, params: Mapping[str, Any],
                          rng: random.Random) -> CheckOutcome:
    """Interrupt the worker on the first run, pass on the retry."""
    marker = params.get("marker", "")
    if marker and not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("interrupted\n")
        raise KeyboardInterrupt
    return _passed(detail="survived the interrupt retry")


# -- fault-injection scenarios (the faults campaign) ---------------------------

def _fault_specs(model: str, params: Mapping[str, Any],
                 rng: random.Random, m: int, n: int) -> tuple:
    """Build one named fault model's specs from the scenario's RNG.

    ``cycle-storm`` is the guaranteed-anomaly model: four stuck cells
    form the cycle ``q1 -> p_n -> q2 -> p1 -> q1`` in the unit's
    reduction lattice.  A cycle is never terminal, so the hardware
    verdict is *deadlock* regardless of the authoritative RAG — every
    cross-check disagrees while the specs are active, which is what
    deterministically drives failover (and, once the specs lapse,
    scrub-probed fail-back).
    """
    from repro.faults import FaultSpec
    at = int(params.get("at", 0))
    duration = int(params.get("duration", 2))
    unit = str(params.get("unit", "ddu"))
    values = ("r", "g", ".")
    if model == "matrix-transient":
        return tuple(
            FaultSpec("ddu.matrix", "transient", at=rng.randrange(24),
                      params={"row": rng.randrange(m),
                              "col": rng.randrange(n),
                              "value": rng.choice(values)})
            for _ in range(int(params.get("count", 6))))
    if model == "matrix-stuck":
        return (FaultSpec("ddu.matrix", "stuck", at=at, duration=duration,
                          params={"row": rng.randrange(m),
                                  "col": rng.randrange(n),
                                  "value": rng.choice(values)}),)
    if model == "cycle-storm":
        if m < 2 or n < 2:
            raise ConfigurationError("cycle-storm needs a 2x2 unit")
        cells = (((0, n - 1), "g"), ((1, n - 1), "r"),
                 ((1, 0), "g"), ((0, 0), "r"))
        return tuple(
            FaultSpec("ddu.matrix", "stuck", at=at, duration=duration,
                      params={"row": row, "col": col, "value": value})
            for (row, col), value in cells)
    if model == "command-drop":
        return (FaultSpec(f"{unit}.command", "drop", at=at,
                          duration=duration),)
    if model == "command-corrupt":
        return (FaultSpec(f"{unit}.command", "corrupt", at=at,
                          duration=duration,
                          params={"row": rng.randrange(m),
                                  "col": rng.randrange(n),
                                  "value": rng.choice(("r", "g"))}),)
    if model == "status-stale":
        return (FaultSpec("ddu.status", "stale", at=at,
                          duration=duration),)
    if model == "unit-hang":
        return (FaultSpec(f"{unit}.hang", "hang", at=at,
                          duration=duration),)
    if model == "unit-port":
        return (FaultSpec(f"{unit}.port", "error", at=at,
                          duration=duration),
                FaultSpec(f"{unit}.port", "timeout",
                          at=at + duration + 2,
                          params={"extra_cycles": 32}))
    if model == "soclc-drop":
        return (FaultSpec("soclc.interrupt", "drop", at=at,
                          duration=duration),)
    if model == "socdmmu-leak":
        return (FaultSpec("socdmmu.table", "leak", at=at,
                          duration=duration,
                          params={"block": rng.randrange(max(1, m))}),)
    if model == "socdmmu-steal":
        return (FaultSpec("socdmmu.table", "steal", at=at,
                          duration=duration),)
    if model == "socdmmu-refcount":
        return tuple(
            FaultSpec("socdmmu.refcount",
                      rng.choice(("inflate", "deflate")),
                      at=at + index * 3, duration=duration,
                      params={"block": rng.randrange(max(1, m)),
                              "delta": rng.randint(1, 3)})
            for index in range(int(params.get("count", 3))))
    if model == "socdmmu-exhaust":
        return (FaultSpec("socdmmu.exhaust", "ghost", at=at,
                          duration=max(duration, 2),
                          params={"blocks": int(params.get(
                              "ghost_blocks", 2))}),)
    if model == "socdmmu-mixed":
        return (_fault_specs("socdmmu-refcount", params, rng, m, n)
                + _fault_specs("socdmmu-exhaust", params, rng, m, n))
    raise ConfigurationError(f"unknown fault model {model!r}")


@generator("preset.faulty")
def _gen_preset_faulty(params: Mapping[str, Any], rng: random.Random):
    """A built preset with a seeded fault plan installed.

    Hooks are armed on every hardware model the preset has, and
    resilience (cross-checks, health FSM, failover) is enabled with a
    campaign-tuned policy: check every invocation, fail over after two
    anomalies, scrub early, fail back after two clean probes.
    """
    from repro.faults import FaultPlan, ResiliencePolicy, install_fault_plan
    system = build_system(params.get("preset", "RTOS2"))
    model = str(params.get("model", "matrix-transient"))
    plan = FaultPlan(
        name=f"{system.name}-{model}",
        specs=_fault_specs(model, params, rng,
                           len(system.config.peripherals),
                           system.config.num_pes))
    policy = ResiliencePolicy(max_retries=2, sample_every=1,
                              fail_threshold=2, recover_after=2,
                              scrub_after=3)
    install_fault_plan(system, plan, policy=policy)
    return system


def _mutate_rag(rag, rng: random.Random) -> None:
    """One random legal RAG mutation (may create or clear deadlocks)."""
    ops = []
    for p in rag.processes:
        held = set(rag.held_by(p))
        pending = set(rag.requests_of(p))
        for q in rag.resources:
            if q in held:
                ops.append(("release", p, q))
            elif q in pending:
                if rag.is_available(q):
                    ops.append(("promote", p, q))
                else:
                    ops.append(("withdraw", p, q))
            else:
                ops.append(("request", p, q))
    op, p, q = rng.choice(ops)
    if op == "release":
        rag.release(p, q)
    elif op == "promote":
        rag.remove_request(p, q)
        rag.grant(q, p)
    elif op == "withdraw":
        rag.remove_request(p, q)
    else:
        rag.add_request(p, q)


def _rng_state_payload(rng: random.Random) -> list:
    """``random.Random.getstate()`` as a JSON-safe value."""
    version, internal, gauss_next = rng.getstate()
    return [version, list(internal), gauss_next]


def _restore_rng(rng: random.Random, payload) -> None:
    version, internal, gauss_next = payload
    rng.setstate((version, tuple(internal), gauss_next))


@checker("faults.detection-verdicts")
def _check_fault_detection(census, params: Mapping[str, Any],
                           rng: random.Random,
                           checkpoint=None) -> CheckOutcome:
    """Injected DDU faults cost latency, never a wrong verdict.

    Drives a mutating RAG through a :class:`ResilientDetector` whose
    DDU hosts the scenario's fault model; the published verdict must
    match the software PDDA oracle on *every* invocation — before,
    during and after failover/fail-back.

    Checkpoint-aware: with a :class:`ScenarioCheckpoint` (see
    ``execute_scenario``), the full mid-scenario state — RAG, detector
    (including its DDU and health FSM), fault injector visit counters,
    and the scenario RNG — is saved every ``checkpoint_every`` events;
    a crashed worker's retry restores it and finishes with *exactly*
    the outcome of an uninterrupted run, fault history included.  The
    ``crash_at_step`` chaos param hard-kills the worker at that event
    on the first attempt only (a restored run never re-crashes).
    """
    from repro.faults import (
        FaultInjector,
        FaultPlan,
        ResiliencePolicy,
        ResilientDetector,
    )
    from repro.rag.graph import RAG
    processes, resources, priorities = census
    model = str(params.get("model", "cycle-storm"))
    events = int(params.get("events", 60))
    crash_at = params.get("crash_at_step")
    saved = checkpoint.load() if checkpoint is not None else None
    if saved is not None:
        rag = RAG.restore_state(saved["rag"])
        detector = ResilientDetector.restore_state(saved["detector"])
        injector = FaultInjector.restore_state(saved["injector"])
        detector.ddu.faults = injector
        _restore_rng(rng, saved["rng"])
        start_step = int(saved["step"])
    else:
        rag = RAG(processes, resources)
        ddu = DDU(len(resources), len(processes),
                  backend=params.get("backend"))
        injector = FaultInjector(FaultPlan(
            name=f"detect-{model}",
            specs=_fault_specs(model, params, rng,
                               len(resources), len(processes))))
        ddu.faults = injector
        detector = ResilientDetector(ddu, ResiliencePolicy(
            max_retries=1, sample_every=1, fail_threshold=2,
            recover_after=2, scrub_after=3))
        start_step = 0
    for step in range(start_step, events):
        if (crash_at is not None and saved is None
                and step == int(crash_at)):
            os._exit(81)
        _mutate_rag(rag, rng)
        outcome = detector.detect(rag)
        oracle = pdda_detect(rag).deadlock
        if outcome.deadlock != oracle:
            return _failed(
                f"published verdict {outcome.deadlock} != oracle "
                f"{oracle} at step {step} (mode={detector.mode})",
                steps=step)
        if checkpoint is not None and checkpoint.due(step + 1):
            checkpoint.save({
                "step": step + 1,
                "rng": _rng_state_payload(rng),
                "rag": rag.snapshot_state(),
                "detector": detector.snapshot_state(),
                "injector": injector.snapshot_state(),
            })
    if not injector.records:
        return _failed(f"fault model {model!r} never fired")
    return _passed(
        steps=events, cycles=float(detector.invocations),
        detail=(f"{len(injector.records)} injections, "
                f"{detector.failovers} failovers, "
                f"{detector.failbacks} failbacks, "
                f"mode={detector.mode}"))


#: Opt in to mid-scenario checkpointing (see ``execute_scenario``).
_check_fault_detection.accepts_checkpoint = True


@checker("faults.avoidance-verdicts")
def _check_fault_avoidance(census, params: Mapping[str, Any],
                           rng: random.Random) -> CheckOutcome:
    """Injected DAU faults never publish an unvalidated decision.

    Random request/release traffic through a :class:`ResilientAvoider`
    with every honored ``ask_release`` fed back (bounded cascade, as in
    ``dau-invariants``); whichever core is authoritative after each
    settled event, its RAG must be deadlock-free.
    """
    from repro.faults import (
        FaultInjector,
        FaultPlan,
        ResiliencePolicy,
        ResilientAvoider,
    )
    processes, resources, priorities = census
    model = str(params.get("model", "command-corrupt"))
    dau = DAU(processes, resources, priorities)
    injector = FaultInjector(FaultPlan(
        name=f"avoid-{model}",
        specs=_fault_specs(model, {**dict(params), "unit": "dau"}, rng,
                           len(resources), len(processes))))
    dau.faults = injector
    dau.ddu.faults = injector
    avoider = ResilientAvoider(dau, ResiliencePolicy(
        max_retries=2, sample_every=1, fail_threshold=2,
        recover_after=2, scrub_after=3))
    events = int(params.get("events", 60))
    bound = 10 * len(processes) * len(resources)
    decisions = 0
    for step in range(events):
        rag = avoider.active_core.rag
        ops: list = []
        for p in processes:
            held = set(rag.held_by(p))
            pending = set(rag.requests_of(p))
            ops.extend(("request", p, r) for r in resources
                       if r not in held and r not in pending)
            ops.extend(("release", p, r) for r in sorted(held))
        if not ops:
            break
        demands = [rng.choice(ops)]
        cascade = 0
        while demands:
            cascade += 1
            if cascade > bound:
                return _failed("ask_release cascade did not converge",
                               steps=decisions)
            op, proc, res = demands.pop(0)
            outcome = avoider.decide(f"PE_{proc}", op, proc, res)
            decisions += 1
            core = avoider.active_core
            demands.extend(
                ("release", q_proc, q_res)
                for q_proc, q_res in outcome.decision.ask_release
                if core.rag.holder_of(q_res) == q_proc)
        if pdda_detect(avoider.active_core.rag).deadlock:
            return _failed(
                f"authoritative RAG deadlocked after event {step} "
                f"(mode={avoider.mode})", steps=decisions)
    if not injector.records:
        return _failed(f"fault model {model!r} never fired")
    return _passed(
        steps=decisions, cycles=float(avoider.invocations),
        detail=(f"{len(injector.records)} injections, "
                f"{avoider.failovers} failovers, "
                f"{avoider.failbacks} failbacks, "
                f"mode={avoider.mode}"))


@checker("faults.bus-retries")
def _check_bus_retries(census, params: Mapping[str, Any],
                       rng: random.Random) -> CheckOutcome:
    """Bus error/timeout faults are survivable with bounded retry.

    Two masters stream transactions over a faulted bus; every
    ``BusError`` is retried with backoff, all traffic completes, and
    both fault kinds (including a master-filtered one) must have fired.
    """
    from repro.errors import BusError
    from repro.faults import FaultInjector, FaultPlan, FaultSpec
    from repro.mpsoc.bus import SystemBus
    from repro.sim.engine import Engine
    engine = Engine()
    bus = SystemBus(engine, name="bus.dut")
    injector = FaultInjector(FaultPlan(name="bus-chaos", specs=(
        FaultSpec("bus.dut", "error", at=1, duration=2),
        FaultSpec("bus.dut", "timeout", at=5, duration=2,
                  params={"extra_cycles": 32}),
        FaultSpec("bus.dut", "error", at=4, duration=1, master="M2"),
    )))
    bus.faults = injector
    transfers = int(params.get("transfers", 6))
    completed: list = []
    failed: list = []

    def master(name: str):
        for _ in range(transfers):
            for attempt in range(4):
                try:
                    yield from bus.transaction(name, words=2)
                    break
                except BusError:
                    yield 10.0 * (attempt + 1)
            else:
                failed.append(name)
                return
        completed.append(name)

    engine.spawn(master("M1"), name="M1")
    engine.spawn(master("M2"), name="M2")
    engine.run()
    if failed or sorted(completed) != ["M1", "M2"]:
        return _failed(f"masters did not complete: done={completed} "
                       f"failed={failed}", cycles=engine.now)
    kinds = {record.kind for record in injector.records}
    if kinds != {"error", "timeout"}:
        return _failed(f"expected error+timeout injections, saw "
                       f"{sorted(kinds)}", cycles=engine.now)
    if not bus.error_transactions:
        return _failed("no bus transaction ever errored")
    return _passed(steps=bus.total_transactions, cycles=engine.now,
                   detail=(f"{len(injector.records)} injections over "
                           f"{bus.total_transactions} transactions"))


def _degrade_resource_worker(ctx, resources: tuple, work: float,
                             rounds: int):
    """Globally-ordered full sweep, repeated — heavy detection/avoidance
    traffic so failover *and* fail-back fit inside one scenario."""
    for _ in range(rounds):
        for resource in resources:
            yield from ctx.acquire(resource)
        yield from ctx.compute(work)
        for resource in reversed(resources):
            yield from ctx.release_resource(resource)


def _degrade_lock_worker(ctx, lock_id: str, work: float, rounds: int):
    """Repeated contention on one shared SoCLC lock (grant hand-offs)."""
    for _ in range(rounds):
        yield from ctx.lock(lock_id)
        yield from ctx.compute(work)
        yield from ctx.unlock(lock_id)


def _degrade_heap_worker(ctx, work: float, rounds: int):
    """Repeated malloc/compute/free through the (faulted) SoCDMMU."""
    for _ in range(rounds):
        address = yield from ctx.malloc(8192)
        yield from ctx.compute(work)
        yield from ctx.free(address)


@checker("faults.degrades-gracefully")
def _check_degrade(system, params: Mapping[str, Any],
                   rng: random.Random) -> CheckOutcome:
    """A faulted full system finishes a deadlock-free workload.

    The fault plan installed by ``preset.faulty`` may cost retries,
    watchdog waits, failovers and scrubs — but every task must finish,
    nothing may leak, no wrong deadlock verdict may be published, and
    the event kinds named in ``params["expect"]`` must all have been
    observed (e.g. a full failover *and* fail-back).
    """
    kernel = system.kernel
    rounds = int(params.get("rounds", 2))
    horizon = float(params.get("horizon", 4_000_000))
    resources = tuple(system.config.peripherals)
    processes = tuple(f"p{i + 1}" for i in range(system.config.num_pes))
    if system.config.soclc:
        system.lock_manager.register_lock("L0", kind="long", ceiling=1)
    for index, name in enumerate(processes):
        work = float(rng.randint(300, 1200))
        pe = f"PE{index + 1}"
        if system.resource_service is not None:
            kernel.create_task(
                lambda ctx, w=work: _degrade_resource_worker(
                    ctx, resources, w, rounds),
                name, index + 1, pe)
        elif system.config.soclc:
            kernel.create_task(
                lambda ctx, w=work: _degrade_lock_worker(
                    ctx, "L0", w, rounds),
                name, index + 1, pe)
        else:
            kernel.create_task(
                lambda ctx, w=work: _degrade_heap_worker(ctx, w, rounds),
                name, index + 1, pe)
    end = kernel.run(until=horizon)
    if not kernel.finished():
        unfinished = [name for name in processes
                      if not kernel.finished(name)]
        return _failed(f"tasks never finished: {unfinished}", cycles=end)
    if kernel.leaks:
        return _failed(f"finished with leaks: {kernel.leaks}", cycles=end)
    observed: set = set()
    service = system.resource_service
    if service is not None:
        observed.update(event for _, event in service.fault_events)
        if service.stats.deadlock_found_at is not None:
            return _failed(
                "an injected fault produced a deadlock verdict on a "
                "deadlock-free workload", cycles=end)
        resilient = getattr(service, "resilient", None)
    else:
        resilient = None
    lock_manager = system.lock_manager
    lost = getattr(lock_manager, "lost_interrupts", 0)
    redelivered = getattr(lock_manager, "redelivered_interrupts", 0)
    if lost:
        observed.add("interrupt-lost")
        if lost != redelivered:
            return _failed(
                f"{lost} grant interrupts lost but only {redelivered} "
                "redelivered", cycles=end)
    if redelivered:
        observed.add("interrupt-redelivered")
    if getattr(system.heap, "audit_repairs", 0):
        observed.add("audit-repair")
    injector = system.fault_injector
    if injector is None or not injector.records:
        return _failed("the fault plan never fired", cycles=end)
    expect = set(params.get("expect", ()))
    missing = expect - observed
    if missing:
        return _failed(
            f"expected fault events missing: {sorted(missing)}; "
            f"observed {sorted(observed)}", cycles=end)
    if resilient is not None and "failback" in expect \
            and resilient.mode != "hardware":
        return _failed("unit never failed back to hardware", cycles=end)
    return _passed(
        steps=len(injector.records), cycles=end,
        detail=(f"{system.name} finished at {end:g} with "
                f"{len(injector.records)} injections; "
                f"events={sorted(observed)}"))


# -- memory-pressure checkers (the SoCDMMU under stress) ----------------------

def _pressure_policy(params: Mapping[str, Any]):
    """The campaign-tuned OOM-ladder policy (small, fast thresholds)."""
    from repro.faults import ResiliencePolicy
    return ResiliencePolicy(
        max_retries=2, sample_every=1, fail_threshold=2,
        recover_after=2, scrub_after=3,
        audit_every=int(params.get("audit_every", 1)))


@generator("preset.pressure")
def _gen_preset_pressure(params: Mapping[str, Any], rng: random.Random):
    """A small-pool RTOS7 tuned for memory pressure.

    ``blocks``/``block_kb`` shrink the SoCDMMU pool so exhaustion is
    reachable in a few dozen allocations; ``model`` optionally installs
    a seeded ``socdmmu-refcount`` / ``socdmmu-exhaust`` /
    ``socdmmu-mixed`` (or table leak/steal) fault plan.  Resilience —
    audits, the OOM ladder, the health FSM — is armed unless
    ``resilience`` is false.
    """
    from dataclasses import replace
    from repro.faults import FaultPlan, install_fault_plan
    from repro.framework.config import preset
    blocks = int(params.get("blocks", 24))
    block_bytes = int(params.get("block_kb", 4)) * 1024
    config = replace(preset("RTOS7"), socdmmu_blocks=blocks,
                     socdmmu_block_bytes=block_bytes)
    system = build_system(config)
    model = str(params.get("model", "none"))
    specs = () if model == "none" else _fault_specs(
        model, params, rng, blocks, system.config.num_pes)
    plan = FaultPlan(name=f"memory-pressure-{model}", specs=specs)
    policy = (_pressure_policy(params)
              if params.get("resilience", True) else None)
    install_fault_plan(system, plan, policy=policy)
    return system


@checker("memory.cow-storm")
def _check_cow_storm(system, params: Mapping[str, Any],
                     rng: random.Random, checkpoint=None) -> CheckOutcome:
    """A shadow-model CoW/fragmentation grind never reaches a wrong state.

    Drives the :class:`BlockAllocator` datapath directly — alloc,
    share, write-fault, free, teardown — against an independent shadow
    model (physical block -> set of (owner, virtual) references).  On
    every operation the allocator's answers must match the shadow
    exactly: an allocation may only hand out blocks the shadow says are
    free (no double-grant), refcounts must equal the shadow's reference
    counts, and every ``corrupt_every`` ops a seeded refcount/owner
    corruption followed by an audit must leave ``verify()`` empty with
    no block lost.  The teardown sweep must return the pool to fully
    free.

    Checkpoint-aware: the allocator payload, the shadow model, and the
    scenario RNG round-trip through the campaign checkpoint, so a
    killed worker resumes mid-storm with an identical trajectory
    (``crash_at_step`` hard-kills the first attempt, as in
    ``faults.detection-verdicts``).
    """
    from repro.socdmmu.allocator import BlockAllocator
    allocator = system.heap.allocator
    ops = int(params.get("ops", 3000))
    owners = [f"t{i}" for i in range(int(params.get("owners", 5)))]
    hold_max = int(params.get("hold_max", 0))  # 0 = no occupancy floor
    corrupt_every = int(params.get("corrupt_every", 0))
    crash_at = params.get("crash_at_step")
    saved = checkpoint.load() if checkpoint is not None else None
    if saved is not None:
        system.heap.allocator = allocator = BlockAllocator.from_payload(
            saved["allocator"])
        refs = {int(physical): {tuple(ref) for ref in ref_list}
                for physical, ref_list in saved["refs"]}
        _restore_rng(rng, saved["rng"])
        start_op = int(saved["op"])
        counts = dict(saved["counts"])
    else:
        refs = {}
        start_op = 0
        counts = {"allocs": 0, "shares": 0, "copies": 0, "frees": 0,
                  "repairs": 0}

    def shadow_free() -> int:
        return allocator.num_blocks - len(refs)

    def live_refs() -> list:
        return sorted(ref for ref_set in refs.values()
                      for ref in ref_set)

    def mismatch(op: int, what: str) -> CheckOutcome:
        return _failed(f"op {op}: {what}", steps=op)

    for op in range(start_op, ops):
        if (crash_at is not None and saved is None
                and op == int(crash_at)):
            os._exit(82)
        live = live_refs()
        choice = rng.random()
        want_alloc = hold_max and len(refs) < hold_max
        if not live or choice < 0.35 or want_alloc:
            owner = rng.choice(owners)
            blocks = rng.randint(1, 3)
            if shadow_free() < blocks:
                try:
                    allocator.allocate(owner, blocks)
                except AllocationError:
                    continue
                return mismatch(op, f"allocate({blocks}) succeeded with "
                                    f"{shadow_free()} shadow-free blocks")
            virtuals = allocator.allocate(owner, blocks)
            counts["allocs"] += 1
            for virtual in virtuals:
                physical = allocator.translate(owner, virtual)
                if physical in refs:
                    return mismatch(
                        op, f"double-grant: physical {physical} handed "
                            f"to {owner} while referenced by "
                            f"{sorted(refs[physical])}")
                if allocator.refcount_of(physical) != 1:
                    return mismatch(
                        op, f"fresh block {physical} has refcount "
                            f"{allocator.refcount_of(physical)}")
                refs[physical] = {(owner, virtual)}
        elif choice < 0.55:
            owner, virtual = rng.choice(live)
            new_owner = rng.choice(owners)
            physical = allocator.translate(owner, virtual)
            new_virtual = allocator.share(owner, virtual, new_owner)
            counts["shares"] += 1
            refs[physical].add((new_owner, new_virtual))
            if allocator.translate(new_owner, new_virtual) != physical:
                return mismatch(op, "share mapped the wrong physical")
            if allocator.refcount_of(physical) != len(refs[physical]):
                return mismatch(
                    op, f"refcount[{physical}] is "
                        f"{allocator.refcount_of(physical)}, shadow says "
                        f"{len(refs[physical])}")
        elif choice < 0.75:
            owner, virtual = rng.choice(live)
            physical = allocator.translate(owner, virtual)
            shared = len(refs[physical]) > 1
            if shared and shadow_free() == 0:
                try:
                    allocator.write_fault(owner, virtual)
                except AllocationError:
                    continue
                return mismatch(op, "CoW copy succeeded with no free block")
            copied = allocator.write_fault(owner, virtual)
            if copied != shared:
                return mismatch(
                    op, f"write_fault copied={copied}, shadow shared="
                        f"{shared} for physical {physical}")
            if copied:
                counts["copies"] += 1
                target = allocator.translate(owner, virtual)
                if target in refs:
                    return mismatch(
                        op, f"CoW copy landed on referenced block {target}")
                refs[physical].discard((owner, virtual))
                refs[target] = {(owner, virtual)}
        else:
            owner, virtual = rng.choice(live)
            physical = allocator.translate(owner, virtual)
            allocator.deallocate(owner, virtual)
            counts["frees"] += 1
            refs[physical].discard((owner, virtual))
            if not refs[physical]:
                del refs[physical]
                if allocator.owner_of(physical) is not None:
                    return mismatch(
                        op, f"last free left block {physical} owned by "
                            f"{allocator.owner_of(physical)!r}")
        if corrupt_every and (op + 1) % corrupt_every == 0:
            block = rng.randrange(allocator.num_blocks)
            if rng.random() < 0.5:
                allocator.corrupt_refcount(block, rng.randint(0, 5))
            else:
                allocator.corrupt(block, rng.choice([None, "<ghost>"]
                                                    + owners))
            counts["repairs"] += allocator.audit()
            violations = allocator.verify()
            if violations:
                return mismatch(op, f"verify after audit: {violations}")
        if allocator.free_blocks != shadow_free():
            return mismatch(
                op, f"{allocator.free_blocks} free blocks, shadow says "
                    f"{shadow_free()}")
        if checkpoint is not None and checkpoint.due(op + 1):
            checkpoint.save({
                "op": op + 1,
                "rng": _rng_state_payload(rng),
                "allocator": allocator.snapshot_payload(),
                "refs": sorted(
                    [physical, sorted(list(ref) for ref in ref_set)]
                    for physical, ref_set in refs.items()),
                "counts": dict(counts),
            })
    for owner in owners:
        allocator.deallocate_all(owner)
    allocator.audit()
    if allocator.verify():
        return _failed(f"teardown verify: {allocator.verify()}", steps=ops)
    if allocator.free_blocks != allocator.num_blocks:
        return _failed(
            f"teardown lost blocks: {allocator.free_blocks} free of "
            f"{allocator.num_blocks}", steps=ops)
    return _passed(
        steps=ops,
        detail=(f"{counts['allocs']} allocs, {counts['shares']} shares, "
                f"{counts['copies']} copies, {counts['frees']} frees, "
                f"{counts['repairs']} repairs"))


#: Opt in to mid-scenario checkpointing (see ``execute_scenario``).
_check_cow_storm.accepts_checkpoint = True


def _pressure_victim(ctx, size_bytes: int, die: bool):
    """Malloc, then terminate holding the handle.

    ``die=True`` raises (the kernel's fault-isolation teardown reclaims
    the handle immediately); ``die=False`` finishes normally still
    holding it, which only the OOM ladder's lazy terminated-owner sweep
    can recover.
    """
    yield from ctx.malloc(size_bytes)
    yield from ctx.compute(200.0)
    if die:
        raise RuntimeError("victim dies holding G_blocks")


def _pressure_driver(ctx, heap, report: list):
    """The scripted exhaustion ladder: fill, reclaim, degrade, fail back.

    Runs the whole OOM story in one deterministic task: CoW warm-up,
    fill the pool, recover one allocation by reclaiming the dead
    victim's blocks, drive two persistent-exhaustion ladders into
    failover, free the hogs, churn the software fallback until scrubs
    fail the unit back, and end with a clean hardware allocation.
    Failures are appended to ``report`` (checked after the run).
    """
    allocator = heap.allocator
    block_bytes = allocator.block_bytes
    policy = heap.resilience

    def expect(condition: bool, message: str) -> None:
        if not condition:
            report.append(f"at {ctx.now:g}: {message}")

    yield from ctx.sleep(4000.0)  # let both victims terminate
    # The crashed victim's handle was reclaimed by the kernel's
    # fault-isolation teardown the moment it died.
    teardown_reclaimed = heap.reclaimed_blocks
    expect(teardown_reclaimed > 0,
           "kernel teardown never reclaimed the crashed victim")
    # CoW warm-up: fork + split + free while there is still room.
    parent = yield from heap.malloc(ctx, 2 * block_bytes)
    fork = yield from heap.fork_handle(ctx, parent)
    copied = yield from heap.write_fault(ctx, fork, 0)
    expect(copied, "write fault on a forked handle made no copy")
    yield from heap.free(ctx, fork)
    yield from heap.free(ctx, parent)
    # Fill the pool (the ghost model may cost recovered OOMs here).
    hogs = []
    while allocator.free_blocks > 0:
        span = min(4, allocator.free_blocks)
        handle = yield from heap.malloc(ctx, span * block_bytes)
        hogs.append(handle)
    expect(allocator.free_blocks == 0, "fill loop left free blocks")
    # Reclaim-then-retry: the ladder's lazy sweep recovers the handle
    # the *finished* victim still holds.
    reclaim_handle = yield from heap.malloc(ctx, block_bytes)
    expect(heap.reclaimed_blocks > teardown_reclaimed,
           "OOM ladder never swept the finished victim's blocks")
    expect(heap.oom_recoveries > 0, "reclaim-retry never recovered")
    hogs.append(reclaim_handle)
    while allocator.free_blocks > 0:
        handle = yield from heap.malloc(ctx, block_bytes)
        hogs.append(handle)
    # Persistent exhaustion: two failed ladders trip the health FSM.
    soft = []
    soft.append((yield from heap.malloc(ctx, block_bytes)))
    soft.append((yield from heap.malloc(ctx, block_bytes)))
    expect(heap.mode == "software",
           f"unit still {heap.mode!r} after persistent exhaustion")
    expect(heap.failovers == 1, f"failovers == {heap.failovers}")
    # Free the hogs (hardware frees still work while degraded) ...
    for handle in hogs:
        yield from heap.free(ctx, handle)
    # ... then churn the fallback until scrub probes fail the unit back.
    for _ in range(2 * max(1, policy.scrub_after)):
        soft.append((yield from heap.malloc(ctx, block_bytes)))
    expect(heap.mode == "hardware",
           f"unit never failed back (mode={heap.mode!r}, "
           f"scrubs={heap.scrubs})")
    expect(heap.failbacks == 1, f"failbacks == {heap.failbacks}")
    final = yield from heap.malloc(ctx, block_bytes)
    yield from heap.free(ctx, final)
    for address in soft:
        yield from heap.free(ctx, address)


@checker("memory.exhaustion-recovery")
def _check_exhaustion(system, params: Mapping[str, Any],
                      rng: random.Random) -> CheckOutcome:
    """Exhaustion always ends in recovery, never in a wrong state.

    One scripted driver task walks the whole OOM ladder (see
    :func:`_pressure_driver`) on a small pool while a victim task dies
    holding G_blocks; optional ``socdmmu-*`` fault models ghost free
    blocks and skew refcounts along the way.  Afterwards: every OOM was
    recovered (reclaim-retry, a served fallback, or a failover that
    failed back), the tables verify clean, no block is lost, and the
    software fallback holds nothing.
    """
    kernel = system.kernel
    heap = system.heap
    kernel.isolate_task_failures = True
    horizon = float(params.get("horizon", 6_000_000))
    victim_blocks = int(params.get("victim_blocks", 2))
    report: list = []
    victim_bytes = victim_blocks * heap.allocator.block_bytes
    kernel.create_task(
        lambda ctx: _pressure_victim(ctx, victim_bytes, die=True),
        "victim-dead", 1, "PE1")
    kernel.create_task(
        lambda ctx: _pressure_victim(ctx, victim_bytes, die=False),
        "victim-lazy", 2, "PE1")
    kernel.create_task(
        lambda ctx: _pressure_driver(ctx, heap, report),
        "driver", 3, "PE2")
    end = kernel.run(until=horizon)
    if not kernel.finished("driver"):
        return _failed("the driver never finished", cycles=end)
    if report:
        return _failed("; ".join(report), cycles=end)
    if heap.oom_events == 0:
        return _failed("the scenario never exhausted the pool", cycles=end)
    recoveries = heap.oom_recoveries + heap.software_served
    if recoveries == 0:
        return _failed(f"{heap.oom_events} OOMs, none recovered",
                       cycles=end)
    if heap.failovers != heap.failbacks:
        return _failed(
            f"{heap.failovers} failovers vs {heap.failbacks} failbacks",
            cycles=end)
    violations = heap.allocator.verify()
    if violations:
        return _failed(f"tables verify dirty: {violations}", cycles=end)
    if heap.allocator.used_blocks != 0:
        return _failed(
            f"{heap.allocator.used_blocks} blocks still owned after "
            "teardown", cycles=end)
    fallback = heap._fallback
    if fallback is not None and fallback.in_use_bytes:
        return _failed(
            f"software fallback still holds {fallback.in_use_bytes} "
            "bytes", cycles=end)
    injector = system.fault_injector
    fired = len(injector.records) if injector is not None else 0
    if str(params.get("model", "none")) != "none" and fired == 0:
        return _failed("the fault model never fired", cycles=end)
    return _passed(
        steps=heap.stats.malloc_calls, cycles=end,
        detail=(f"{heap.oom_events} OOMs, {heap.oom_recoveries} "
                f"recovered, {heap.reclaimed_blocks} blocks reclaimed, "
                f"{heap.failovers} failover(s), {heap.scrubs} scrubs, "
                f"{heap.audit_repairs} repairs, {fired} injections"))


def _vs_software_driver(ctx, heap, script: list, trace: list):
    """Run one seeded alloc/free script, recording per-op outcomes.

    Appends ``("ok"|"oom", mm_cycle_delta)`` per op so two heap
    services can be compared op-for-op.  Held allocations are tracked
    by script slot; a final sweep frees everything.
    """
    held: dict[int, int] = {}
    for op, slot, size_bytes in script:
        before = heap.stats.mm_cycles
        if op == "malloc":
            try:
                held[slot] = yield from heap.malloc(ctx, size_bytes)
            except AllocationError:
                trace.append(("oom", heap.stats.mm_cycles - before))
                continue
            trace.append(("ok", heap.stats.mm_cycles - before))
        else:
            address = held.pop(slot, None)
            if address is None:
                trace.append(("skip", 0.0))
                continue
            yield from heap.free(ctx, address)
            trace.append(("ok", heap.stats.mm_cycles - before))
    for slot in sorted(held):
        yield from heap.free(ctx, held[slot])


@checker("memory.vs-software")
def _check_vs_software(system, params: Mapping[str, Any],
                       rng: random.Random) -> CheckOutcome:
    """SoCDMMU and SoftwareHeap agree on outcomes; the unit is flat.

    The same seeded malloc/free script runs against the RTOS7 unit and
    a freshly built RTOS5 software heap.  Both must produce the same
    per-op success pattern and end empty; the SoCDMMU's per-malloc
    management cost must be *constant* (the Tables 11-12 determinism
    claim) and its worst case no slower than the software heap's worst
    case.
    """
    ops = int(params.get("ops", 80))
    block_bytes = system.heap.allocator.block_bytes
    # Bound the live set so both heaps can always serve the script; the
    # exhaustion differential is memory.exhaustion-recovery's job.
    slots = int(params.get("slots", 8))
    script, live = [], set()
    for _ in range(ops):
        slot = rng.randrange(slots)
        if slot in live:
            script.append(("free", slot, 0))
            live.discard(slot)
        else:
            script.append(("malloc", slot,
                           rng.randint(1, 3) * block_bytes))
            live.add(slot)
    traces = {}
    for label, target in (("hardware", system),
                          ("software", build_system("RTOS5"))):
        trace: list = []
        target.kernel.create_task(
            lambda ctx, heap=target.heap, t=trace:
                _vs_software_driver(ctx, heap, script, t),
            "driver", 1, "PE1")
        end = target.kernel.run(until=float(params.get(
            "horizon", 4_000_000)))
        if not target.kernel.finished("driver"):
            return _failed(f"{label} driver never finished", cycles=end)
        traces[label] = trace
    hw, sw = traces["hardware"], traces["software"]
    pattern_hw = [kind for kind, _ in hw]
    pattern_sw = [kind for kind, _ in sw]
    if pattern_hw != pattern_sw:
        first = next(i for i, (a, b) in enumerate(
            zip(pattern_hw, pattern_sw)) if a != b)
        return _failed(
            f"outcome divergence at op {first}: hardware "
            f"{pattern_hw[first]} vs software {pattern_sw[first]}")
    hw_mallocs = [delta for (kind, delta), (op, _s, _b) in zip(hw, script)
                  if kind == "ok" and op == "malloc"]
    sw_mallocs = [delta for (kind, delta), (op, _s, _b) in zip(sw, script)
                  if kind == "ok" and op == "malloc"]
    if not hw_mallocs:
        return _failed("script produced no successful mallocs")
    if max(hw_mallocs) != min(hw_mallocs):
        return _failed(
            f"SoCDMMU malloc cost varies: {min(hw_mallocs)} .. "
            f"{max(hw_mallocs)} cycles")
    if max(hw_mallocs) > max(sw_mallocs):
        return _failed(
            f"SoCDMMU worst case {max(hw_mallocs)} cycles exceeds the "
            f"software heap's {max(sw_mallocs)}")
    hw_heap, sw_heap = system.heap, None
    if hw_heap.allocator.used_blocks != 0:
        return _failed(
            f"{hw_heap.allocator.used_blocks} blocks leaked by the "
            "hardware run")
    return _passed(
        steps=len(script),
        cycles=float(sum(delta for _, delta in hw)),
        detail=(f"{len(hw_mallocs)} mallocs agree; unit flat at "
                f"{max(hw_mallocs):g} cycles vs software worst "
                f"{max(sw_mallocs):g}"))
