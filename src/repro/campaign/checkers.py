"""Scenario generators and checkers (the campaign's registries).

A *generator* builds the subject under test — a RAG, a multi-unit
system, a process/resource census, or a whole built RTOS/MPSoC — from a
scenario's parameter dict and its private seeded RNG.  A *checker*
grinds the subject against one of the paper's claims and returns a
:class:`CheckOutcome`.  Both registries are keyed by short stable names
so scenarios serialize to JSON and replay anywhere.

Every generator and checker takes ``(params, rng)`` /
``(subject, params, rng)`` with a :class:`random.Random` owned by the
scenario (seeded from the run's seed root, see
:func:`repro.campaign.spec.derive_seed`); none touches the ambient
``random`` module, which is what makes campaigns bit-for-bit
replayable.

The ``chaos.*`` checkers are deliberate fault injectors (hard process
exit, hang) used to test — and demonstrate — the runner's worker-crash
isolation and per-task timeout handling.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.deadlock.dau import DAU
from repro.deadlock.ddu import DDU
from repro.deadlock.pdda import pdda_detect
from repro.deadlock.recovery import apply_plan, plan_recovery
from repro.errors import ConfigurationError
from repro.framework.builder import build_system
from repro.rag.bitmatrix import FAST_BACKEND, REFERENCE_BACKEND
from repro.rag.generate import (
    chain_state,
    cycle_state,
    deadlock_free_state,
    random_multiunit_state,
    random_state,
    worst_case_state,
)

#: name -> fn(params, rng) -> subject
GENERATORS: dict[str, Callable] = {}
#: name -> fn(subject, params, rng) -> CheckOutcome
CHECKERS: dict[str, Callable] = {}


def generator(name: str) -> Callable:
    def register(fn: Callable) -> Callable:
        GENERATORS[name] = fn
        return fn
    return register


def checker(name: str) -> Callable:
    def register(fn: Callable) -> Callable:
        CHECKERS[name] = fn
        return fn
    return register


def lookup(kind: str, name: str) -> Callable:
    registry = GENERATORS if kind == "generator" else CHECKERS
    try:
        return registry[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown {kind} {name!r}; available: "
            f"{sorted(registry)}") from None


@dataclass(frozen=True)
class CheckOutcome:
    """What one checker concluded about one scenario."""

    ok: bool
    #: "pass" or "fail" — infrastructure verdicts ("error", "timeout",
    #: "crash") are assigned by the runner, never by a checker.
    verdict: str
    #: Algorithm steps taken (reduction iterations, decisions, ...).
    steps: int = 0
    #: Modelled cost in bus cycles (hardware or software model).
    cycles: float = 0.0
    detail: str = ""


def _passed(steps: int = 0, cycles: float = 0.0,
            detail: str = "") -> CheckOutcome:
    return CheckOutcome(ok=True, verdict="pass", steps=steps,
                        cycles=cycles, detail=detail)


def _failed(detail: str, steps: int = 0,
            cycles: float = 0.0) -> CheckOutcome:
    return CheckOutcome(ok=False, verdict="fail", steps=steps,
                        cycles=cycles, detail=detail)


# -- generators ---------------------------------------------------------------

@generator("rag.random")
def _gen_rag_random(params: Mapping[str, Any], rng: random.Random):
    return random_state(int(params.get("m", 5)), int(params.get("n", 5)),
                        grant_fraction=params.get("grant_fraction", 0.6),
                        request_fraction=params.get("request_fraction", 0.3),
                        rng=rng)


@generator("rag.deadlock_free")
def _gen_rag_free(params: Mapping[str, Any], rng: random.Random):
    return deadlock_free_state(int(params.get("m", 5)),
                               int(params.get("n", 5)), rng=rng)


@generator("rag.cycle")
def _gen_rag_cycle(params: Mapping[str, Any], rng: random.Random):
    return cycle_state(int(params.get("length", 4)))


@generator("rag.chain")
def _gen_rag_chain(params: Mapping[str, Any], rng: random.Random):
    return chain_state(int(params.get("length", 4)))


@generator("rag.worst_case")
def _gen_rag_worst(params: Mapping[str, Any], rng: random.Random):
    return worst_case_state(int(params.get("m", 5)),
                            int(params.get("n", 5)))


@generator("multiunit.random")
def _gen_multiunit(params: Mapping[str, Any], rng: random.Random):
    return random_multiunit_state(
        int(params.get("m", 4)), int(params.get("n", 4)),
        max_units=int(params.get("max_units", 1)),
        grant_fraction=params.get("grant_fraction", 0.6),
        request_fraction=params.get("request_fraction", 0.3),
        rng=rng)


@generator("census")
def _gen_census(params: Mapping[str, Any], rng: random.Random):
    """Bare (processes, resources, priorities) names, no state."""
    m = int(params.get("m", 5))
    n = int(params.get("n", 5))
    processes = tuple(f"p{t + 1}" for t in range(n))
    resources = tuple(f"q{s + 1}" for s in range(m))
    priorities = {p: i + 1 for i, p in enumerate(processes)}
    return (processes, resources, priorities)


@generator("preset")
def _gen_preset(params: Mapping[str, Any], rng: random.Random):
    """A built RTOS/MPSoC from a Table 3 preset (RTOS1..RTOS7)."""
    return build_system(params.get("preset", "RTOS2"))


# -- checkers: the paper's claims ---------------------------------------------

def _iteration_bound(m: int, n: int) -> int:
    smallest = min(m, n)
    if smallest == 1:
        return 1
    return max(2, 2 * smallest - 3)


@checker("pdda-vs-oracle")
def _check_pdda(rag, params: Mapping[str, Any],
                rng: random.Random) -> CheckOutcome:
    """PDDA === structural cycle oracle, within the proven step bound."""
    oracle = rag.has_cycle()
    result = pdda_detect(rag)
    bound = _iteration_bound(rag.num_resources, rag.num_processes)
    if result.deadlock != oracle:
        return _failed(f"PDDA says {result.deadlock}, oracle says "
                       f"{oracle}", steps=result.iterations,
                       cycles=result.software_cycles)
    if result.iterations > bound:
        return _failed(f"{result.iterations} iterations exceeds the "
                       f"O(min(m,n)) bound {bound}",
                       steps=result.iterations,
                       cycles=result.software_cycles)
    return _passed(steps=result.iterations,
                   cycles=result.software_cycles,
                   detail=f"deadlock={result.deadlock}")


@checker("ddu-vs-structural")
def _check_ddu(rag, params: Mapping[str, Any],
               rng: random.Random) -> CheckOutcome:
    """The DDU cycle model agrees with the oracle and with PDDA."""
    ddu = DDU(rag.num_resources, rag.num_processes)
    ddu.load(rag)
    hw = ddu.detect()
    oracle = rag.has_cycle()
    sw = pdda_detect(rag)
    if hw.deadlock != oracle:
        return _failed(f"DDU says {hw.deadlock}, oracle says {oracle}",
                       steps=hw.iterations, cycles=hw.cycles)
    if hw.deadlock != sw.deadlock or hw.iterations != sw.iterations:
        return _failed(
            f"DDU ({hw.deadlock}, {hw.iterations} iters) disagrees with "
            f"PDDA ({sw.deadlock}, {sw.iterations} iters)",
            steps=hw.iterations, cycles=hw.cycles)
    if hw.iterations > ddu.iteration_bound:
        return _failed(f"{hw.iterations} iterations exceeds the unit "
                       f"bound {ddu.iteration_bound}",
                       steps=hw.iterations, cycles=hw.cycles)
    return _passed(steps=hw.iterations, cycles=hw.cycles,
                   detail=f"deadlock={hw.deadlock}")


@checker("pdda-backends-agree")
def _check_backends(rag, params: Mapping[str, Any],
                    rng: random.Random) -> CheckOutcome:
    """The bitmask fast path is bit-identical to the reference matrix.

    Runs PDDA twice — once per backend — and demands the same verdict,
    iteration/pass counts, modelled cycles and residual edges.  This is
    the campaign-side differential oracle for
    :class:`repro.rag.bitmatrix.BitMatrix`.
    """
    fast = pdda_detect(rag, backend=FAST_BACKEND)
    reference = pdda_detect(rag, backend=REFERENCE_BACKEND)
    fast_counts = (fast.deadlock, fast.iterations, fast.passes,
                   fast.software_cycles)
    ref_counts = (reference.deadlock, reference.iterations,
                  reference.passes, reference.software_cycles)
    if fast_counts != ref_counts:
        return _failed(
            f"bitmask {fast_counts} != reference {ref_counts}",
            steps=fast.iterations, cycles=fast.software_cycles)
    if fast.residual != reference.residual:
        return _failed("residual matrices differ between backends",
                       steps=fast.iterations,
                       cycles=fast.software_cycles)
    return _passed(steps=fast.iterations, cycles=fast.software_cycles,
                   detail=f"deadlock={fast.deadlock} "
                          f"passes={fast.passes}")


@checker("dau-invariants")
def _check_dau(census, params: Mapping[str, Any],
               rng: random.Random) -> CheckOutcome:
    """Drive a DAU with random traffic from cooperative tasks.

    Tasks honor every ``ask_release`` demand (Assumption 3), so after
    each decision cascade the RAG must be deadlock-free again — the
    paper's avoidance outcome — and every decision must respect the
    Table 2 worst-case step bound and publish a coherent status
    register.
    """
    processes, resources, priorities = census
    dau = DAU(processes, resources, priorities)
    events = int(params.get("events", 60))
    max_cycles = 0.0
    decisions = 0

    def obey(decision) -> list:
        return [(proc, res) for proc, res in decision.ask_release
                if dau.rag.holder_of(res) == proc]

    for step in range(events):
        rag = dau.rag
        ops: list = []
        for p in processes:
            held = set(rag.held_by(p))
            pending = set(rag.requests_of(p))
            ops.extend(("request", p, r) for r in resources
                       if r not in held and r not in pending)
            ops.extend(("release", p, r) for r in sorted(held))
            ops.extend(("withdraw", p, r) for r in sorted(pending))
        if not ops:
            break
        op, p, r = rng.choice(ops)
        if op == "withdraw":
            dau.withdraw(p, r)
            continue
        demands = [(op, p, r)]
        cascade = 0
        while demands:
            cascade += 1
            if cascade > 10 * len(processes) * len(resources):
                return _failed("ask_release cascade did not converge",
                               steps=decisions, cycles=max_cycles)
            this_op, proc, res = demands.pop(0)
            decision = dau.write_command(f"PE_{proc}", this_op, proc, res)
            decisions += 1
            max_cycles = max(max_cycles, decision.cycles)
            if decision.cycles > dau.worst_case_steps:
                return _failed(
                    f"decision cost {decision.cycles} exceeds worst-case "
                    f"bound {dau.worst_case_steps}",
                    steps=decisions, cycles=max_cycles)
            status = dau.read_status(proc)
            if status.busy or not status.done:
                return _failed(f"status register of {proc} not settled "
                               "after a decision", steps=decisions,
                               cycles=max_cycles)
            flags = [status.successful, status.pending, status.give_up]
            if sum(flags) != 1:
                return _failed(
                    f"incoherent status flags for {proc}: "
                    f"successful={status.successful} "
                    f"pending={status.pending} give_up={status.give_up}",
                    steps=decisions, cycles=max_cycles)
            demands.extend(("release", q_proc, q_res)
                           for q_proc, q_res in obey(decision))
        if pdda_detect(dau.rag).deadlock:
            return _failed(
                f"RAG deadlocked after event {step} with every "
                "ask_release honored", steps=decisions, cycles=max_cycles)
    return _passed(steps=decisions, cycles=max_cycles,
                   detail=f"{decisions} decisions, max "
                          f"{max_cycles:g} cycles")


@checker("multiunit-vs-projection")
def _check_multiunit(system, params: Mapping[str, Any],
                     rng: random.Random) -> CheckOutcome:
    """Coffman detection is deterministic; single-unit states must
    agree with PDDA through the RAG projection."""
    first = system.detect()
    second = system.copy().detect()
    if first != second:
        return _failed("detection is not deterministic",
                       steps=first.operations)
    stuck = [p for p in first.deadlocked_processes
             if not any(system.outstanding_request(p, q) > 0
                        for q in system.resources)]
    if stuck:
        return _failed(f"deadlocked processes without outstanding "
                       f"requests: {stuck}", steps=first.operations)
    single_unit = all(system.total_units(q) == 1 for q in system.resources)
    if single_unit:
        sw = pdda_detect(system.to_rag())
        if sw.deadlock != first.deadlock:
            return _failed(
                f"multi-unit detection says {first.deadlock}, PDDA on "
                f"the projection says {sw.deadlock}",
                steps=first.operations)
    return _passed(steps=first.operations,
                   detail=f"deadlock={first.deadlock} "
                          f"single_unit={single_unit}")


@checker("recovery-converges")
def _check_recovery(rag, params: Mapping[str, Any],
                    rng: random.Random) -> CheckOutcome:
    """Recovery planning breaks every cycle, for every strategy."""
    detection = pdda_detect(rag)
    if not detection.deadlock:
        return _passed(detail="no deadlock to recover from")
    strategy = params.get("strategy", "lowest-priority")
    priorities = {p: i + 1 for i, p in enumerate(rag.processes)}
    plan = plan_recovery(rag, priorities, strategy)
    scratch = rag.copy()
    apply_plan(scratch, plan)          # raises if a cycle survives
    if pdda_detect(scratch).deadlock:
        return _failed(f"residual deadlock after plan {plan.victims}",
                       steps=len(plan.steps), cycles=plan.cost)
    return _passed(steps=len(plan.steps), cycles=plan.cost,
                   detail=f"victims={','.join(plan.victims)}")


def _ordered_worker(ctx, resources: tuple, work: float):
    """Acquire in global order (deadlock-free), compute, release."""
    for resource in resources:
        yield from ctx.acquire(resource)
    address = yield from ctx.malloc(4096)
    yield from ctx.compute(work)
    yield from ctx.free(address)
    for resource in reversed(resources):
        yield from ctx.release_resource(resource)


def _lock_worker(ctx, lock_id: str, work: float):
    """Lock/compute/unlock plus a malloc/free pair (RTOS5-7 configs)."""
    yield from ctx.lock(lock_id)
    address = yield from ctx.malloc(4096)
    yield from ctx.compute(work)
    yield from ctx.free(address)
    yield from ctx.unlock(lock_id)


@checker("sim-run-completes")
def _check_sim(system, params: Mapping[str, Any],
               rng: random.Random) -> CheckOutcome:
    """A randomized full-system workload runs to completion.

    One task per PE performs globally-ordered resource acquisition (so
    the workload itself is deadlock-free), dynamic allocation and
    computation; the run must finish every task before the horizon with
    no leaked resources.
    """
    kernel = system.kernel
    resources = tuple(system.config.peripherals)
    processes = tuple(f"p{i + 1}" for i in range(system.config.num_pes))
    horizon = float(params.get("horizon", 2_000_000))
    if system.config.soclc:
        # The SoCLC binds named locks to hardware cells up front;
        # ceiling 1 = the highest task priority in this workload.
        for i in range(4):
            system.lock_manager.register_lock(f"L{i}", kind="long",
                                              ceiling=1)
    for index, name in enumerate(processes):
        work = float(rng.randint(500, 3000))
        pe = f"PE{index + 1}"
        if system.resource_service is not None:
            count = rng.randint(1, min(3, len(resources)))
            chosen = tuple(sorted(rng.sample(resources, count),
                                  key=resources.index))
            kernel.create_task(
                lambda ctx, c=chosen, w=work: _ordered_worker(ctx, c, w),
                name, index + 1, pe)
        else:
            lock = f"L{rng.randint(0, 3)}"
            kernel.create_task(
                lambda ctx, lk=lock, w=work: _lock_worker(ctx, lk, w),
                name, index + 1, pe)
    end = kernel.run(until=horizon)
    if not kernel.finished():
        unfinished = [name for name in processes
                      if not kernel.finished(name)]
        return _failed(f"tasks never finished: {unfinished}",
                       cycles=end)
    if kernel.leaks:
        return _failed(f"finished with leaks: {kernel.leaks}", cycles=end)
    return _passed(steps=len(processes), cycles=end,
                   detail=f"{system.name} finished at {end:g}")


# -- chaos checkers (fault injection for the runner itself) -------------------

@checker("chaos.crash")
def _check_crash(subject, params: Mapping[str, Any],
                 rng: random.Random) -> CheckOutcome:
    """Kill the worker process outright (no Python unwinding)."""
    os._exit(int(params.get("exit_code", 66)))


@checker("chaos.crash_once")
def _check_crash_once(subject, params: Mapping[str, Any],
                      rng: random.Random) -> CheckOutcome:
    """Crash the worker on the first run, pass on the retry.

    Uses a marker file handed in via ``params["marker"]`` to remember
    the first attempt across processes — exercises the runner's
    crash-retry recovery path end to end.
    """
    marker = params.get("marker", "")
    if marker and not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("crashed\n")
        os._exit(int(params.get("exit_code", 66)))
    return _passed(detail="survived the retry")


@checker("chaos.hang")
def _check_hang(subject, params: Mapping[str, Any],
                rng: random.Random) -> CheckOutcome:
    """Busy-hang long enough to trip any per-task timeout."""
    time.sleep(float(params.get("seconds", 3600.0)))
    return _failed("hang completed without a timeout")
