"""repro.campaign — sharded scenario campaigns with deterministic replay.

The paper's claims are validated in the test suite on small exhaustive
sweeps; this package is the scale substrate the ROADMAP asks for: grind
*millions* of randomized scenarios against the oracle checkers at full
machine speed, store every verdict, replay any failure from its
manifest, and gate changes by diffing two runs.

The pieces:

* :mod:`repro.campaign.spec` — declarative :class:`ScenarioSpec` /
  :class:`CampaignSpec` (JSON round-trip) and the hash-derived
  per-scenario seeding rule;
* :mod:`repro.campaign.checkers` — generator and checker registries
  (PDDA-vs-oracle, DDU-vs-structural, DAU invariants, multi-unit
  projection, recovery convergence, full-system sim runs, chaos fault
  injectors);
* :mod:`repro.campaign.runner` — the sharded ``multiprocessing`` pool
  with per-task timeouts, worker-crash isolation and bounded retry;
* :mod:`repro.campaign.store` — JSONL results + the run manifest;
* :mod:`repro.campaign.diff` — regression gating between two manifests;
* ``python -m repro.campaign`` — the ``run`` / ``replay`` / ``diff``
  CLI.

Quick start::

    from repro.campaign import CampaignRunner, builtin_campaign
    run = CampaignRunner(builtin_campaign("smoke"), seed_root=42,
                         workers=4, task_timeout=30.0).run()
    print(run.render_summary())
"""

from repro.campaign.spec import (
    CampaignSpec,
    Scenario,
    ScenarioSpec,
    derive_seed,
)
from repro.campaign.checkers import (
    CHECKERS,
    CheckOutcome,
    GENERATORS,
)
from repro.campaign.runner import (
    FAILURE_VERDICTS,
    TIMING_FIELDS,
    CampaignRun,
    CampaignRunner,
    ScenarioResult,
    execute_scenario,
    replay_scenario,
    strip_timing,
)
from repro.campaign.store import (
    load_manifest,
    load_results,
    results_digest,
    write_run,
)
from repro.campaign.diff import ManifestDiff, diff_manifests
from repro.campaign.presets import BUILTIN_CAMPAIGNS, builtin_campaign

__all__ = [
    "CampaignSpec",
    "ScenarioSpec",
    "Scenario",
    "derive_seed",
    "GENERATORS",
    "CHECKERS",
    "CheckOutcome",
    "CampaignRunner",
    "CampaignRun",
    "ScenarioResult",
    "execute_scenario",
    "replay_scenario",
    "strip_timing",
    "TIMING_FIELDS",
    "FAILURE_VERDICTS",
    "write_run",
    "load_manifest",
    "load_results",
    "results_digest",
    "diff_manifests",
    "ManifestDiff",
    "BUILTIN_CAMPAIGNS",
    "builtin_campaign",
]
