"""The sharded campaign runner.

Scenarios are dealt round-robin onto ``workers`` shards; each shard is
one ``multiprocessing`` worker process that executes its scenarios
serially and streams one result record per scenario back through a
shared queue.  Fault handling:

* **per-task timeout** — each scenario is armed with a ``SIGALRM``
  interval timer inside the worker; a scenario that overruns yields a
  ``"timeout"`` verdict and the shard moves on;
* **worker crash isolation** — a worker that dies mid-scenario (hard
  ``os._exit``, segfault, OOM kill) loses only its *unreported*
  scenarios; the parent notices the dead process, keeps every record
  already streamed, and re-runs the missing scenarios one per fresh
  process with bounded retry and exponential backoff.  Scenarios that
  keep killing their process are recorded with verdict ``"crash"``;
* **interrupt / SIGTERM as worker loss** — a ``KeyboardInterrupt`` or
  ``SIGTERM`` delivered to a shard worker (cluster preemption, operator
  Ctrl-C reaching the process group) is not a scenario verdict: the
  worker reports itself *lost* naming the scenario it was on, the loss
  is recorded in the run manifest (``worker_losses``), and the
  unreported scenarios go down the same retry path as a crash;
* **graceful partial results** — the result list is complete in every
  case: one record per expanded scenario, sorted by scenario id.

Verdicts and the steps/cycles measurements depend only on the spec and
the seed root — never on worker count, shard layout, or wall-clock —
so two runs of the same campaign produce identical result JSONL modulo
the :data:`TIMING_FIELDS`.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import random
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Union

from pathlib import Path

from repro.campaign.checkers import lookup
from repro.campaign.spec import CampaignSpec, Scenario
from repro.errors import ReproError
from repro.obs import (
    FlightRecorder,
    Observability,
    blackbox_to_perfetto,
    build_profile,
    clear_live_systems,
    live_systems,
    merge_profiles,
    set_default_enabled,
)

#: Record fields that carry wall-clock or placement information; strip
#: them (see :func:`strip_timing`) before comparing two runs for
#: reproducibility.
TIMING_FIELDS = ("duration", "start", "shard", "attempts")

#: True when the platform has per-process interval timers.  Windows has
#: neither ``SIGALRM`` nor ``setitimer``; there the per-task timeout
#: degrades to a documented no-op — scenarios run unguarded, while
#: worker-crash isolation and retry still apply — instead of an
#: ``AttributeError`` inside every worker.
HAS_SIGALRM = hasattr(signal, "SIGALRM") and hasattr(signal, "setitimer")

#: Verdicts that count as scenario failures.
FAILURE_VERDICTS = ("fail", "error", "timeout", "crash")


def strip_timing(record: Mapping[str, Any]) -> dict:
    """A record with placement/wall-clock fields removed."""
    return {k: v for k, v in record.items() if k not in TIMING_FIELDS}


@dataclass
class ScenarioResult:
    """One scenario's outcome, as stored in the result JSONL."""

    scenario_id: str
    seed: int
    generator: str
    checker: str
    params: dict
    verdict: str          # pass | fail | error | timeout | crash
    ok: bool
    steps: int = 0
    cycles: float = 0.0
    detail: str = ""
    duration: float = 0.0   # wall seconds spent on the final attempt
    start: float = 0.0      # wall seconds since campaign start
    shard: int = 0
    attempts: int = 1

    def to_record(self) -> dict:
        return {
            "scenario_id": self.scenario_id,
            "seed": self.seed,
            "generator": self.generator,
            "checker": self.checker,
            "params": dict(self.params),
            "verdict": self.verdict,
            "ok": self.ok,
            "steps": self.steps,
            "cycles": self.cycles,
            "detail": self.detail,
            "duration": self.duration,
            "start": self.start,
            "shard": self.shard,
            "attempts": self.attempts,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "ScenarioResult":
        return cls(**{k: record[k] for k in (
            "scenario_id", "seed", "generator", "checker", "params",
            "verdict", "ok", "steps", "cycles", "detail", "duration",
            "start", "shard", "attempts")})


class _ScenarioTimeout(Exception):
    pass


def _alarm_handler(signum, frame):  # pragma: no cover - fires in workers
    raise _ScenarioTimeout()


def execute_scenario(scenario: Scenario,
                     checkpoint_dir: Optional[str] = None
                     ) -> ScenarioResult:
    """Run one scenario in-process (the worker and replay path).

    Builds the scenario's private RNG from its derived seed, runs
    generator then checker, and maps any :class:`ReproError` (or other
    exception) to an ``"error"`` verdict — a checker bug must not take
    down a shard.

    When ``checkpoint_dir`` is set and the checker opted in (an
    ``accepts_checkpoint`` attribute), the checker is handed a
    :class:`~repro.checkpoint.scenario.ScenarioCheckpoint` so it can
    save mid-scenario state at its cadence and restore after a crash;
    the checkpoint file is cleared once the scenario completes.
    """
    generate = lookup("generator", scenario.generator)
    check = lookup("checker", scenario.checker)
    rng = random.Random(scenario.seed)
    checkpoint = None
    if checkpoint_dir and getattr(check, "accepts_checkpoint", False):
        from repro.checkpoint.scenario import (
            DEFAULT_CADENCE,
            ScenarioCheckpoint,
        )
        checkpoint = ScenarioCheckpoint(
            checkpoint_dir, scenario.scenario_id,
            cadence=int(scenario.params.get("checkpoint_every",
                                            DEFAULT_CADENCE)))
    try:
        subject = generate(dict(scenario.params), rng)
        if checkpoint is not None:
            outcome = check(subject, dict(scenario.params), rng,
                            checkpoint=checkpoint)
        else:
            outcome = check(subject, dict(scenario.params), rng)
        if checkpoint is not None:
            checkpoint.clear()
        verdict, ok = outcome.verdict, outcome.ok
        steps, cycles, detail = (outcome.steps, outcome.cycles,
                                 outcome.detail)
    except _ScenarioTimeout:
        raise
    except ReproError as exc:
        verdict, ok = "error", False
        steps, cycles = 0, 0.0
        detail = f"{type(exc).__name__}: {exc}"
    except Exception as exc:  # noqa: BLE001 - shard must survive
        verdict, ok = "error", False
        steps, cycles = 0, 0.0
        detail = f"{type(exc).__name__}: {exc}"
    return ScenarioResult(
        scenario_id=scenario.scenario_id, seed=scenario.seed,
        generator=scenario.generator, checker=scenario.checker,
        params=dict(scenario.params), verdict=verdict, ok=ok,
        steps=steps, cycles=cycles, detail=detail)


def _run_with_timeout(scenario: Scenario, timeout: Optional[float],
                      checkpoint_dir: Optional[str] = None
                      ) -> ScenarioResult:
    if timeout is None or not HAS_SIGALRM:
        # No-timeout fallback: without SIGALRM/setitimer (Windows) a
        # hung scenario is only bounded by the operator; crash
        # isolation and retry are unaffected.
        return execute_scenario(scenario, checkpoint_dir=checkpoint_dir)
    signal.signal(signal.SIGALRM, _alarm_handler)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return execute_scenario(scenario, checkpoint_dir=checkpoint_dir)
    except _ScenarioTimeout:
        return ScenarioResult(
            scenario_id=scenario.scenario_id, seed=scenario.seed,
            generator=scenario.generator, checker=scenario.checker,
            params=dict(scenario.params), verdict="timeout", ok=False,
            detail=f"exceeded the per-task timeout of {timeout:g}s")
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)


def _sigterm_handler(signum, frame):
    """SIGTERM -> KeyboardInterrupt, so polite termination unwinds
    through the same retryable worker-loss path as Ctrl-C."""
    raise KeyboardInterrupt


def _worker_main(shard: int, scenarios: list, timeout: Optional[float],
                 out_queue, epoch: float,
                 checkpoint_dir: Optional[str] = None,
                 blackbox_dir: Optional[str] = None,
                 profile: bool = False) -> None:
    """One shard: run scenarios serially, stream records, then a
    sentinel.  Runs in a child process.

    ``KeyboardInterrupt``/``SystemExit`` (including SIGTERM, remapped
    above) are *worker losses*, not verdicts: the shard reports which
    scenario it was interrupted on and exits; the parent records the
    loss and retries the unreported scenarios in fresh processes.

    With ``blackbox_dir`` set the shard streams a flight-recorder black
    box to ``<dir>/shard<N>.jsonl`` — flushed per event, so everything
    up to (and excluding) a torn final line survives even ``SIGKILL``.
    With ``profile`` set, every system a scenario builds is born
    instrumented; the merged per-scenario profile streams back as a
    ``("profile", ...)`` queue message ahead of the result record.
    """
    signal.signal(signal.SIGTERM, _sigterm_handler)
    flight: Optional[FlightRecorder] = None
    if blackbox_dir:
        flight = FlightRecorder(clock=lambda: time.time() - epoch)
        flight.enable()
        flight.arm_sink(Path(blackbox_dir) / f"shard{shard}.jsonl")
    current: Optional[str] = None
    try:
        for data in scenarios:
            scenario = Scenario.from_dict(data)
            current = scenario.scenario_id
            if flight is not None:
                flight.record("scenario_start", actor=f"shard{shard}",
                              scenario_id=current)
            if profile:
                clear_live_systems()
                set_default_enabled(True)
            started = time.time()
            try:
                result = _run_with_timeout(scenario, timeout,
                                           checkpoint_dir=checkpoint_dir)
            finally:
                if profile:
                    set_default_enabled(False)
            result.duration = time.time() - started
            result.start = started - epoch
            result.shard = shard
            if profile:
                captured = [build_profile(obs) for obs in live_systems()]
                clear_live_systems()
                merged = merge_profiles(captured, label=current)
                merged.meta["scenario_id"] = current
                merged.meta["verdict"] = result.verdict
                out_queue.put(("profile", {"scenario_id": current,
                                           "profile": merged.to_dict()}))
            if flight is not None:
                flight.record("scenario_end", actor=f"shard{shard}",
                              scenario_id=current, verdict=result.verdict)
            out_queue.put(("result", result.to_record()))
        out_queue.put(("done", shard))
    except (KeyboardInterrupt, SystemExit):
        if flight is not None:
            flight.record("worker_lost", actor=f"shard{shard}",
                          scenario_id=current or "")
        out_queue.put(("lost", {"shard": shard, "scenario_id": current,
                                "at": time.time() - epoch}))
    finally:
        if flight is not None:
            flight.close_sink()


def profile_filename(scenario_id: str) -> str:
    """Manifest-relative path of one scenario's profile artifact."""
    return "profiles/" + scenario_id.replace("/", "__") + ".profile.json"


class _WallClock:
    """A settable ``engine``-shaped clock for replaying wall times into
    the observability layer (``Observability`` reads ``engine.now``)."""

    def __init__(self) -> None:
        self.now = 0.0


@dataclass
class CampaignRun:
    """Everything one campaign run produced."""

    spec: CampaignSpec
    seed_root: Union[int, str]
    workers: int
    task_timeout: Optional[float]
    retries: int
    results: list = field(default_factory=list)
    shard_map: dict = field(default_factory=dict)
    duration: float = 0.0
    obs: Optional[Observability] = None
    #: One entry per interrupted/terminated worker (shard, scenario it
    #: was on, seconds since campaign start) — losses are retried, but
    #: the manifest keeps the evidence.
    worker_losses: list = field(default_factory=list)
    #: {scenario_id: profile dict} when the run profiled (the store
    #: writes these under ``<run>/profiles/`` for the manifest to
    #: reference) — never part of the result records or their digest.
    profiles: dict = field(default_factory=dict)

    @property
    def counts(self) -> dict:
        out: dict = {"pass": 0, "fail": 0, "error": 0, "timeout": 0,
                     "crash": 0}
        for result in self.results:
            out[result.verdict] = out.get(result.verdict, 0) + 1
        return out

    @property
    def failures(self) -> list:
        return [r for r in self.results if r.verdict in FAILURE_VERDICTS]

    def manifest(self) -> dict:
        """The run manifest: everything `replay` and `diff` need."""
        return {
            "campaign": self.spec.name,
            "spec": self.spec.to_dict(),
            "spec_hash": self.spec.spec_hash(),
            "seed_root": self.seed_root,
            "workers": self.workers,
            "task_timeout": self.task_timeout,
            "retries": self.retries,
            "scenario_count": len(self.results),
            "counts": self.counts,
            "duration": self.duration,
            "worker_losses": list(self.worker_losses),
            "shard_map": dict(sorted(self.shard_map.items())),
            "scenarios": {
                r.scenario_id: {"verdict": r.verdict, "ok": r.ok,
                                "steps": r.steps, "cycles": r.cycles,
                                "duration": r.duration}
                for r in self.results},
            **({"profiles": {scenario_id: profile_filename(scenario_id)
                             for scenario_id in sorted(self.profiles)}}
               if self.profiles else {}),
        }

    def render_summary(self) -> str:
        counts = self.counts
        total = len(self.results)
        parts = [f"{counts[v]} {v}" for v in
                 ("pass", "fail", "error", "timeout", "crash")
                 if counts.get(v)]
        lines = [f"campaign {self.spec.name!r}: {total} scenario(s) on "
                 f"{self.workers} worker(s) in {self.duration:.2f}s — "
                 + ", ".join(parts or ["nothing ran"])]
        for result in self.failures[:20]:
            lines.append(f"  {result.verdict.upper():<8s} "
                         f"{result.scenario_id}  {result.detail}")
        if len(self.failures) > 20:
            lines.append(f"  ... and {len(self.failures) - 20} more")
        return "\n".join(lines)


def replay_scenario(manifest: Mapping[str, Any],
                    scenario_id: str) -> ScenarioResult:
    """Deterministically re-execute one scenario from a run manifest.

    Rebuilds the campaign spec embedded in the manifest, re-expands it
    under the recorded seed root (ids and seeds are placement-free, so
    the scenario is byte-identical to the original), and runs it
    in-process — the debugging path for a failure found at scale.
    """
    spec = CampaignSpec.from_dict(manifest["spec"])
    for scenario in spec.expand(manifest["seed_root"]):
        if scenario.scenario_id == scenario_id:
            started = time.time()
            result = execute_scenario(scenario)
            result.duration = time.time() - started
            return result
    raise ReproError(
        f"scenario {scenario_id!r} is not in campaign "
        f"{manifest.get('campaign')!r}")


class CampaignRunner:
    """Expand a spec and grind it through a sharded worker pool."""

    def __init__(self, spec: CampaignSpec,
                 seed_root: Union[int, str] = 0,
                 workers: int = 1,
                 task_timeout: Optional[float] = None,
                 retries: int = 1,
                 backoff: float = 0.05,
                 obs: Optional[Observability] = None,
                 journal: Optional[Any] = None,
                 checkpoint_dir: Optional[str] = None,
                 blackbox_dir: Optional[str] = None,
                 profile: bool = False) -> None:
        if workers < 1:
            raise ReproError("need at least one worker")
        if retries < 0:
            raise ReproError("retries must be non-negative")
        spec.validate()
        self.spec = spec
        self.seed_root = seed_root
        self.workers = workers
        self.task_timeout = task_timeout
        self.retries = retries
        self.backoff = backoff
        #: Optional :class:`~repro.campaign.journal.RunJournal`; when
        #: set, every completed record is journaled (fsync'd) by the
        #: parent before the run proceeds.
        self.journal = journal
        #: Directory for checkpoint-aware checkers' mid-scenario
        #: snapshots (usually ``<run>/checkpoints``).
        self.checkpoint_dir = checkpoint_dir
        #: Directory for worker flight-recorder black boxes (usually
        #: ``<run>/blackbox``); None disables the recorders.
        self.blackbox_dir = blackbox_dir
        #: When True, workers instrument every system a scenario builds
        #: and stream back one merged profile per scenario.
        self.profile = profile
        self._profiles: dict = {}
        self.obs = obs if obs is not None else Observability(
            label=f"campaign:{spec.name}", enabled=False)
        if blackbox_dir:
            # The parent keeps its own black box for crash forensics:
            # worker losses and crashes are trip events that dump it.
            self.obs.flight.enable()
            self.obs.flight.autodump_to(
                Path(blackbox_dir) / "campaign.blackbox.json")
        metrics = self.obs.metrics
        self._m_scenarios = metrics.counter(
            "campaign.scenarios", "scenarios executed")
        self._m_verdicts = {
            verdict: metrics.counter(f"campaign.{verdict}",
                                     f"scenarios with verdict {verdict}")
            for verdict in ("pass", "fail", "error", "timeout", "crash")}
        self._m_retries = metrics.counter(
            "campaign.retries", "crash-recovery re-executions")
        self._m_losses = metrics.counter(
            "campaign.worker_losses",
            "workers lost to interrupt/SIGTERM")
        self._worker_losses: list = []
        self._m_journaled = metrics.counter(
            "checkpoint.journal_records",
            "scenario records made durable in the run journal")
        self._m_resume_skipped = metrics.counter(
            "checkpoint.resume_skipped",
            "scenarios skipped on resume (already journaled complete)")
        self._m_duration = metrics.histogram(
            "campaign.scenario_seconds", "wall seconds per scenario",
            bounds=(0.001, 0.005, 0.02, 0.05, 0.1, 0.5, 1, 5, 30))

    # -- public entry --------------------------------------------------------

    def run(self, completed: Optional[Mapping[str, Any]] = None
            ) -> CampaignRun:
        """Run the campaign; ``completed`` (the resume path) maps
        scenario ids to already-journaled records to skip."""
        scenarios = self.spec.expand(self.seed_root)
        for scenario in scenarios:   # fail fast on unknown names
            lookup("generator", scenario.generator)
            lookup("checker", scenario.checker)
        records: dict = {}
        if completed:
            known = {s.scenario_id for s in scenarios}
            for scenario_id, record in completed.items():
                if scenario_id not in known:
                    raise ReproError(
                        f"journaled scenario {scenario_id!r} is not in "
                        "this campaign — spec mismatch on resume")
                records[scenario_id] = dict(record)
                self._m_resume_skipped.inc()
        pending = [s for s in scenarios if s.scenario_id not in records]
        shard_map = {scenario.scenario_id: index % self.workers
                     for index, scenario in enumerate(pending)}
        epoch = time.time()
        self._worker_losses: list = []
        self._profiles = {}
        records.update(self._run_sharded(pending, shard_map, epoch))
        missing = [scenario for scenario in pending
                   if scenario.scenario_id not in records]
        for scenario in missing:
            record = self._retry_scenario(
                scenario, shard_map[scenario.scenario_id], epoch)
            self._journal_record(record)
            records[scenario.scenario_id] = record
        for scenario_id, record in records.items():
            shard_map.setdefault(scenario_id, record.get("shard", 0))
        results = [ScenarioResult.from_record(records[s.scenario_id])
                   for s in sorted(scenarios,
                                   key=lambda s: s.scenario_id)]
        run = CampaignRun(
            spec=self.spec, seed_root=self.seed_root,
            workers=self.workers, task_timeout=self.task_timeout,
            retries=self.retries, results=results, shard_map=shard_map,
            duration=time.time() - epoch, obs=self.obs,
            worker_losses=list(self._worker_losses),
            profiles=dict(self._profiles))
        self._observe(run)
        return run

    # -- sharded execution ---------------------------------------------------

    def _run_sharded(self, scenarios: list, shard_map: dict,
                     epoch: float) -> dict:
        """Run the shards; returns {scenario_id: record} for every
        scenario whose worker survived long enough to report it."""
        shards: dict = {s: [] for s in range(self.workers)}
        for scenario in scenarios:
            shards[shard_map[scenario.scenario_id]].append(
                scenario.to_dict())
        ctx = multiprocessing.get_context()
        out_queue = ctx.Queue()
        processes = []
        for shard, work in shards.items():
            process = ctx.Process(
                target=_worker_main,
                args=(shard, work, self.task_timeout, out_queue, epoch,
                      self.checkpoint_dir, self.blackbox_dir,
                      self.profile),
                daemon=True)
            process.start()
            processes.append(process)

        records: dict = {}
        open_shards = set(shards)
        while open_shards:
            try:
                kind, payload = out_queue.get(timeout=0.2)
            except queue_module.Empty:
                alive = {shard for shard, process in enumerate(processes)
                         if process.is_alive()}
                dead = open_shards - alive
                if dead:
                    # Crashed worker(s): they died without a sentinel.
                    # Give the queue one final drain window, then hand
                    # their unreported scenarios to the retry path.
                    time.sleep(0.05)
                    while True:
                        try:
                            kind, payload = out_queue.get_nowait()
                        except queue_module.Empty:
                            break
                        if kind == "done":
                            open_shards.discard(payload)
                        elif kind == "lost":
                            self._note_loss(payload)
                            open_shards.discard(payload["shard"])
                        elif kind == "profile":
                            self._profiles[payload["scenario_id"]] = \
                                payload["profile"]
                        else:
                            self._journal_record(payload)
                            records[payload["scenario_id"]] = payload
                    for shard in dead:
                        self._note_crash(shard, epoch)
                    open_shards -= dead
                continue
            if kind == "done":
                open_shards.discard(payload)
            elif kind == "lost":
                # The worker was interrupted/terminated mid-scenario:
                # record the loss and close the shard; its unreported
                # scenarios take the crash-retry path.
                self._note_loss(payload)
                open_shards.discard(payload["shard"])
            elif kind == "profile":
                self._profiles[payload["scenario_id"]] = payload["profile"]
            else:
                self._journal_record(payload)
                records[payload["scenario_id"]] = payload
        for process in processes:
            process.join(timeout=1.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
        return records

    def _retry_scenario(self, scenario: Scenario, shard: int,
                        epoch: float) -> dict:
        """Re-run a scenario whose worker died, in a fresh process per
        attempt, with exponential backoff.  Returns its record (verdict
        ``"crash"`` after the retry budget is exhausted)."""
        ctx = multiprocessing.get_context()
        for attempt in range(self.retries):
            time.sleep(self.backoff * (2 ** attempt))
            self._m_retries.inc()
            retry_queue = ctx.Queue()
            # No black box for the retry: re-arming shard<N>.jsonl
            # would truncate the crash evidence the dead worker left.
            process = ctx.Process(
                target=_worker_main,
                args=(shard, [scenario.to_dict()], self.task_timeout,
                      retry_queue, epoch, self.checkpoint_dir, None,
                      self.profile),
                daemon=True)
            process.start()
            record = None
            deadline = (time.time()
                        + max(self.task_timeout or 0, 1.0) * 2 + 5.0)
            while record is None and time.time() < deadline:
                try:
                    kind, payload = retry_queue.get(
                        timeout=max(0.01, deadline - time.time()))
                except queue_module.Empty:
                    break
                if kind == "result":
                    record = payload
                elif kind == "profile":
                    self._profiles[payload["scenario_id"]] = \
                        payload["profile"]
                elif kind == "lost":
                    self._note_loss(payload)
                    break
                elif kind == "done":
                    break
            process.join(timeout=1.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
            if record is not None:
                record["attempts"] = attempt + 2
                return record
        return ScenarioResult(
            scenario_id=scenario.scenario_id, seed=scenario.seed,
            generator=scenario.generator, checker=scenario.checker,
            params=dict(scenario.params), verdict="crash", ok=False,
            detail=f"worker died or was interrupted; {self.retries} "
                   "retry attempt(s) also failed",
            start=time.time() - epoch, shard=shard,
            attempts=self.retries + 1).to_record()

    def _note_loss(self, payload: Mapping[str, Any]) -> None:
        self._worker_losses.append(dict(payload))
        self._m_losses.inc()
        if self.obs.flight.enabled:
            self.obs.flight.mark(
                "worker_lost", actor=f"shard{payload.get('shard')}",
                scenario_id=payload.get("scenario_id") or "")
        self._export_blackbox(payload.get("shard"))

    def _note_crash(self, shard: int, epoch: float) -> None:
        """A worker died without a sentinel: keep the evidence.

        The dead worker's streamed black box (everything flushed before
        the kill) is converted into a Perfetto trace next to the JSONL,
        and the parent's own flight recorder trips a ``worker_crash``
        auto-dump.
        """
        if self.obs.flight.enabled:
            self.obs.flight.mark("worker_crash", actor=f"shard{shard}",
                                 at=time.time() - epoch)
        self._export_blackbox(shard)

    def _export_blackbox(self, shard: Optional[int]) -> None:
        if self.blackbox_dir is None or shard is None:
            return
        source = Path(self.blackbox_dir) / f"shard{shard}.jsonl"
        if source.exists():
            blackbox_to_perfetto(
                source,
                Path(self.blackbox_dir) / f"shard{shard}.blackbox.json")

    def _journal_record(self, record: Mapping[str, Any]) -> None:
        """Make one record durable before the run proceeds (WAL)."""
        if self.journal is None:
            return
        self.journal.append_result(record)
        self._m_journaled.inc()

    # -- observability -------------------------------------------------------

    def _observe(self, run: CampaignRun) -> None:
        """Merge per-worker timings into the runner's metrics + spans.

        Workers are separate processes, so the parent replays their
        reported start/duration into one shared timeline: each shard
        becomes a span actor, each scenario one span — which is what
        ``--trace-out`` exports as a single merged Perfetto trace.
        """
        if not self.obs.enabled:
            return
        clock = _WallClock()
        # Observability.now (the tracer's clock) reads engine.now
        # dynamically, so installing the wall clock as the engine lets
        # the parent stamp spans at the workers' reported times.
        self.obs.engine = clock
        for result in sorted(run.results,
                             key=lambda r: (r.shard, r.start)):
            self._m_scenarios.inc()
            self._m_verdicts[result.verdict].inc()
            self._m_duration.observe(result.duration)
            clock.now = result.start * 1e6   # seconds -> us (trace ts)
            span = self.obs.begin(f"shard{result.shard}",
                                  result.scenario_id,
                                  verdict=result.verdict,
                                  checker=result.checker,
                                  steps=result.steps,
                                  cycles=result.cycles)
            clock.now = (result.start + result.duration) * 1e6
            self.obs.end(span)
        clock.now = run.duration * 1e6
