"""The write-ahead scenario journal (crash-consistent campaign runs).

A run directory with a journal survives losing the whole runner —
``kill -9`` of the parent, power loss, a cluster preemption — without
losing any *reported* scenario.  The journal is one append-only JSONL
file:

* line 1 is the ``run_start`` header: the full campaign spec, its
  hash, the seed root and the runner knobs — everything ``resume``
  needs to rebuild the exact same scenario expansion;
* every following line is one completed scenario record, appended (and
  fsync'd) by the **parent** runner the moment the record arrives from
  a worker.  Workers never touch the journal, so there is exactly one
  writer and no locking.

Because each line is written with ``flush`` + ``fsync`` before the
runner proceeds, a crash can lose at most the line being written — and
a torn trailing line is detected and dropped on load.  ``campaign
resume <run>`` then skips every journaled-complete scenario and
re-runs only the rest; the result digest is identical to an
uninterrupted run because verdicts depend only on the spec and the
seed root (see :mod:`repro.campaign.runner`).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from repro.errors import ConfigurationError

JOURNAL_NAME = "journal.jsonl"

#: Header fields `resume` needs to reconstruct the run.
HEADER_KEYS = ("spec", "spec_hash", "seed_root", "workers",
               "task_timeout", "retries")


def _canonical_line(data: Mapping[str, Any]) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":")) + "\n"


class RunJournal:
    """Single-writer, append-only journal for one campaign run."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = None

    # -- writing -------------------------------------------------------------

    @classmethod
    def create(cls, directory: Union[str, Path],
               header: Mapping[str, Any]) -> "RunJournal":
        """Start a fresh journal, truncating any previous one.

        The header line is durable (fsync'd) before this returns, so a
        crash at any later point leaves a resumable run directory.
        """
        for key in HEADER_KEYS:
            if key not in header:
                raise ConfigurationError(
                    f"journal header is missing {key!r}")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        journal = cls(directory / JOURNAL_NAME)
        journal._handle = open(journal.path, "w", encoding="utf-8")
        journal._append({"type": "run_start", **dict(header)})
        return journal

    @classmethod
    def append_to(cls, directory: Union[str, Path]) -> "RunJournal":
        """Re-open an existing journal for appending (the resume path)."""
        journal = cls(Path(directory) / JOURNAL_NAME)
        if not journal.path.exists():
            raise ConfigurationError(f"no journal at {journal.path}")
        journal._handle = open(journal.path, "a", encoding="utf-8")
        return journal

    def append_result(self, record: Mapping[str, Any]) -> None:
        """Journal one completed scenario record, durably."""
        self._append({"type": "result", "record": dict(record)})

    def _append(self, data: Mapping[str, Any]) -> None:
        if self._handle is None:
            raise ConfigurationError("journal is not open for writing")
        self._handle.write(_canonical_line(data))
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading -------------------------------------------------------------

    @staticmethod
    def load(directory: Union[str, Path]) -> tuple[dict, dict]:
        """Read a journal back as ``(header, {scenario_id: record})``.

        A torn trailing line (the write the crash interrupted) is
        dropped; a torn line *before* valid lines means real corruption
        and raises.  Duplicate records for one scenario keep the last —
        a resume that crashed may legitimately re-journal a scenario.
        """
        path = Path(directory)
        if path.is_dir():
            path = path / JOURNAL_NAME
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise ConfigurationError(f"no journal at {path}") from None
        header: Optional[dict] = None
        records: dict = {}
        lines = text.splitlines()
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                if number == len(lines):
                    break          # torn final line: the crash point
                raise ConfigurationError(
                    f"{path}:{number} is corrupt mid-journal: "
                    f"{exc}") from exc
            kind = entry.get("type")
            if kind == "run_start":
                if header is not None:
                    raise ConfigurationError(
                        f"{path}:{number} has a second run_start header")
                header = entry
            elif kind == "result":
                record = entry.get("record", {})
                scenario_id = record.get("scenario_id")
                if not scenario_id:
                    raise ConfigurationError(
                        f"{path}:{number} result has no scenario_id")
                records[scenario_id] = record
            else:
                raise ConfigurationError(
                    f"{path}:{number} has unknown entry type {kind!r}")
        if header is None:
            raise ConfigurationError(
                f"{path} has no run_start header; not a campaign journal")
        return header, records


def journal_header(spec_dict: Mapping[str, Any], spec_hash: str,
                   seed_root: Union[int, str], workers: int,
                   task_timeout: Optional[float],
                   retries: int) -> dict:
    """Build the ``run_start`` header for :meth:`RunJournal.create`."""
    return {
        "spec": dict(spec_dict),
        "spec_hash": spec_hash,
        "seed_root": seed_root,
        "workers": workers,
        "task_timeout": task_timeout,
        "retries": retries,
    }
