"""Result persistence: JSONL records plus a JSON run manifest.

A run directory holds exactly two files:

* ``results.jsonl`` — one record per scenario, sorted by scenario id.
  Records are reproducible modulo the runner's
  :data:`~repro.campaign.runner.TIMING_FIELDS`;
* ``manifest.json`` — the run manifest: the full campaign spec (so
  ``replay`` needs nothing else), its hash, the seed root, the shard
  map, and the per-scenario verdict/steps/cycles/duration summary that
  ``diff`` consumes.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, Union

from repro.campaign.runner import (
    CampaignRun,
    ScenarioResult,
    profile_filename,
    strip_timing,
)
from repro.errors import ConfigurationError

RESULTS_NAME = "results.jsonl"
MANIFEST_NAME = "manifest.json"


def results_to_jsonl(results: Iterable[ScenarioResult]) -> str:
    lines = [json.dumps(result.to_record(), sort_keys=True)
             for result in sorted(results, key=lambda r: r.scenario_id)]
    return "\n".join(lines) + ("\n" if lines else "")


def write_run(out_dir: Union[str, Path], run: CampaignRun
              ) -> tuple[Path, Path]:
    """Persist a run; returns (results_path, manifest_path)."""
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    results_path = directory / RESULTS_NAME
    manifest_path = directory / MANIFEST_NAME
    results_path.write_text(results_to_jsonl(run.results))
    manifest_path.write_text(
        json.dumps(run.manifest(), indent=2, sort_keys=True) + "\n")
    # Profiled runs keep one canonical-JSON profile per scenario at the
    # manifest-relative paths the manifest's "profiles" map names.
    for scenario_id, profile in run.profiles.items():
        target = directory / profile_filename(scenario_id)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(profile, sort_keys=True,
                                     separators=(",", ":")) + "\n")
    return results_path, manifest_path


def load_manifest(path: Union[str, Path]) -> dict:
    """Load a manifest from its file or its run directory."""
    target = Path(path)
    if target.is_dir():
        target = target / MANIFEST_NAME
    try:
        data = json.loads(target.read_text())
    except FileNotFoundError:
        raise ConfigurationError(f"no manifest at {target}") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"{target} is not a JSON manifest: {exc}") from exc
    for key in ("campaign", "spec", "spec_hash", "seed_root",
                "scenarios"):
        if key not in data:
            raise ConfigurationError(
                f"{target} is missing manifest key {key!r}")
    return data


def load_results(path: Union[str, Path]) -> list:
    """Load result records from a JSONL file or a run directory."""
    target = Path(path)
    if target.is_dir():
        target = target / RESULTS_NAME
    try:
        text = target.read_text()
    except FileNotFoundError:
        raise ConfigurationError(f"no results at {target}") from None
    results = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            results.append(ScenarioResult.from_record(json.loads(line)))
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"{target}:{line_number} is not a result record: "
                f"{exc}") from exc
    return results


def results_digest(results: Iterable[ScenarioResult]) -> str:
    """sha256 over the timing-stripped records (reproducibility check).

    Two runs of the same campaign under the same seed root must produce
    the same digest regardless of worker count or machine speed.
    """
    canonical = json.dumps(
        [strip_timing(result.to_record())
         for result in sorted(results, key=lambda r: r.scenario_id)],
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
