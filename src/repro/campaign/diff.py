"""Manifest diffing: regression gating between two campaign runs.

:func:`diff_manifests` compares the per-scenario summaries of two run
manifests and classifies every change:

* **new failures** — scenarios that passed in the baseline and no
  longer do (including new errors/timeouts/crashes);
* **step regressions** — passing scenarios whose algorithm step count
  grew (the DDU/PDDA iteration bounds are monotone claims: more steps
  for the same seeded scenario means the algorithm got worse);
* **cycle drift** — passing scenarios whose modelled cycle cost moved
  by more than ``cycle_drift_pct`` in either direction (drift both ways
  is flagged: a silent 30% "improvement" is usually a broken model);
* fixed / added / removed scenarios, reported but not gating.

``has_regressions`` is the CI gate: new failures, step growth, or
out-of-band cycle drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class StepRegression:
    scenario_id: str
    baseline_steps: int
    steps: int


@dataclass(frozen=True)
class CycleDrift:
    scenario_id: str
    baseline_cycles: float
    cycles: float
    drift_pct: float


@dataclass(frozen=True)
class ManifestDiff:
    """The classified difference between two run manifests."""

    baseline_campaign: str
    campaign: str
    same_spec: bool
    cycle_drift_pct: float
    new_failures: tuple
    fixed: tuple
    added: tuple
    removed: tuple
    step_regressions: tuple
    cycle_drifts: tuple

    @property
    def has_regressions(self) -> bool:
        return bool(self.new_failures or self.step_regressions
                    or self.cycle_drifts)

    def render(self) -> str:
        lines = [f"baseline {self.baseline_campaign!r} vs "
                 f"candidate {self.campaign!r}"
                 + ("" if self.same_spec
                    else "  [WARNING: different spec hashes]")]
        if not self.has_regressions:
            lines.append("no regressions")
        for scenario_id in self.new_failures:
            lines.append(f"  NEW FAILURE   {scenario_id}")
        for item in self.step_regressions:
            lines.append(f"  STEP GROWTH   {item.scenario_id}: "
                         f"{item.baseline_steps} -> {item.steps}")
        for item in self.cycle_drifts:
            lines.append(f"  CYCLE DRIFT   {item.scenario_id}: "
                         f"{item.baseline_cycles:g} -> {item.cycles:g} "
                         f"({item.drift_pct:+.1f}%, band "
                         f"±{self.cycle_drift_pct:g}%)")
        for scenario_id in self.fixed:
            lines.append(f"  fixed         {scenario_id}")
        if self.added:
            lines.append(f"  added: {len(self.added)} scenario(s)")
        if self.removed:
            lines.append(f"  removed: {len(self.removed)} scenario(s)")
        return "\n".join(lines)


def diff_manifests(baseline: Mapping, candidate: Mapping,
                   cycle_drift_pct: float = 10.0) -> ManifestDiff:
    """Classify per-scenario changes between two run manifests."""
    if cycle_drift_pct <= 0:
        raise ConfigurationError("cycle_drift_pct must be positive")
    old = baseline.get("scenarios", {})
    new = candidate.get("scenarios", {})
    shared = sorted(set(old) & set(new))
    new_failures = []
    fixed = []
    step_regressions = []
    cycle_drifts = []
    for scenario_id in shared:
        before, after = old[scenario_id], new[scenario_id]
        if before["ok"] and not after["ok"]:
            new_failures.append(scenario_id)
            continue
        if not before["ok"] and after["ok"]:
            fixed.append(scenario_id)
            continue
        if not (before["ok"] and after["ok"]):
            continue
        if after.get("steps", 0) > before.get("steps", 0):
            step_regressions.append(StepRegression(
                scenario_id=scenario_id,
                baseline_steps=before.get("steps", 0),
                steps=after.get("steps", 0)))
        base_cycles = before.get("cycles", 0.0)
        if base_cycles > 0:
            drift = (after.get("cycles", 0.0) - base_cycles) \
                / base_cycles * 100.0
            if abs(drift) > cycle_drift_pct:
                cycle_drifts.append(CycleDrift(
                    scenario_id=scenario_id,
                    baseline_cycles=base_cycles,
                    cycles=after.get("cycles", 0.0),
                    drift_pct=drift))
    return ManifestDiff(
        baseline_campaign=baseline.get("campaign", "?"),
        campaign=candidate.get("campaign", "?"),
        same_spec=(baseline.get("spec_hash") == candidate.get("spec_hash")),
        cycle_drift_pct=cycle_drift_pct,
        new_failures=tuple(new_failures),
        fixed=tuple(fixed),
        added=tuple(sorted(set(new) - set(old))),
        removed=tuple(sorted(set(old) - set(new))),
        step_regressions=tuple(step_regressions),
        cycle_drifts=tuple(cycle_drifts))
