"""Plain-text table rendering (leaf module, no dependencies)."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence


def format_value(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or value.is_integer():
            return f"{value:,.0f}"
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: Optional[str] = None) -> str:
    """Render an aligned text table."""
    body = [[format_value(cell) for cell in row] for row in rows]
    table = [list(headers)] + body
    widths = [max(len(row[col]) for row in table)
              for col in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(
        str(cell).ljust(widths[col]) for col, cell in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in body:
        lines.append("  ".join(
            cell.rjust(widths[col]) if _numericish(cell) else
            cell.ljust(widths[col]) for col, cell in enumerate(row)))
    return "\n".join(lines)


def _numericish(cell: str) -> bool:
    stripped = cell.replace(",", "").replace(".", "").replace("-", "")
    stripped = stripped.replace("%", "").replace("X", "").replace("x", "")
    return stripped.isdigit() and cell not in ("-",)


def speedup_percent(slow: float, fast: float) -> float:
    """The paper's Hennessy-Patterson speed-up formula, in percent."""
    return 100.0 * (slow - fast) / fast


def speedup_factor(slow: float, fast: float) -> float:
    return slow / fast if fast else float("nan")
