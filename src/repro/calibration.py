"""Cycle-cost calibration constants.

The paper's experiments report *bus-clock cycle* counts measured on a
Seamless CVE co-simulation of four MPC755 instruction-set simulators plus
Verilog hardware.  That testbed is unavailable, so the simulator in this
package charges explicit cycle costs for every primitive (memory access,
kernel entry, algorithm iteration, ...).  Each constant below is either

* a *structural* constant taken directly from the paper's system
  description (e.g. bus timing: 3 cycles to access the first word of a
  transaction, Section 5.5), or
* a *calibrated* constant chosen so the regenerated tables reproduce the
  paper's published numbers; each cites the table it was fitted to.

Keeping all of them in one module makes the calibration auditable: no
other module hard-codes a paper number.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Bus / memory system (structural: Sections 5.1 and 5.5)
# --------------------------------------------------------------------------

#: Master bus clock period in nanoseconds (100 MHz, Section 5.1).
BUS_CLOCK_NS = 10

#: Cycles (including arbitration) to access the first word of a memory
#: transaction in the 16 MB global memory (Section 5.5).
MEM_FIRST_WORD_CYCLES = 3

#: Cycles for each successive word of a burst transaction (Section 5.5).
MEM_BURST_WORD_CYCLES = 1

#: Default burst length in words for cache-line fills (MPC755 has 32-byte
#: lines; 8 words of 32 bits).
DEFAULT_BURST_WORDS = 8

# --------------------------------------------------------------------------
# Software deadlock detection: PDDA in software (calibrated to Table 5)
# --------------------------------------------------------------------------
# The paper measures an average PDDA-in-software run time of 1830 bus
# cycles for a 5x5 system.  Software PDDA scans the m x n matrix every
# reduction iteration; we charge a per-cell scan cost plus per-invocation
# kernel overhead.  With m = n = 5 and the Table 4 scenario averaging
# about 4 reduction iterations per invocation this yields ~1800 cycles.

#: Cycles charged per matrix cell examined by one software reduction pass.
SW_PDDA_CELL_CYCLES = 28

#: Fixed per-invocation software overhead (kernel entry, matrix set-up).
SW_PDDA_OVERHEAD_CYCLES = 230

# --------------------------------------------------------------------------
# Hardware deadlock detection: DDU (structural: Section 4.2)
# --------------------------------------------------------------------------
# The DDU evaluates one terminal-reduction iteration per hardware clock;
# command write / status read are single bus transactions.  The paper
# reports an average *algorithm* run time of 1.3 bus cycles (Table 5):
# most invocations reduce the nearly-empty matrix in a single iteration.

#: Bus cycles per DDU reduction iteration (one parallel step per cycle).
DDU_CYCLES_PER_ITERATION = 1

#: Fixed DDU pipeline overhead in bus cycles (latch command, raise done).
DDU_FIXED_CYCLES = 0

# --------------------------------------------------------------------------
# Software deadlock avoidance: DAA in software (calibrated to Tables 7, 9)
# --------------------------------------------------------------------------
# The paper measures average DAA-in-software run times of 2188 (G-dl app)
# and 2102 (R-dl app) bus cycles.  Software DAA = software PDDA plus
# request bookkeeping, priority comparison and grant search.

#: Fixed per-invocation software avoidance overhead beyond detection.
SW_DAA_OVERHEAD_CYCLES = 420

#: Cycles charged per waiter examined during a software grant search.
SW_DAA_WAITER_SCAN_CYCLES = 40

# --------------------------------------------------------------------------
# Hardware deadlock avoidance: DAU (structural: Section 4.3 / Table 2)
# --------------------------------------------------------------------------
# Table 2: worst case 6*5 + 8 = 38 steps for a 5x5 DAU: up to 6 DDU
# iterations per tentative grant times up to 5 candidate grants, plus 8
# FSM steps.  The paper reports ~7 bus cycles average (Tables 7 and 9).

#: FSM steps (bus cycles) for command decode, registers and status write.
DAU_FSM_CYCLES = 4

# --------------------------------------------------------------------------
# RTOS service costs (calibrated; see Tables 5, 7, 9 application runs)
# --------------------------------------------------------------------------

#: Kernel entry/exit (trap, save/restore context) for a service call.
RTOS_SERVICE_OVERHEAD_CYCLES = 60

#: Cycles to enqueue/dequeue a task on a ready or wait queue.
RTOS_QUEUE_OP_CYCLES = 24

#: Cycles for a full context switch on one PE.
RTOS_CONTEXT_SWITCH_CYCLES = 180

#: Cycles for the resource-manager software wrapper around a deadlock
#: algorithm invocation (argument marshalling, result decode).
RTOS_RESOURCE_API_CYCLES = 90

# --------------------------------------------------------------------------
# Fault handling / resilience (see repro.faults)
# --------------------------------------------------------------------------
# Structural choices, not paper calibration: the paper treats the units
# as infallible, so these only shape *how fast* the resilient services
# recover, never the fault-free numbers of Tables 4-12.

#: Base backoff after a failed unit/bus interaction; attempt k waits k
#: times this long before retrying.
FAULT_RETRY_BACKOFF_CYCLES = 150

#: Watchdog budget for one unit command round-trip; a unit that has not
#: answered within this window is treated as hung.
FAULT_UNIT_TIMEOUT_CYCLES = 2000

#: Fixed unit-side cost of one scrub (register-file reload + parity
#: sweep), on top of the probe detections it runs.
FAULT_SCRUB_OVERHEAD_CYCLES = 64

#: Waiter-side deadline on a SoCLC grant interrupt; a waiter whose lock
#: cell already names it holder redelivers the lost interrupt at this
#: deadline instead of sleeping forever.
FAULT_LOCK_GRANT_TIMEOUT_CYCLES = 6000

#: Unit cycles for one SoCDMMU allocation-table audit sweep.
SOCDMMU_AUDIT_CYCLES = 18

# --------------------------------------------------------------------------
# Application workloads (Sections 5.3 and 5.4)
# --------------------------------------------------------------------------

#: IDCT processing time of the 64x64 test frame (Section 5.3, ~23600).
IDCT_FRAME_CYCLES = 23600

#: Video-interface stream receive time for one test frame (calibrated so
#: the Table 5 application totals land near 27714 / 40523 cycles).
VI_FRAME_CYCLES = 2400

#: Wireless-interface transmit time for one converted image (calibrated
#: with Tables 7 and 9 application totals).
WI_SEND_CYCLES = 3600

#: DSP processing time per work item in the R-dl application (Table 8).
DSP_WORK_CYCLES = 5200

#: Generic local compute between resource events in the scenario apps.
APP_LOCAL_COMPUTE_CYCLES = 400

# --------------------------------------------------------------------------
# Locks: software priority inheritance vs SoCLC (calibrated to Table 10)
# --------------------------------------------------------------------------
# Table 10: lock latency 570 (software) vs 318 (SoCLC); lock delay 6701 vs
# 3834; overall robot application 112170 vs 78226 cycles.

#: Software uncontended lock acquire: kernel entry + test-and-set loop on
#: shared memory + priority-inheritance bookkeeping.
SW_LOCK_LATENCY_CYCLES = 570

#: SoCLC uncontended lock acquire: one bus read of the lock cache plus
#: hardware IPCP update.
SOCLC_LOCK_LATENCY_CYCLES = 318

#: Software lock release cost (wake waiter, restore priority).
SW_LOCK_RELEASE_CYCLES = 240

#: SoCLC lock release: single bus write; the unit handles the handoff.
SOCLC_LOCK_RELEASE_CYCLES = 60

#: Extra software cost per blocked waiter (queue walk under PI).
SW_LOCK_WAITER_CYCLES = 110

#: Short critical sections guard shared kernel structures (IPC queues).
#: Software: a spin-lock in shared memory plus bookkeeping; SoCLC: one
#: read of a short-lock cell (Section 2.3.1, "short CSes").
SW_SHORT_LOCK_CYCLES = 150
SOCLC_SHORT_LOCK_CYCLES = 8
#: Back-off between spin polls of a busy software spin-lock.
SW_SPIN_POLL_BACKOFF_CYCLES = 20

#: RTOS5 long-lock waiters spin on the shared-memory lock word for this
#: long before giving up and blocking (Atalanta's "spin-lock mechanism
#: for lock-based synchronization of long CSes and short CSes",
#: Section 5.5); the SoCLC parks waiters in the unit instead.
SW_LOCK_SPIN_BUDGET_CYCLES = 420

#: Kernel re-entry after a blocked software lock is handed over
#: (reschedule, restore, re-validate the lock word).
SW_LOCK_WAKE_CYCLES = 200

#: PE wake-up on the SoCLC's grant interrupt.
SOCLC_LOCK_WAKE_CYCLES = 40

#: Robot application task segment lengths (calibrated so overall execution
#: lands near Table 10's 112170 vs 78226 cycles).
ROBOT_SENSE_CYCLES = 2600
ROBOT_COMPUTE_CYCLES = 3400
ROBOT_ACT_CYCLES = 3000
ROBOT_DISPLAY_CYCLES = 2600
ROBOT_RECORD_CYCLES = 2200
MPEG_SLICE_CYCLES = 3000
ROBOT_CS_CYCLES = 2600
ROBOT_PERIODS = 7

# --------------------------------------------------------------------------
# Memory management: glibc-like heap vs SoCDMMU (calibrated to Tables 11-12)
# --------------------------------------------------------------------------
# Table 11/12 totals are internally consistent: per benchmark,
# total = fixed compute + memory-management cycles.  Compute cycles below
# are the paper's totals minus its memory-management cycles.

#: Fixed compute cycles per benchmark (paper total minus paper mm time).
SPLASH_COMPUTE_CYCLES = {
    "LU": 286_795,
    "FFT": 273_990,
    "RADIX": 552_842,
}

#: Software heap: base cost of one malloc() (bin lookup, header write).
SW_MALLOC_BASE_CYCLES = 420

#: Software heap: extra cost per free-list entry walked on allocation.
SW_MALLOC_WALK_CYCLES = 95

#: Software heap: extra cost per KiB allocated (block splitting, header
#: initialization, page-granular work for large requests).
SW_MALLOC_SIZE_CYCLES_PER_KB = 10

#: Software heap: cost of one free() (coalescing, list insert).
SW_FREE_CYCLES = 360

#: SoCDMMU: deterministic cycles per allocation command (G_alloc) seen by
#: the PE: bus write of the command + bus read of the result + unit time.
SOCDMMU_ALLOC_CYCLES = 36

#: SoCDMMU: deterministic cycles per deallocation command (G_dealloc).
SOCDMMU_DEALLOC_CYCLES = 25

#: SoCDMMU: cycles per block for a share/fork table update (refcount
#: bump + one mapping-RAM write; no data movement).
SOCDMMU_SHARE_CYCLES = 12

#: SoCDMMU: cycles to copy one G_block on a CoW write fault (burst DMA
#: of the block plus the table update).  Paying this lazily — only for
#: blocks actually written — is the whole point of sharing.
SOCDMMU_COW_COPY_CYCLES = 420

# --------------------------------------------------------------------------
# Synthesis / area models (fitted to Tables 1 and 2)
# --------------------------------------------------------------------------
# We cannot run Synopsys Design Compiler; the area model in
# repro.deadlock.synthesis reproduces the published points with a
# cell-census model: each matrix cell, weight cell and decide cell has a
# NAND2-equivalent cost, plus per-row/column wiring overhead.  The
# constants live in that module next to the model; the MPSoC reference
# area below is structural (Table 2).

#: Gate count of one MPC755 PE used for the MPSoC area reference.
MPC755_GATES = 1_700_000

#: Gate count of the 16 MB memory used for the MPSoC area reference.
MEM_16MB_GATES = 33_500_000

#: Total MPSoC gates for the .005% DAU area claim (Table 2): 4 PEs + mem.
MPSOC_TOTAL_GATES = 4 * MPC755_GATES + MEM_16MB_GATES  # 40.3M
