"""The System-on-a-Chip Lock Cache (Section 2.3.1).

A custom hardware unit that keeps lock variables out of shared memory:
lock acquisition is a single read of the unit, hand-off is hardware-
arbitrated, and the Immediate Priority Ceiling Protocol is applied in
hardware (the RTOS6 configuration).  The parameterized generator
(PARLAK, [10]) is modelled by :mod:`repro.soclc.generator`.
"""

from repro.soclc.lockcache import SoCLC
from repro.soclc.generator import SoCLCConfig, generate_soclc

__all__ = ["SoCLC", "SoCLCConfig", "generate_soclc"]
