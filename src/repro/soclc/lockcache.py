"""The SoCLC lock manager: hardware locks with IPCP (RTOS6).

Differences from the software path (:class:`repro.rtos.sync.SoftwareLockManager`)
that produce Table 10's speedups:

* *latency*: an uncontended acquire is one bus read of the lock cache
  plus the hardware ceiling update — 318 cycles end to end versus 570
  for the software test-and-set + PI bookkeeping path;
* *delay*: contended hand-off is arbitrated inside the unit and
  signalled by interrupt, so no shared-memory queue walking happens on
  the PEs;
* *protocol*: the Immediate Priority Ceiling Protocol — the holder's
  priority rises to the lock's ceiling at acquisition, so a
  medium-priority task can never preempt a lock holder into causing
  priority inversion (Figure 20's behaviour).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro import calibration
from repro.errors import ConfigurationError, RTOSError
from repro.rtos.kernel import Kernel, TaskContext
from repro.rtos.sync import LockStats
from repro.rtos.task import Task


class _HardwareLock:
    __slots__ = ("lock_id", "kind", "ceiling", "holder", "waiters",
                 "boosted", "acquired_at")

    def __init__(self, lock_id: str, kind: str, ceiling: int) -> None:
        self.lock_id = lock_id
        self.kind = kind              # "short" | "long"
        self.ceiling = ceiling
        self.holder: Optional[Task] = None
        self.waiters: list = []
        self.boosted = False
        self.acquired_at = 0.0        # hold-time measurement anchor


class SoCLC:
    """The lock-cache unit: a fixed census of short and long locks."""

    def __init__(self, kernel: Kernel, num_short_locks: int = 8,
                 num_long_locks: int = 8,
                 priority_inheritance: bool = True,
                 acquire_cycles: int = calibration.SOCLC_LOCK_LATENCY_CYCLES,
                 release_cycles: int = calibration.SOCLC_LOCK_RELEASE_CYCLES,
                 ) -> None:
        if num_short_locks < 0 or num_long_locks < 0:
            raise ConfigurationError("lock counts must be non-negative")
        if num_short_locks + num_long_locks == 0:
            raise ConfigurationError("SoCLC needs at least one lock")
        self.kernel = kernel
        self.num_short_locks = num_short_locks
        self.num_long_locks = num_long_locks
        self.priority_inheritance = priority_inheritance
        self.acquire_cycles = acquire_cycles
        self.release_cycles = release_cycles
        self._locks: dict[str, _HardwareLock] = {}
        self.stats = LockStats()
        self.interrupt_handoffs = 0
        #: Fault injector hook (:mod:`repro.faults`).
        self.faults = None
        #: Waiter-side interrupt watchdog (armed by enable_resilience).
        self.watchdog = None
        self.resilience = None
        self.lost_interrupts = 0
        self.redelivered_interrupts = 0
        metrics = kernel.obs.metrics
        self._m_acquisitions = metrics.counter(
            "lock.acquisitions", "lock grants")
        self._m_contended = metrics.counter(
            "lock.contended", "grants that had to wait")
        self._m_latency = metrics.histogram(
            "lock.acquire_latency", "service cost of one acquire")
        self._m_delay = metrics.histogram(
            "lock.acquire_delay", "blocking time of contended acquires")
        self._m_hold = metrics.histogram(
            "lock.hold_cycles", "cycles from grant to release")

    # -- configuration ------------------------------------------------------------

    def enable_resilience(self, policy=None) -> None:
        """Arm waiter-side watchdogs against lost grant interrupts.

        The unit's lock cell is authoritative: when a waiter's deadline
        fires and the cell already names it holder, the interrupt was
        lost in flight and the watchdog redelivers it; otherwise the
        waiter is still legitimately queued and the watch re-arms.
        """
        from repro.faults.health import ResiliencePolicy
        from repro.rtos.watchdog import Watchdog
        self.resilience = policy if policy is not None else ResiliencePolicy()
        if self.watchdog is None:
            self.watchdog = Watchdog(self.kernel)

    def register_lock(self, lock_id: str, kind: str = "long",
                      ceiling: int = 0) -> None:
        """Bind a named lock to one of the unit's lock cells.

        ``ceiling`` is the IPCP priority ceiling (the priority of the
        highest-priority task that ever takes this lock).
        """
        if kind not in ("short", "long"):
            raise ConfigurationError(f"unknown lock kind {kind!r}")
        if lock_id in self._locks:
            raise ConfigurationError(f"lock {lock_id!r} already registered")
        used = sum(1 for lock in self._locks.values() if lock.kind == kind)
        capacity = (self.num_short_locks if kind == "short"
                    else self.num_long_locks)
        if used >= capacity:
            raise ConfigurationError(
                f"out of {kind} lock cells ({capacity} configured)")
        self._locks[lock_id] = _HardwareLock(lock_id, kind, ceiling)

    def _lock(self, lock_id: str) -> _HardwareLock:
        try:
            return self._locks[lock_id]
        except KeyError:
            raise RTOSError(f"lock {lock_id!r} not registered with the "
                            "SoCLC") from None

    # -- the lock-manager interface ----------------------------------------------------

    def acquire(self, ctx: TaskContext, lock_id: str) -> Generator:
        task = ctx.task
        lock = self._lock(lock_id)
        requested_at = ctx.now
        # One read of the memory-mapped lock cell; the unit answers with
        # grant-or-enqueue in the same transaction.
        yield from ctx.pe.bus_read()
        remainder = max(0, self.acquire_cycles
                        - self.kernel.soc.bus.timing.transaction_cycles(1))
        yield from ctx.pe.execute(remainder)
        if lock.holder is None:
            self._grant(lock, task)
            self.stats.acquisitions += 1
            self.stats.latencies.append(self.acquire_cycles)
            lock.acquired_at = ctx.now
            if self.kernel.obs.enabled:
                self._m_acquisitions.inc()
                self._m_latency.observe(self.acquire_cycles)
            self.kernel.trace.record(ctx.now, task.name, "lock_acquired",
                                     lock=lock_id, unit="SoCLC")
            return
        # Enqueued in the unit; the PE sleeps until the grant interrupt.
        grant = self.kernel.engine.event(name=f"soclc.{lock_id}.{task.name}")
        lock.waiters.append((task, grant))
        lock.waiters.sort(key=lambda entry: entry[0].priority)
        self.kernel.trace.record(ctx.now, task.name, "lock_blocked",
                                 lock=lock_id, holder=lock.holder.name,
                                 unit="SoCLC")
        watch = None
        if self.watchdog is not None:
            watch = self._arm_grant_watch(lock, task, grant)
        yield from self.kernel.block_on(task, grant)
        if watch is not None and self.watchdog.is_active(watch["id"]):
            self.watchdog.disarm(watch["id"])
        # Light wake-up on the unit's grant interrupt.
        yield from ctx.pe.execute(calibration.SOCLC_LOCK_WAKE_CYCLES)
        self.interrupt_handoffs += 1
        delay = ctx.now - requested_at
        task.stats.lock_wait_cycles += delay
        self.stats.acquisitions += 1
        self.stats.contended_acquisitions += 1
        self.stats.latencies.append(self.acquire_cycles)
        self.stats.delays.append(delay)
        lock.acquired_at = ctx.now
        if self.kernel.obs.enabled:
            self._m_acquisitions.inc()
            self._m_contended.inc()
            self._m_latency.observe(self.acquire_cycles)
            self._m_delay.observe(delay)
        self.kernel.trace.record(ctx.now, task.name, "lock_acquired",
                                 lock=lock_id, contended=True, unit="SoCLC")

    def release(self, ctx: TaskContext, lock_id: str) -> Generator:
        task = ctx.task
        lock = self._lock(lock_id)
        if lock.holder is not task:
            raise RTOSError(
                f"{task.name} released SoCLC lock {lock_id!r} held by "
                f"{lock.holder and lock.holder.name}")
        # A single write; hand-off happens inside the unit.
        yield from ctx.pe.bus_write()
        remainder = max(0, self.release_cycles
                        - self.kernel.soc.bus.timing.transaction_cycles(1))
        yield from ctx.pe.execute(remainder)
        if self.kernel.obs.enabled:
            self._m_hold.observe(ctx.now - lock.acquired_at)
        self._restore_priority(lock, task)
        self.kernel.trace.record(ctx.now, task.name, "lock_released",
                                 lock=lock_id, unit="SoCLC",
                                 priority=task.priority)
        if lock.waiters:
            next_task, grant = lock.waiters.pop(0)
            self._grant(lock, next_task)
            dropped = False
            if self.faults is not None:
                for spec in self.faults.fire("soclc.interrupt"):
                    if spec.kind == "drop":
                        dropped = True
            if dropped:
                # The unit handed the lock over but the grant interrupt
                # was lost in flight; the waiter's watchdog (if armed)
                # notices that the cell already names it holder.
                self.lost_interrupts += 1
                self.kernel.trace.record(ctx.now, next_task.name,
                                         "interrupt_lost", lock=lock_id,
                                         unit="SoCLC")
            else:
                grant.set(lock_id)
        else:
            lock.holder = None
        yield from self.kernel.preemption_point(task)

    def _arm_grant_watch(self, lock: _HardwareLock, task: Task,
                         grant) -> dict:
        """Watch one waiter's pending grant interrupt.

        Returns a mutable cell holding the live watch id (re-arms swap
        it out from inside the timeout callback).
        """
        cell: dict = {}
        name = f"soclc.grant.{lock.lock_id}.{task.name}"
        deadline = self.resilience.lock_grant_timeout_cycles

        def check(_timeout) -> None:
            if grant.is_set:
                return
            if lock.holder is task:
                # The cell names us holder but the interrupt never
                # arrived: redeliver it from the watchdog.
                self.redelivered_interrupts += 1
                self.kernel.trace.record(
                    self.kernel.engine.now, task.name,
                    "interrupt_redelivered", lock=lock.lock_id,
                    unit="SoCLC")
                grant.set(lock.lock_id)
            else:
                cell["id"] = self.watchdog.arm(name, deadline,
                                               on_timeout=check)

        cell["id"] = self.watchdog.arm(name, deadline, on_timeout=check)
        return cell

    # -- IPCP in hardware ---------------------------------------------------------------

    def _grant(self, lock: _HardwareLock, task: Task) -> None:
        lock.holder = task
        if self.priority_inheritance and lock.ceiling < task.priority:
            task.push_priority(lock.ceiling)
            lock.boosted = True
            self.kernel.priority_changed(task)
            self.kernel.trace.record(
                self.kernel.engine.now, task.name, "ceiling_raised",
                lock=lock.lock_id, priority=task.priority)
        else:
            lock.boosted = False

    def _restore_priority(self, lock: _HardwareLock, task: Task) -> None:
        if lock.boosted:
            task.pop_priority()
            lock.boosted = False

    def holder_name(self, lock_id: str) -> Optional[str]:
        lock = self._lock(lock_id)
        return lock.holder.name if lock.holder else None

    # -- checkpoint protocol ------------------------------------------------------

    SNAPSHOT_KIND = "soclc"

    def snapshot_state(self) -> dict:
        """Versioned, hashed snapshot of every lock cell + IPCP state.

        Holders are recorded by task name (re-bound through the restored
        kernel's task table).  Waiter queues hold live grant events tied
        to blocked coroutines, so the unit must be quiescent — no waiter
        enqueued — at snapshot time; campaign/experiment drivers reach
        that state whenever the engine drains.
        """
        from repro.checkpoint.protocol import snapshot_envelope
        from repro.errors import CheckpointError
        waiting = {lock_id: [task.name for task, _ in lock.waiters]
                   for lock_id, lock in self._locks.items() if lock.waiters}
        if waiting:
            raise CheckpointError(
                f"SoCLC not quiescent: waiters pending on {sorted(waiting)}")
        return snapshot_envelope(self.SNAPSHOT_KIND, {
            "num_short_locks": self.num_short_locks,
            "num_long_locks": self.num_long_locks,
            "priority_inheritance": self.priority_inheritance,
            "acquire_cycles": self.acquire_cycles,
            "release_cycles": self.release_cycles,
            "locks": [
                {"lock_id": lock.lock_id, "kind": lock.kind,
                 "ceiling": lock.ceiling,
                 "holder": lock.holder.name if lock.holder else None,
                 "boosted": lock.boosted,
                 "acquired_at": lock.acquired_at}
                for lock_id, lock in sorted(self._locks.items())],
            "stats": {
                "acquisitions": self.stats.acquisitions,
                "contended_acquisitions": self.stats.contended_acquisitions,
                "latencies": list(self.stats.latencies),
                "delays": list(self.stats.delays),
            },
            "interrupt_handoffs": self.interrupt_handoffs,
            "lost_interrupts": self.lost_interrupts,
            "redelivered_interrupts": self.redelivered_interrupts,
            "short_holder": getattr(self, "_short_holder", None),
        })

    @classmethod
    def restore_state(cls, envelope: dict, kernel: Kernel) -> "SoCLC":
        """Rebuild the unit against a (restored) kernel.

        Lock holders are re-bound by name through ``kernel.tasks``; a
        holder missing from the kernel is a checkpoint error.
        """
        from repro.checkpoint.protocol import open_envelope
        from repro.errors import CheckpointError
        state = open_envelope(envelope, kind=cls.SNAPSHOT_KIND)
        unit = cls(kernel,
                   num_short_locks=state["num_short_locks"],
                   num_long_locks=state["num_long_locks"],
                   priority_inheritance=state["priority_inheritance"],
                   acquire_cycles=state["acquire_cycles"],
                   release_cycles=state["release_cycles"])
        for entry in state["locks"]:
            unit.register_lock(entry["lock_id"], kind=entry["kind"],
                               ceiling=entry["ceiling"])
            lock = unit._locks[entry["lock_id"]]
            holder = entry["holder"]
            if holder is not None:
                if holder not in kernel.tasks:
                    raise CheckpointError(
                        f"lock {entry['lock_id']!r} held by unknown task "
                        f"{holder!r}")
                lock.holder = kernel.tasks[holder]
            lock.boosted = entry["boosted"]
            lock.acquired_at = entry["acquired_at"]
        stats = state["stats"]
        unit.stats.acquisitions = stats["acquisitions"]
        unit.stats.contended_acquisitions = stats["contended_acquisitions"]
        unit.stats.latencies = list(stats["latencies"])
        unit.stats.delays = list(stats["delays"])
        unit.interrupt_handoffs = state["interrupt_handoffs"]
        unit.lost_interrupts = state["lost_interrupts"]
        unit.redelivered_interrupts = state["redelivered_interrupts"]
        unit._short_holder = state["short_holder"]
        return unit

    # -- short critical sections via the unit's short-lock cells ----------------

    def short_lock(self, ctx: TaskContext) -> Generator:
        """Enter a short CS through a SoCLC short-lock cell.

        One read of the unit both tests and takes the lock; contenders
        re-poll the unit (not shared memory), so the bus sees a single
        word per poll and the common case is a single transaction.
        """
        while True:
            yield from ctx.pe.bus_read()
            if getattr(self, "_short_holder", None) is None:
                self._short_holder = ctx.task.name
                yield from ctx.pe.execute(
                    calibration.SOCLC_SHORT_LOCK_CYCLES)
                return
            yield calibration.SW_SPIN_POLL_BACKOFF_CYCLES

    def short_unlock(self, ctx: TaskContext) -> Generator:
        if getattr(self, "_short_holder", None) != ctx.task.name:
            raise RTOSError(
                f"{ctx.task.name} left a short CS it never entered")
        yield from ctx.pe.bus_write()
        self._short_holder = None
